"""The cooperative edge-cloudlet tier: topology, routing, peer fetch.

The fetch chain is *device personal cache -> owning cloudlet -> origin*.
The serve layer consults the tier only after a device-local **miss** —
a personal-cache hit never leaves the phone — and the tier then either
answers from the owning node's community slice (an *edge hit*: one
cheap cloudlet round trip instead of the full radio fetch) or fetches
from the origin through that node's single-flight
:class:`~repro.serve.batcher.MissBatcher` and admits the key on the way
back.

Two invariants the serve integration depends on:

* **The device outcome model is untouched.**  The tier never rewrites a
  :class:`~repro.sim.metrics.QueryOutcome`; it shapes the request's
  loop-clock sojourn, its trace marks (``edge_hop`` / ``edge_serve`` /
  ``batch_wait``), and its attributed radio energy.  That is what makes
  a 1-node unbounded tier reproduce the single-device ``serve_replay``
  community accounting bit-for-bit.
* **Marks telescope.**  Every await inside :meth:`EdgeTier.fetch` ends
  at a named mark, so the response breakdown still re-sums exactly to
  the end-to-end sojourn, now with the edge hops visible.

Timing goes through ``loop.time()`` / ``asyncio.sleep`` only, so the
tier runs identically under a stock loop and the
:class:`~repro.serve.vclock.VirtualTimeLoop`.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.edge.node import EdgeNode
from repro.edge.placement import assign_device_region
from repro.edge.propagation import OriginCoordinator
from repro.edge.ring import ConsistentHashRing
from repro.obs.trace import TraceContext
from repro.pocketsearch.manager import UpdatePatch

__all__ = ["EDGE_SHED_REASON", "EdgeFetchResult", "EdgeTier", "EdgeTopology"]

#: ``Overloaded.reason`` for sheds raised on the cloudlet hop, distinct
#: from the device-tier ``device-queue-full`` / ``server-busy`` reasons.
EDGE_SHED_REASON = "edge-queue-full"

_ROUTING_MODES = ("key", "home")


@dataclass(frozen=True)
class EdgeTopology:
    """Shape and cost model of the simulated cloudlet fleet.

    Args:
        n_nodes: cloudlet node count.
        node_capacity: community-slice bound per node in keys (``None``
            is unbounded — the 1-node equivalence configuration).
        vnodes: virtual points per node on the ownership ring.
        seed: root seed for per-node RNG streams and device placement.
        routing: ``"key"`` routes by consistent-hash ownership of the
            query key; ``"home"`` routes to the device's home-region
            node (placement skew then concentrates load).
        n_regions: geographic regions for device placement (defaults to
            ``n_nodes``).
        placement_skew: Zipf-like skew of device-to-region placement
            (0.0 uniform).
        edge_rtt_s: modelled device -> cloudlet round-trip seconds,
            paid on every edge consultation.
        edge_service_s: modelled cloudlet service seconds on an edge hit.
        edge_energy_scale: fraction of the isolated radio fetch energy a
            request pays when the owning cloudlet answers (a nearby
            low-power link instead of the full 3G flight).
        node_max_inflight: per-node concurrent-fetch bound; above it the
            hop sheds with :data:`EDGE_SHED_REASON` (``None`` disables).
        warm: whether harnesses should pre-seed node slices from the
            content scores before traffic.
        propagation_interval_s: target period between a node's
            popularity-delta flushes to the origin.
        propagation_batch: max deltas per flush.
        max_pending_deltas: per-node bound on buffered deltas.
    """

    n_nodes: int = 1
    node_capacity: Optional[int] = None
    vnodes: int = 64
    seed: int = 1009
    routing: str = "key"
    n_regions: Optional[int] = None
    placement_skew: float = 0.0
    edge_rtt_s: float = 0.02
    edge_service_s: float = 0.005
    edge_energy_scale: float = 0.15
    node_max_inflight: Optional[int] = None
    warm: bool = True
    propagation_interval_s: float = 300.0
    propagation_batch: int = 128
    max_pending_deltas: int = 4096

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        if self.node_capacity is not None and self.node_capacity <= 0:
            raise ValueError("node_capacity must be positive when bounded")
        if self.routing not in _ROUTING_MODES:
            raise ValueError(
                f"routing must be one of {_ROUTING_MODES}, got {self.routing!r}"
            )
        if self.n_regions is not None and self.n_regions <= 0:
            raise ValueError("n_regions must be positive when given")
        if self.placement_skew < 0:
            raise ValueError("placement_skew must be non-negative")
        if self.edge_rtt_s < 0 or self.edge_service_s < 0:
            raise ValueError("edge timings must be non-negative")
        if not 0.0 <= self.edge_energy_scale <= 1.0:
            raise ValueError("edge_energy_scale must be in [0, 1]")
        if self.node_max_inflight is not None and self.node_max_inflight <= 0:
            raise ValueError("node_max_inflight must be positive when bounded")
        if self.propagation_interval_s <= 0:
            raise ValueError("propagation_interval_s must be positive")
        if self.propagation_batch <= 0:
            raise ValueError("propagation_batch must be positive")


@dataclass(frozen=True)
class EdgeFetchResult:
    """What one edge consultation resolved to.

    ``tier`` names who answered: ``"edge"`` (the owning cloudlet's
    community slice) or ``"origin"`` (fetched through the node's
    single-flight batcher).  On a shed, only ``shed``/``reason``/
    ``node_id`` are meaningful.
    """

    node_id: int
    tier: str = "origin"
    shed: bool = False
    reason: str = ""
    #: origin fetch piggybacked on an in-flight identical fetch
    shared: bool = False
    #: attributed ``(ramp_j, transfer_j, tail_j)`` radio share
    share: Optional[Tuple[float, float, float]] = field(default=None)
    #: radio-timeline joules this request reports to the ledger
    timeline_j: float = 0.0


class EdgeTier:
    """N cloudlet nodes fronting the origin for a fleet of devices.

    Must be driven from a single event loop (same discipline as the
    server that owns it).
    """

    def __init__(self, topology: EdgeTopology = EdgeTopology()) -> None:
        # Imported lazily to break the serve <-> edge module cycle:
        # serve.harness imports this module at load time, so reaching
        # back into repro.serve here must wait until serve is complete.
        from repro.serve.batcher import MissBatcher

        self.topology = topology
        self.ring = ConsistentHashRing(
            range(topology.n_nodes), vnodes=topology.vnodes
        )
        self.nodes: Dict[int, EdgeNode] = {
            node_id: EdgeNode(
                node_id,
                capacity=topology.node_capacity,
                seed=topology.seed,
                max_pending_deltas=topology.max_pending_deltas,
            )
            for node_id in range(topology.n_nodes)
        }
        self.origin = OriginCoordinator()
        self._batchers = {
            node_id: MissBatcher() for node_id in range(topology.n_nodes)
        }
        self._device_regions: Dict[int, int] = {}
        self.sheds = 0
        #: called as ``fn(t, node_id, n_deltas)`` after each propagation
        #: flush — the flight recorder hangs off this.
        self.on_flush: Optional[Callable[[float, int, int], None]] = None

    # -- routing -------------------------------------------------------------

    @property
    def n_regions(self) -> int:
        return (
            self.topology.n_regions
            if self.topology.n_regions is not None
            else self.topology.n_nodes
        )

    def device_region(self, device_id: int) -> int:
        """The device's home region (memoized deterministic placement)."""
        region = self._device_regions.get(device_id)
        if region is None:
            region = assign_device_region(
                device_id,
                self.n_regions,
                skew=self.topology.placement_skew,
                seed=self.topology.seed,
            )
            self._device_regions[device_id] = region
        return region

    def node_for(self, key: str, device_id: int) -> int:
        """The node a device's request for ``key`` is routed to."""
        if self.topology.routing == "key":
            return self.ring.owner(key)
        return self.device_region(device_id) % self.topology.n_nodes

    # -- the peer-fetch protocol --------------------------------------------

    async def fetch(
        self,
        key: str,
        device_id: int,
        radio_s: float,
        scale: float,
        trace: Optional[TraceContext] = None,
        radio_energy: Optional[Tuple[float, float, float]] = None,
    ) -> EdgeFetchResult:
        """Resolve one device-local miss through the cloudlet tier.

        ``radio_s`` / ``radio_energy`` describe the *origin* fetch the
        device would have performed in isolation; ``scale`` is the
        server's model-seconds -> loop-seconds multiplier.
        """
        loop = asyncio.get_event_loop()
        node = self.nodes[self.node_for(key, device_id)]
        bound = self.topology.node_max_inflight
        if bound is not None and node.inflight >= bound:
            node.sheds += 1
            self.sheds += 1
            if trace is not None:
                trace.annotate(edge_node=node.node_id)
            return EdgeFetchResult(
                node_id=node.node_id, shed=True, reason=EDGE_SHED_REASON
            )
        node.inflight += 1
        try:
            rtt = self.topology.edge_rtt_s * scale
            if rtt > 0:
                await asyncio.sleep(rtt)
            if trace is not None:
                trace.mark("edge_hop", loop.time())
            hit = node.lookup(key)
            node.record_delta(key)
            if hit:
                service = self.topology.edge_service_s * scale
                if service > 0:
                    await asyncio.sleep(service)
                if trace is not None:
                    trace.mark("edge_serve", loop.time())
                    trace.annotate(edge_node=node.node_id, edge_hit=True)
                share: Optional[Tuple[float, float, float]] = None
                timeline_j = 0.0
                if radio_energy is not None:
                    k = self.topology.edge_energy_scale
                    share = (
                        radio_energy[0] * k,
                        radio_energy[1] * k,
                        radio_energy[2] * k,
                    )
                    timeline_j = (share[0] + share[1]) + share[2]
                result = EdgeFetchResult(
                    node_id=node.node_id,
                    tier="edge",
                    share=share,
                    timeline_j=timeline_j,
                )
            else:
                # Origin fetch through this node's single-flight
                # batcher: identical concurrent misses routed here ride
                # one simulated radio round trip.
                fetch_share = await self._batchers[node.node_id].fetch_shared(
                    key, radio_s * scale, trace=trace, radio_energy=radio_energy
                )
                if trace is not None:
                    trace.mark("batch_wait", loop.time())
                    trace.annotate(edge_node=node.node_id, edge_hit=False)
                node.admit(key)
                result = EdgeFetchResult(
                    node_id=node.node_id,
                    tier="origin",
                    shared=fetch_share.shared,
                    share=fetch_share.share,
                    timeline_j=fetch_share.timeline_j,
                )
        finally:
            node.inflight -= 1
        self._maybe_flush(node, loop.time())
        return result

    # -- popularity propagation ---------------------------------------------

    def _maybe_flush(self, node: EdgeNode, now: float) -> None:
        """Event-driven propagation: flush when the node's jittered
        deadline has passed.  No background task — nothing to leak or
        cancel, and the virtual clock only advances through sleeps the
        requests themselves perform."""
        interval = self.topology.propagation_interval_s
        if node.next_flush_at is None:
            node.next_flush_at = now + interval * (0.5 + node.flush_jitter)
            return
        if now < node.next_flush_at or node.pending_deltas == 0:
            return
        deltas = node.take_deltas(self.topology.propagation_batch)
        self.origin.apply_deltas(node.node_id, deltas)
        node.next_flush_at = now + interval
        if self.on_flush is not None:
            self.on_flush(now, node.node_id, len(deltas))

    def flush_all(self) -> None:
        """Propagate every pending delta (end-of-run settlement)."""
        for node_id in sorted(self.nodes):
            node = self.nodes[node_id]
            while node.pending_deltas:
                deltas = node.take_deltas(self.topology.propagation_batch)
                self.origin.apply_deltas(node_id, deltas)

    def refresh_from_origin(self, per_node: int) -> UpdatePatch:
        """Push the origin's merged top keys back into node slices (the
        eventual community refresh), accounted as one ``UpdatePatch``."""
        if per_node <= 0:
            raise ValueError("per_node must be positive")
        top = self.origin.top_keys(per_node * len(self.nodes))
        pushed = 0
        for node_id in sorted(self.nodes):
            node = self.nodes[node_id]
            if self.topology.routing == "key":
                keys = [k for k in top if self.ring.owner(k) == node_id]
                keys = keys[:per_node]
            else:
                keys = top[:per_node]
            # Admit coldest-first so the hottest key ends up MRU.
            node.seed_slice(reversed(keys))
            pushed += len(keys)
        return self.origin.refresh_patch(pushed)

    # -- warm seeding --------------------------------------------------------

    def seed_from_scores(self, scored_keys: Iterable[Tuple[str, float]]) -> int:
        """Warm node slices from ``(key, score)`` content rankings.

        Keys are admitted in ascending score order (hottest last ->
        most-recently-used), and under bounded capacity the retained
        sets are nested across capacities — the property the offline
        monotonicity sweep relies on.  Under ``"key"`` routing each key
        warms only its owning node; under ``"home"`` routing every node
        replicates the ranking (any node may be asked for any key).
        """
        ordered = sorted(scored_keys, key=lambda kv: (kv[1], kv[0]))
        seeded = 0
        for key, _ in ordered:
            if self.topology.routing == "key":
                self.nodes[self.ring.owner(key)].admit(key)
                seeded += 1
            else:
                for node_id in sorted(self.nodes):
                    self.nodes[node_id].admit(key)
                    seeded += 1
        return seeded

    # -- introspection -------------------------------------------------------

    @property
    def community_hits(self) -> int:
        return sum(self.nodes[i].hits for i in sorted(self.nodes))

    @property
    def community_misses(self) -> int:
        return sum(self.nodes[i].misses for i in sorted(self.nodes))

    @property
    def community_hit_rate(self) -> float:
        """Fraction of device-local misses the cloudlet tier absorbed."""
        probes = self.community_hits + self.community_misses
        return self.community_hits / probes if probes else 0.0

    @property
    def origin_fetches(self) -> int:
        return sum(self._batchers[i].fetches for i in sorted(self._batchers))

    @property
    def origin_piggybacked(self) -> int:
        return sum(
            self._batchers[i].piggybacked for i in sorted(self._batchers)
        )

    def stats(self) -> Dict[str, object]:
        return {
            "n_nodes": self.topology.n_nodes,
            "routing": self.topology.routing,
            "community_hits": self.community_hits,
            "community_misses": self.community_misses,
            "community_hit_rate": self.community_hit_rate,
            "origin_fetches": self.origin_fetches,
            "origin_piggybacked": self.origin_piggybacked,
            "sheds": self.sheds,
            "origin": self.origin.stats(),
            "nodes": [self.nodes[i].stats() for i in sorted(self.nodes)],
        }
