"""Deterministic device -> region (affinity) assignment.

The load generator's device draw is volume-weighted, which decides *how
often* a device speaks but says nothing about *where* it is.  Placement
skew experiments need the missing half: a geographic/affinity label per
device that is stable across runs, independent of draw order, and
tunable from uniform to heavily concentrated.

Every device gets its own ``SeedSequence(seed, spawn_key=(domain,
device_id))`` stream — the same per-entity derivation the replay
harness uses for per-user RNGs — so the assignment is a pure function
of ``(device_id, n_regions, skew, seed)``:

* adding or removing devices never changes anyone else's region;
* iteration order of the caller's device collection is irrelevant;
* ``skew`` shapes the region popularity as a Zipf-like law
  (``weight(r) ∝ 1/(r+1)^skew``): 0.0 is uniform, 1.0 concentrates
  roughly half the fleet in the first couple of regions.
"""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

__all__ = ["assign_device_region", "assign_device_regions", "region_weights"]

#: Spawn-key domain for placement draws.  The replay harness owns
#: domains 0 (user selection), 1 (per-user replay), and 2 (columnar
#: sharding); edge nodes own 4.
_PLACEMENT_DOMAIN = 3


def region_weights(n_regions: int, skew: float = 0.0) -> np.ndarray:
    """Normalized region popularity under a Zipf-like skew law."""
    if n_regions <= 0:
        raise ValueError("n_regions must be positive")
    if skew < 0:
        raise ValueError("skew must be non-negative")
    ranks = np.arange(1, n_regions + 1, dtype=float)
    weights = ranks ** -skew
    return weights / weights.sum()


def assign_device_region(
    device_id: int, n_regions: int, skew: float = 0.0, seed: int = 7
) -> int:
    """The region of one device — deterministic, per-device independent."""
    weights = region_weights(n_regions, skew)
    rng = np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=(_PLACEMENT_DOMAIN, device_id))
    )
    return int(rng.choice(n_regions, p=weights))


def assign_device_regions(
    device_ids: Iterable[int],
    n_regions: int,
    skew: float = 0.0,
    seed: int = 7,
) -> Dict[int, int]:
    """``device_id -> region`` for a whole fleet.

    Each device draws from its own seeded stream, so the mapping is
    invariant to the iteration order of ``device_ids`` and stable under
    fleet growth — the properties the placement unit tests pin.
    """
    return {
        int(device_id): assign_device_region(
            int(device_id), n_regions, skew, seed
        )
        for device_id in device_ids
    }
