"""Offline edge-tier evaluation over a device-miss reference stream.

The community hit rate a *live* serve run reports depends on request
interleaving, and the interleaving itself depends on node capacity
(a miss sleeps out a radio fetch, a hit does not) — so comparing live
runs across capacities compares two different access sequences.  This
module evaluates the tier the way cache papers do: replay one fixed,
capacity-independent stream of device-local misses through the routing
and the per-node LRU slices, synchronously.

Because each slice is strict LRU (a stack algorithm) and warm seeding
admits keys in ascending score order, the slice contents at capacity
``C`` are always a subset of the contents at ``C' > C`` at every point
of the replay — so the community hit rate is **provably monotone
non-decreasing in capacity**, the property the committed benchmark
asserts rather than hopes for.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.edge.tier import EdgeTier, EdgeTopology

__all__ = [
    "EdgeEvalResult",
    "capacity_sweep",
    "evaluate_stream",
    "hit_rates_monotone",
]

#: One device-local miss: ``(timestamp, device_id, key)``.
MissEvent = Tuple[float, int, str]


@dataclass(frozen=True)
class EdgeEvalResult:
    """Community-cache accounting of one offline replay."""

    n_nodes: int
    node_capacity: Optional[int]
    events: int
    community_hits: int
    community_misses: int
    community_hit_rate: float
    evictions: int
    per_node: Tuple[Dict[str, float], ...]

    def to_dict(self) -> Dict[str, object]:
        return {
            "n_nodes": self.n_nodes,
            "node_capacity": self.node_capacity,
            "events": self.events,
            "community_hits": self.community_hits,
            "community_misses": self.community_misses,
            "community_hit_rate": self.community_hit_rate,
            "evictions": self.evictions,
        }


def evaluate_stream(
    events: Sequence[MissEvent],
    topology: EdgeTopology,
    node_capacity: Optional[int] = None,
    warm_keys: Optional[Iterable[Tuple[str, float]]] = None,
) -> EdgeEvalResult:
    """Replay ``events`` through a fresh tier at ``node_capacity``.

    ``events`` must already be in replay order (the caller fixes one
    canonical order — the same stream is reused across capacities).
    ``warm_keys`` optionally pre-seeds the slices from ``(key, score)``
    content rankings.
    """
    tier = EdgeTier(replace(topology, node_capacity=node_capacity))
    if warm_keys is not None:
        tier.seed_from_scores(warm_keys)
    for _, device_id, key in events:
        node = tier.nodes[tier.node_for(key, device_id)]
        if not node.lookup(key):
            node.admit(key)
        node.record_delta(key)
    tier.flush_all()
    return EdgeEvalResult(
        n_nodes=topology.n_nodes,
        node_capacity=node_capacity,
        events=len(events),
        community_hits=tier.community_hits,
        community_misses=tier.community_misses,
        community_hit_rate=tier.community_hit_rate,
        evictions=sum(tier.nodes[i].evictions for i in sorted(tier.nodes)),
        per_node=tuple(tier.nodes[i].stats() for i in sorted(tier.nodes)),
    )


def capacity_sweep(
    events: Sequence[MissEvent],
    topology: EdgeTopology,
    capacities: Sequence[Optional[int]],
    warm_keys: Optional[Sequence[Tuple[str, float]]] = None,
) -> List[EdgeEvalResult]:
    """Evaluate the same stream at each capacity, ascending.

    ``None`` (unbounded) sorts last.  The returned hit rates are
    monotone non-decreasing by the LRU inclusion property; callers gate
    on it via :func:`hit_rates_monotone`.
    """
    ordered = sorted(
        capacities, key=lambda c: float("inf") if c is None else c
    )
    return [
        evaluate_stream(events, topology, node_capacity=c, warm_keys=warm_keys)
        for c in ordered
    ]


def hit_rates_monotone(results: Sequence[EdgeEvalResult]) -> bool:
    """Whether hit rates are non-decreasing across a capacity sweep."""
    rates = [r.community_hit_rate for r in results]
    return all(b >= a for a, b in zip(rates, rates[1:]))
