"""Consistent-hash ownership of queries across cloudlet nodes.

Every cloudlet node projects ``vnodes`` virtual points onto a 64-bit
ring (the first 8 bytes of MD5, via the same
:func:`~repro.pocketsearch.hashtable.hash64` the cache's hash table
uses); a query key belongs to the first node point clockwise of the
key's own hash.  The construction gives the three properties the edge
tier leans on, and the hypothesis suite in ``tests/edge/test_ring.py``
pins each of them:

* **determinism / permutation invariance** — the ring's state is the
  sorted set of ``(point, node_id)`` pairs, a pure function of the node
  ids, so insertion order cannot matter and two processes always agree
  on ownership;
* **balance** — with enough virtual points per node, ownership shares
  concentrate around ``1/n`` without any coordination;
* **minimal movement** — adding a node steals only the arcs it lands
  on (keys move *to* the new node, never between old ones), and
  removing a node reassigns only the keys it owned.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.pocketsearch.hashtable import hash64

__all__ = ["ConsistentHashRing", "DEFAULT_VNODES"]

#: Virtual points per node.  128 keeps the max/min ownership spread
#: within a small constant factor for fleets up to a few dozen nodes.
DEFAULT_VNODES = 128


class ConsistentHashRing:
    """Deterministic consistent-hash ring over integer node ids."""

    def __init__(
        self, node_ids: Iterable[int] = (), vnodes: int = DEFAULT_VNODES
    ) -> None:
        if vnodes <= 0:
            raise ValueError("vnodes must be positive")
        self.vnodes = vnodes
        self._node_ids: List[int] = []
        #: sorted ``(point, node_id)`` pairs; the node_id component
        #: breaks (astronomically unlikely) point collisions the same
        #: way on every host.
        self._points: List[Tuple[int, int]] = []
        for node_id in node_ids:
            self.add_node(int(node_id))

    # -- membership ----------------------------------------------------------

    def _vnode_points(self, node_id: int) -> List[Tuple[int, int]]:
        return [
            (hash64(f"edge-node:{node_id}", salt=replica), node_id)
            for replica in range(self.vnodes)
        ]

    def add_node(self, node_id: int) -> None:
        if node_id in self._node_ids:
            raise ValueError(f"node {node_id} already on the ring")
        bisect.insort(self._node_ids, node_id)
        self._points.extend(self._vnode_points(node_id))
        self._points.sort()

    def remove_node(self, node_id: int) -> None:
        if node_id not in self._node_ids:
            raise ValueError(f"node {node_id} not on the ring")
        self._node_ids.remove(node_id)
        self._points = [p for p in self._points if p[1] != node_id]

    @property
    def nodes(self) -> Tuple[int, ...]:
        """Node ids, ascending."""
        return tuple(self._node_ids)

    def __len__(self) -> int:
        return len(self._node_ids)

    # -- ownership -----------------------------------------------------------

    def owner(self, key: str) -> int:
        """The node id owning ``key`` (first point clockwise of its hash)."""
        if not self._points:
            raise ValueError("ring has no nodes")
        idx = bisect.bisect_right(self._points, (hash64(key), -1))
        if idx == len(self._points):
            idx = 0  # wrap past the top of the ring
        return self._points[idx][1]

    def ownership(self, keys: Sequence[str]) -> Dict[int, int]:
        """``node_id -> owned-key count`` over a sample of keys (every
        ring node appears, zero-count nodes included)."""
        counts = {node_id: 0 for node_id in self._node_ids}
        for key in keys:
            counts[self.owner(key)] += 1
        return counts
