"""Cooperative edge-cloudlet tier: a simulated distributed community cache.

Grows the paper's single-device community cache into a shared edge
tier: N simulated cloudlet nodes with consistent-hash query ownership,
peer fetch on device-local miss (device -> owning cloudlet -> origin)
with per-node single-flight dedup, bounded batched popularity
propagation to the origin, and per-hop latency/energy attribution
through the serve layer's trace and energy planes.
"""

from repro.edge.evaluate import (
    EdgeEvalResult,
    capacity_sweep,
    evaluate_stream,
    hit_rates_monotone,
)
from repro.edge.node import EdgeNode
from repro.edge.placement import (
    assign_device_region,
    assign_device_regions,
    region_weights,
)
from repro.edge.propagation import DELTA_BYTES, OriginCoordinator
from repro.edge.ring import DEFAULT_VNODES, ConsistentHashRing
from repro.edge.tier import (
    EDGE_SHED_REASON,
    EdgeFetchResult,
    EdgeTier,
    EdgeTopology,
)

__all__ = [
    "DELTA_BYTES",
    "DEFAULT_VNODES",
    "EDGE_SHED_REASON",
    "ConsistentHashRing",
    "EdgeEvalResult",
    "EdgeFetchResult",
    "EdgeNode",
    "EdgeTier",
    "EdgeTopology",
    "OriginCoordinator",
    "assign_device_region",
    "assign_device_regions",
    "capacity_sweep",
    "evaluate_stream",
    "hit_rates_monotone",
    "region_weights",
]
