"""Tile-grid geometry and the Table 2 coverage arithmetic."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List

KB = 1024

#: Table 2: one 128x128-pixel map tile is ~5 KB...
TILE_BYTES = 5 * KB
#: ...and covers 300x300 meters of ground.
TILE_METERS = 300.0

#: Rough land areas of example US states, km^2 (for coverage demos).
STATE_AREAS_KM2 = {
    "rhode island": 3_100,
    "washington": 184_800,
    "california": 423_970,
    "texas": 695_700,
}


@dataclass(frozen=True, order=True)
class TileId:
    """Integer grid coordinates of one tile."""

    x: int
    y: int

    @classmethod
    def for_position(cls, x_m: float, y_m: float) -> "TileId":
        """The tile containing a ground position in meters."""
        return cls(_tile_index(x_m), _tile_index(y_m))

    @property
    def origin_m(self) -> tuple:
        return (self.x * TILE_METERS, self.y * TILE_METERS)


def _tile_index(v_m: float) -> int:
    """Grid index ``i`` with ``i * TILE_METERS <= v_m < (i+1) * TILE_METERS``.

    Plain ``floor(v / TILE_METERS)`` breaks at the float margins — a tiny
    negative denormal divided by the tile size underflows to -0.0 and
    floors to tile 0 — so the index is corrected against the exact
    containment predicate after the division.
    """
    i = int(math.floor(v_m / TILE_METERS))
    if v_m < i * TILE_METERS:
        i -= 1
    elif v_m >= (i + 1) * TILE_METERS:
        i += 1
    return i


def _tile_span(start_m: float, extent_m: float) -> tuple:
    """Half-open index range ``[i0, i1)`` of tiles a 1-D interval touches.

    Uses the same containment-corrected index as ``_tile_index`` so a
    region and ``TileId.for_position`` never disagree about which tile a
    boundary coordinate belongs to.
    """
    i0 = _tile_index(start_m)
    end_m = start_m + extent_m
    i1 = _tile_index(end_m)
    if end_m > i1 * TILE_METERS:  # interval reaches into tile i1
        i1 += 1
    return i0, max(i1, i0 + 1)


@dataclass(frozen=True)
class Region:
    """An axis-aligned ground region in meters."""

    x_m: float
    y_m: float
    width_m: float
    height_m: float

    def __post_init__(self) -> None:
        if self.width_m <= 0 or self.height_m <= 0:
            raise ValueError("region dimensions must be positive")

    def tiles(self) -> Iterator[TileId]:
        """All tiles intersecting the region, row-major."""
        x0, x1 = _tile_span(self.x_m, self.width_m)
        y0, y1 = _tile_span(self.y_m, self.height_m)
        for y in range(y0, y1):
            for x in range(x0, x1):
                yield TileId(x, y)

    @property
    def tile_count(self) -> int:
        x0, x1 = _tile_span(self.x_m, self.width_m)
        y0, y1 = _tile_span(self.y_m, self.height_m)
        return (x1 - x0) * (y1 - y0)

    @property
    def storage_bytes(self) -> int:
        return self.tile_count * TILE_BYTES

    @classmethod
    def viewport(cls, center_x_m: float, center_y_m: float, span_m: float = 1200.0) -> "Region":
        """The square region a phone screen shows around a position."""
        if span_m <= 0:
            raise ValueError("span_m must be positive")
        half = span_m / 2
        return cls(center_x_m - half, center_y_m - half, span_m, span_m)


def tiles_for_area_km2(area_km2: float) -> int:
    """Tiles needed to cover an area (Table 2's arithmetic)."""
    if area_km2 < 0:
        raise ValueError(f"area_km2 must be non-negative, got {area_km2}")
    tile_km2 = (TILE_METERS / 1000.0) ** 2
    return int(math.ceil(area_km2 / tile_km2))


def area_km2_for_tiles(n_tiles: int) -> float:
    """Ground area a tile budget covers."""
    if n_tiles < 0:
        raise ValueError(f"n_tiles must be non-negative, got {n_tiles}")
    tile_km2 = (TILE_METERS / 1000.0) ** 2
    return n_tiles * tile_km2


def states_coverable(budget_bytes: int) -> List[str]:
    """Which example states a tile budget covers entirely."""
    if budget_bytes < 0:
        raise ValueError("budget_bytes must be non-negative")
    n_tiles = budget_bytes // TILE_BYTES
    coverable_km2 = area_km2_for_tiles(n_tiles)
    return [
        state for state, area in STATE_AREAS_KM2.items() if area <= coverable_km2
    ]
