"""PocketMaps: the mapping/navigation pocket cloudlet.

The paper budgets mapping explicitly: a 5 KB tile covers 300x300 m of
ground, so the 25.6 GB cloudlet partition of a future low-end phone holds
~5.5 million tiles — "the area of a whole state in the United States"
(Table 2, Section 7).  Map tiles are the paper's canonical *static* data:
refreshed only by charge-time bulk updates, never over the radio.

* :mod:`grid` — tile-grid geometry: tile ids, regions, viewport math,
  and the Table 2 coverage arithmetic;
* :mod:`cloudlet` — the tile cache: region-packed storage on flash
  (tiles are batched into region files to avoid per-tile page waste),
  viewport service with radio fallback, and charge-time region prefetch
  driven by the user's movement history.
"""

from repro.pocketmaps.grid import (
    TILE_BYTES,
    TILE_METERS,
    Region,
    TileId,
    tiles_for_area_km2,
    area_km2_for_tiles,
)
from repro.pocketmaps.cloudlet import MapCloudlet, ViewportOutcome

__all__ = [
    "MapCloudlet",
    "Region",
    "TILE_BYTES",
    "TILE_METERS",
    "TileId",
    "ViewportOutcome",
    "area_km2_for_tiles",
    "tiles_for_area_km2",
]
