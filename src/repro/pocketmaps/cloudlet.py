"""The map-tile cloudlet.

Tiles are the paper's canonical static cloudlet data: bulk-loaded while
charging, never refreshed over the radio (the roads don't move between
charges).  Storage packs tiles into *region files* of 16x16 tiles
(~1.25 MB) — the same fragmentation logic as PocketSearch's 32-file
database: a 5 KB tile alone would waste most of a flash page, and
viewport fetches touch spatially contiguous tiles anyway.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.pocketmaps.grid import TILE_BYTES, Region, TileId
from repro.radio.energy import isolated_request_energy, isolated_request_latency
from repro.radio.models import RadioProfile, THREE_G
from repro.storage.filesystem import FlashFilesystem
from repro.storage.flash import NandFlash

#: Tiles per side of one packed region file.
REGION_TILES = 16
#: Request overhead of a tile batch download.
BATCH_REQUEST_BYTES = 512


@dataclass(frozen=True)
class ViewportOutcome:
    """Serving one viewport: how many tiles hit, and the cost."""

    tiles_needed: int
    tiles_hit: int
    latency_s: float
    energy_j: float
    bytes_over_radio: int

    @property
    def hit(self) -> bool:
        """A viewport 'hits' when no radio fetch was needed."""
        return self.tiles_hit == self.tiles_needed

    @property
    def hit_fraction(self) -> float:
        if self.tiles_needed == 0:
            return 1.0
        return self.tiles_hit / self.tiles_needed


class MapCloudlet:
    """Tile cache with region-packed flash storage.

    Args:
        budget_bytes: flash budget for tiles.
        radio: fallback link for missing tiles.
        base_power_w: device base power during interaction.
    """

    def __init__(
        self,
        budget_bytes: int,
        radio: RadioProfile = THREE_G,
        base_power_w: float = 0.9,
        filesystem: Optional[FlashFilesystem] = None,
    ) -> None:
        if budget_bytes <= 0:
            raise ValueError("budget_bytes must be positive")
        self.budget_bytes = budget_bytes
        self.radio = radio
        self.base_power_w = base_power_w
        self.filesystem = filesystem or FlashFilesystem(NandFlash())
        self._tiles: Set[TileId] = set()
        self._region_files: Dict[Tuple[int, int], int] = {}  # key -> tile count
        self.viewports_served = 0
        self.outcomes: List[ViewportOutcome] = []

    # -- storage -------------------------------------------------------------

    @staticmethod
    def _region_key(tile: TileId) -> Tuple[int, int]:
        return (
            int(math.floor(tile.x / REGION_TILES)),
            int(math.floor(tile.y / REGION_TILES)),
        )

    def _region_file(self, key: Tuple[int, int]) -> str:
        return f"maps:{key[0]}:{key[1]}"

    @property
    def bytes_stored(self) -> int:
        return len(self._tiles) * TILE_BYTES

    @property
    def n_tiles(self) -> int:
        return len(self._tiles)

    def has_tile(self, tile: TileId) -> bool:
        return tile in self._tiles

    def store_tiles(self, tiles) -> int:
        """Add tiles up to the budget; returns tiles actually stored.

        Tiles are appended to their region files, so storage stays packed
        regardless of arrival order.
        """
        stored = 0
        for tile in tiles:
            if tile in self._tiles:
                continue
            if self.bytes_stored + TILE_BYTES > self.budget_bytes:
                break
            key = self._region_key(tile)
            name = self._region_file(key)
            if key not in self._region_files:
                self.filesystem.create(name)
                self._region_files[key] = 0
            self.filesystem.append(name, TILE_BYTES)
            self._region_files[key] += 1
            self._tiles.add(tile)
            stored += 1
        return stored

    def prefetch_region(self, region: Region) -> int:
        """Charge-time bulk load of a region (the static-data path)."""
        return self.store_tiles(region.tiles())

    def evict_region(self, region: Region) -> int:
        """Drop every cached tile in a region; returns tiles freed."""
        freed = 0
        for tile in region.tiles():
            if tile in self._tiles:
                self._tiles.discard(tile)
                key = self._region_key(tile)
                self._region_files[key] -= 1
                freed += 1
                if self._region_files[key] == 0:
                    self.filesystem.delete(self._region_file(key))
                    del self._region_files[key]
        return freed

    # -- service ---------------------------------------------------------------

    def serve_viewport(self, viewport: Region) -> ViewportOutcome:
        """Render one screenful of map.

        Cached tiles are read from their region files; missing tiles are
        fetched in one batched radio request (one wake-up, not one per
        tile) and cached for next time.
        """
        needed = list(viewport.tiles())
        hits = [t for t in needed if t in self._tiles]
        misses = [t for t in needed if t not in self._tiles]

        latency = 0.0
        energy = 0.0
        # Sorted: float latency/energy sums must not depend on set order.
        touched_regions = sorted({self._region_key(t) for t in hits})
        for key in touched_regions:
            cost = self.filesystem.read(
                self._region_file(key),
                0,
                min(self._region_files[key] * TILE_BYTES, len(hits) * TILE_BYTES),
            )
            latency += cost.latency_s
            energy += cost.energy_j

        radio_bytes = 0
        if misses:
            radio_bytes = len(misses) * TILE_BYTES
            radio_latency = isolated_request_latency(
                self.radio, BATCH_REQUEST_BYTES, radio_bytes, 0.15
            )
            radio_energy = isolated_request_energy(
                self.radio, BATCH_REQUEST_BYTES, radio_bytes, 0.15
            )
            latency += radio_latency
            energy += radio_energy
            self.store_tiles(misses)

        energy += latency * self.base_power_w
        outcome = ViewportOutcome(
            tiles_needed=len(needed),
            tiles_hit=len(hits),
            latency_s=latency,
            energy_j=energy,
            bytes_over_radio=radio_bytes,
        )
        self.viewports_served += 1
        self.outcomes.append(outcome)
        return outcome

    # -- stats ---------------------------------------------------------------------

    @property
    def viewport_hit_rate(self) -> float:
        """Fraction of served viewports needing no radio at all."""
        if not self.outcomes:
            return 0.0
        return sum(1 for o in self.outcomes if o.hit) / len(self.outcomes)

    @property
    def tile_hit_rate(self) -> float:
        total = sum(o.tiles_needed for o in self.outcomes)
        if not total:
            return 0.0
        return sum(o.tiles_hit for o in self.outcomes) / total
