"""Search-log analysis (Section 4 of the paper).

Implements the measurements behind Figures 4 and 5 and the repeat-rate
statistics of Section 4.2: community volume CDFs over queries and results
(overall, navigational vs non-navigational, featurephone vs smartphone),
and per-user repeatability within a month.

A *repeated query* follows the paper's definition: the user submits the
same query string and clicks the exact same search result — i.e. the same
(query, result) pair recurs in that user's stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.logs.generator import SearchLog
from repro.logs.schema import UserClass, classify_user


@dataclass(frozen=True)
class VolumeCdf:
    """Cumulative volume fraction vs number of most-popular items."""

    counts: np.ndarray  # per-item volumes, descending
    cumulative_fraction: np.ndarray

    @property
    def n_items(self) -> int:
        return len(self.counts)

    def coverage_at(self, k: int) -> float:
        """Fraction of volume covered by the top ``k`` items."""
        if k <= 0:
            return 0.0
        if self.n_items == 0:
            return 0.0
        return float(self.cumulative_fraction[min(k, self.n_items) - 1])

    def items_for_coverage(self, target: float) -> int:
        """Smallest number of top items reaching ``target`` coverage."""
        if not 0 <= target <= 1:
            raise ValueError(f"target must be in [0, 1], got {target}")
        if self.n_items == 0:
            return 0
        idx = int(np.searchsorted(self.cumulative_fraction, target, side="left"))
        return min(idx + 1, self.n_items)


def _cdf_from_keys(keys: np.ndarray) -> VolumeCdf:
    if len(keys) == 0:
        return VolumeCdf(np.array([], dtype=np.int64), np.array([], dtype=float))
    _, counts = np.unique(keys, return_counts=True)
    counts = np.sort(counts)[::-1]
    cum = np.cumsum(counts) / counts.sum()
    return VolumeCdf(counts, cum)


def query_volume_cdf(log: SearchLog) -> VolumeCdf:
    """Figure 4(a): cumulative query volume vs most popular queries."""
    return _cdf_from_keys(log.query_keys)


def result_volume_cdf(log: SearchLog) -> VolumeCdf:
    """Figure 4(b): cumulative clicked-result volume vs popular results."""
    return _cdf_from_keys(log.result_keys)


def pair_volume_cdf(log: SearchLog) -> VolumeCdf:
    """Figure 7's x-axis: cumulative volume vs query-result pairs."""
    return _cdf_from_keys(log.pair_ids)


def figure4_series(log: SearchLog) -> Dict[str, Dict[str, VolumeCdf]]:
    """All Figure 4 curves: overall / nav / non-nav / device subsets."""
    subsets = {
        "all": log,
        "navigational": log.navigational_only(True),
        "non_navigational": log.navigational_only(False),
        "smartphone": log.for_device("smartphone"),
        "featurephone": log.for_device("featurephone"),
    }
    return {
        name: {
            "queries": query_volume_cdf(sub),
            "results": result_volume_cdf(sub),
        }
        for name, sub in subsets.items()
    }


# -- per-user repeatability (Figure 5, Section 4.2) ---------------------------


def user_new_pair_probability(log: SearchLog) -> Dict[int, float]:
    """Per-user probability that an event is a first-time (query, result).

    Measured within the given log window (pass ``log.month(m)`` for the
    paper's one-month horizon).  The complement is the user's repeat rate.
    """
    if log.n_events == 0:
        return {}
    stride = int(log.pair_ids.max()) + 1
    combined = log.user_ids.astype(np.int64) * stride + log.pair_ids
    unique_pairs = np.unique(combined)
    owners = unique_pairs // stride
    owner_ids, distinct_counts = np.unique(owners, return_counts=True)
    event_users, event_counts = np.unique(log.user_ids, return_counts=True)
    events_by_user = dict(zip(event_users.tolist(), event_counts.tolist()))
    return {
        int(uid): distinct / events_by_user[int(uid)]
        for uid, distinct in zip(owner_ids.tolist(), distinct_counts.tolist())
    }


def new_pair_probability_cdf(
    probabilities: Dict[int, float], grid: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Figure 5: fraction of users with new-query probability <= x."""
    if grid is None:
        grid = np.linspace(0, 1, 101)
    values = np.asarray(sorted(probabilities.values()))
    if len(values) == 0:
        return grid, np.zeros_like(grid)
    fractions = np.searchsorted(values, grid, side="right") / len(values)
    return grid, fractions


def overall_repeat_rate(log: SearchLog) -> float:
    """Query-weighted repeat fraction across all users in the window.

    The paper reports 56.5% for mobile and cites 40% for desktop.
    """
    if log.n_events == 0:
        return 0.0
    stride = int(log.pair_ids.max()) + 1
    combined = log.user_ids.astype(np.int64) * stride + log.pair_ids
    distinct = len(np.unique(combined))
    return 1.0 - distinct / log.n_events


def repeat_rate_by_class(log: SearchLog) -> Dict[UserClass, float]:
    """Repeat rate per Table 6 user class (classes from observed volume)."""
    volumes = log.user_monthly_volumes(month=0) if log.n_events else {}
    rates: Dict[UserClass, list] = {c: [] for c in UserClass}
    probs = user_new_pair_probability(log)
    for uid, prob in probs.items():
        volume = volumes.get(uid)
        if volume is None:
            continue
        user_class = classify_user(volume)
        if user_class is not None:
            rates[user_class].append(1.0 - prob)
    return {
        c: float(np.mean(v)) if v else float("nan") for c, v in rates.items()
    }


def unique_result_ratio(log: SearchLog, top_pairs: int) -> float:
    """Unique results per unique query among the top ``top_pairs`` pairs.

    The paper finds only ~60% of PocketSearch's cached results are unique
    relative to cached queries, motivating shared result storage.
    """
    if log.n_events == 0 or top_pairs <= 0:
        return 0.0
    pair_ids, counts = np.unique(log.pair_ids, return_counts=True)
    order = np.argsort(counts)[::-1][:top_pairs]
    chosen = pair_ids[order]
    mask = np.isin(log.pair_ids, chosen)
    n_queries = len(np.unique(log.query_keys[mask]))
    n_results = len(np.unique(log.result_keys[mask]))
    if n_queries == 0:
        return 0.0
    return n_results / n_queries


def observed_class_mix(log: SearchLog, month: int = 0) -> Dict[UserClass, float]:
    """Table 6: population share per class among qualifying users."""
    volumes = log.user_monthly_volumes(month=month)
    classes = [classify_user(v) for v in volumes.values()]
    qualifying = [c for c in classes if c is not None]
    if not qualifying:
        return {c: 0.0 for c in UserClass}
    return {
        c: sum(1 for x in qualifying if x is c) / len(qualifying)
        for c in UserClass
    }
