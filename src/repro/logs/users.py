"""Per-user behaviour models and the Table 6 population mixture.

A user's month of searching is modelled as a mixture of two regimes the
paper's analysis exposes:

* **routine** — revisiting a small set of personal *staples* (the paper:
  "70% of web visits tend to be revisits to less than a couple of tens of
  web pages for more than 50% of the users").  Staples are drawn once per
  user from the community distribution with a concentration tilt (people's
  staples are disproportionately the popular sites) and persist across
  months.
* **explore** — new information needs drawn from a flattened community
  distribution, plus a slice of user-unique queries no shared cache could
  ever know.

The routine share, staple count, and volumes vary by user class (Table 6),
which produces the paper's class gradients: heavier users repeat more and
see higher hit rates from both cache components (Figure 17).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.logs.schema import (
    CLASS_POPULATION_SHARE,
    CLASS_VOLUME_RANGES,
    UserClass,
)


@dataclass(frozen=True)
class ClassBehavior:
    """Behaviour parameters of one Table 6 user class."""

    routine_prob_mean: float
    routine_prob_conc: float  # Beta concentration; higher = tighter
    staple_exponent: float  # staples ~ volume**exponent
    explore_tilt: float
    unique_tail_prob: float


#: Per-class behaviour defaults, calibrated against Figures 5, 17-19.
#: Low concentration values spread users widely, producing Figure 5's
#: skew: a habitual majority (>=70% repeats) plus an explorer tail that
#: pulls the mean repeat rate down to ~56.5%.
DEFAULT_CLASS_BEHAVIOR: Dict[UserClass, ClassBehavior] = {
    UserClass.LOW: ClassBehavior(
        routine_prob_mean=0.73,
        routine_prob_conc=3.0,
        staple_exponent=0.45,
        explore_tilt=0.80,
        unique_tail_prob=0.33,
    ),
    UserClass.MEDIUM: ClassBehavior(
        routine_prob_mean=0.75,
        routine_prob_conc=3.2,
        staple_exponent=0.44,
        explore_tilt=0.72,
        unique_tail_prob=0.36,
    ),
    UserClass.HIGH: ClassBehavior(
        routine_prob_mean=0.78,
        routine_prob_conc=3.6,
        staple_exponent=0.42,
        explore_tilt=0.66,
        unique_tail_prob=0.33,
    ),
    UserClass.EXTREME: ClassBehavior(
        routine_prob_mean=0.80,
        routine_prob_conc=4.0,
        staple_exponent=0.40,
        explore_tilt=0.62,
        unique_tail_prob=0.31,
    ),
}

#: Concentration tilt applied when sampling a user's staple set.
STAPLE_TILT = 1.15
#: Zipf exponent of a user's preference over their own staples.
STAPLE_PREFERENCE_S = 1.05
#: Fraction of mobile users on featurephones (limited browsers).
FEATUREPHONE_SHARE = 0.30
#: Featurephone users draw from a more concentrated community model.
FEATUREPHONE_EXTRA_TILT = 1.25


@dataclass(frozen=True)
class UserBehavior:
    """Sampled behaviour of one synthetic user."""

    user_id: int
    user_class: UserClass
    device: str
    mean_monthly_volume: float
    routine_prob: float
    n_staples: int
    explore_tilt: float
    unique_tail_prob: float
    staple_weights: np.ndarray = field(repr=False, default=None)

    @property
    def community_tilt(self) -> float:
        """Extra concentration for limited-browser devices."""
        return FEATUREPHONE_EXTRA_TILT if self.device == "featurephone" else 1.0


@dataclass(frozen=True)
class PopulationConfig:
    """How to sample a user population."""

    n_users: int = 2000
    seed: int = 11
    class_shares: Dict[UserClass, float] = None
    featurephone_share: float = FEATUREPHONE_SHARE

    def __post_init__(self) -> None:
        if self.n_users <= 0:
            raise ValueError("n_users must be positive")
        if not 0 <= self.featurephone_share <= 1:
            raise ValueError("featurephone_share must be in [0, 1]")

    @property
    def shares(self) -> Dict[UserClass, float]:
        return self.class_shares or CLASS_POPULATION_SHARE


class UserPopulation:
    """A sampled population of :class:`UserBehavior` users."""

    def __init__(self, users: List[UserBehavior], config: PopulationConfig) -> None:
        self.users = users
        self.config = config

    @classmethod
    def build(cls, config: PopulationConfig = PopulationConfig()) -> "UserPopulation":
        rng = np.random.default_rng(config.seed)
        classes = list(config.shares)
        probs = np.asarray([config.shares[c] for c in classes], dtype=float)
        probs = probs / probs.sum()
        class_draws = rng.choice(len(classes), size=config.n_users, p=probs)
        users = []
        for uid in range(config.n_users):
            user_class = classes[class_draws[uid]]
            users.append(cls._sample_user(uid, user_class, config, rng))
        return cls(users, config)

    @staticmethod
    def _sample_user(
        uid: int,
        user_class: UserClass,
        config: PopulationConfig,
        rng: np.random.Generator,
    ) -> UserBehavior:
        behavior = DEFAULT_CLASS_BEHAVIOR[user_class]
        lo, hi = CLASS_VOLUME_RANGES[user_class]
        # Log-uniform volume within the class band mimics the heavy-tailed
        # volume distribution the class boundaries carve up.
        volume = float(np.exp(rng.uniform(np.log(lo), np.log(hi))))
        mean = behavior.routine_prob_mean
        conc = behavior.routine_prob_conc
        routine = float(rng.beta(mean * conc, (1 - mean) * conc))
        n_staples = max(2, int(round(volume**behavior.staple_exponent)))
        device = (
            "featurephone"
            if rng.random() < config.featurephone_share
            else "smartphone"
        )
        ranks = np.arange(1, n_staples + 1, dtype=float)
        weights = ranks**-STAPLE_PREFERENCE_S
        weights /= weights.sum()
        return UserBehavior(
            user_id=uid,
            user_class=user_class,
            device=device,
            mean_monthly_volume=volume,
            routine_prob=routine,
            n_staples=n_staples,
            explore_tilt=behavior.explore_tilt,
            unique_tail_prob=behavior.unique_tail_prob,
            staple_weights=weights,
        )

    # -- views --------------------------------------------------------------

    def by_class(self, user_class: UserClass) -> List[UserBehavior]:
        return [u for u in self.users if u.user_class is user_class]

    def class_mix(self) -> Dict[UserClass, float]:
        """Observed population share per class."""
        counts = {c: 0 for c in UserClass}
        for user in self.users:
            counts[user.user_class] += 1
        return {c: counts[c] / len(self.users) for c in UserClass}
