"""Community popularity model: the joint distribution over query/result pairs.

Flattens a :class:`~repro.logs.vocabulary.Vocabulary` into numpy arrays of
(query, result) pairs with sampling probabilities.  This is the "community
access model" of Section 3.1: what the whole population searches for.
Individual user streams are mixtures over this model (see
:mod:`repro.logs.users`).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.logs.schema import Triplet
from repro.logs.vocabulary import ResultDef, Vocabulary


class CommunityModel:
    """Sampling-ready flattened pair distribution.

    Attributes:
        query_strings: query text per query id.
        query_navigational: nav flag per query id.
        result_urls: URL per result id.
        result_records: full :class:`ResultDef` per result id.
        pair_query: query id per pair id.
        pair_result: result id per pair id.
        pair_prob: sampling probability per pair id (sums to 1).
    """

    def __init__(self, vocabulary: Vocabulary) -> None:
        self.vocabulary = vocabulary
        query_strings: List[str] = []
        query_nav: List[bool] = []
        result_urls: List[str] = []
        result_records: List[ResultDef] = []
        pair_query: List[int] = []
        pair_result: List[int] = []
        pair_weight: List[float] = []
        pair_topic: List[int] = []

        url_to_id: dict = {}
        for topic in vocabulary.topics:
            result_ids = []
            for result in topic.results:
                rid = url_to_id.get(result.url)
                if rid is None:
                    rid = len(result_urls)
                    url_to_id[result.url] = rid
                    result_urls.append(result.url)
                    result_records.append(result)
                result_ids.append(rid)
            for query in topic.queries:
                qid = len(query_strings)
                query_strings.append(query.text)
                query_nav.append(query.navigational)
                for rid, result in zip(result_ids, topic.results):
                    pair_query.append(qid)
                    pair_result.append(rid)
                    pair_weight.append(topic.weight * query.share * result.share)
                    pair_topic.append(topic.topic_id)

        self.query_strings = query_strings
        self.query_navigational = np.asarray(query_nav, dtype=bool)
        self.result_urls = result_urls
        self.result_records = result_records
        self.pair_query = np.asarray(pair_query, dtype=np.int64)
        self.pair_result = np.asarray(pair_result, dtype=np.int64)
        self.pair_topic = np.asarray(pair_topic, dtype=np.int64)
        weights = np.asarray(pair_weight, dtype=np.float64)
        total = weights.sum()
        if total <= 0:
            raise ValueError("vocabulary produced zero total pair weight")
        self.pair_prob = weights / total
        #: pair ids sorted by descending probability (popularity rank order)
        self.rank_order = np.argsort(self.pair_prob)[::-1]
        self._cdf_cache: dict = {}
        self._sibling_index: dict = {}
        self._variant_index: dict = {}

    # -- basic shape ----------------------------------------------------------

    @property
    def n_pairs(self) -> int:
        return len(self.pair_prob)

    @property
    def n_queries(self) -> int:
        return len(self.query_strings)

    @property
    def n_results(self) -> int:
        return len(self.result_urls)

    def pair_navigational(self) -> np.ndarray:
        """Navigational flag per pair id (the flag of the pair's query)."""
        return self.query_navigational[self.pair_query]

    # -- sampling ---------------------------------------------------------------

    def sample_pairs(
        self,
        n: int,
        rng: np.random.Generator,
        tilt: float = 1.0,
    ) -> np.ndarray:
        """Draw ``n`` pair ids from the community distribution.

        Args:
            n: number of draws.
            rng: numpy random generator.
            tilt: concentration exponent; probabilities are raised to
                ``tilt`` and renormalized.  ``tilt > 1`` concentrates mass
                on popular pairs (used for featurephone users, whose
                limited browsers keep them on very popular sites);
                ``tilt < 1`` flattens (desktop-like diversity).
        """
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        if tilt <= 0:
            raise ValueError(f"tilt must be positive, got {tilt}")
        cdf = self._tilted_cdf(tilt)
        draws = np.searchsorted(cdf, rng.random(n), side="right")
        return np.minimum(draws, self.n_pairs - 1).astype(np.int64)

    def _tilted_cdf(self, tilt: float) -> np.ndarray:
        key = round(float(tilt), 6)
        cached = self._cdf_cache.get(key)
        if cached is not None:
            return cached
        if tilt == 1.0:
            probs = self.pair_prob
        else:
            probs = self.pair_prob**tilt
            probs = probs / probs.sum()
        cdf = np.cumsum(probs)
        self._cdf_cache[key] = cdf
        return cdf

    # -- ideal (distribution-level) statistics ------------------------------------

    def cumulative_volume_by_pairs(self, k: int) -> float:
        """Fraction of total volume covered by the ``k`` most popular pairs."""
        if k <= 0:
            return 0.0
        k = min(k, self.n_pairs)
        return float(self.pair_prob[self.rank_order[:k]].sum())

    def top_pairs(self, k: int) -> np.ndarray:
        """Pair ids of the ``k`` most popular pairs."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        return self.rank_order[: min(k, self.n_pairs)]

    def expected_triplets(
        self, total_volume: int, limit: Optional[int] = None
    ) -> List[Triplet]:
        """Triplet rows (Table 3) under the ideal distribution.

        Args:
            total_volume: total query volume to apportion.
            limit: return only the top ``limit`` rows.
        """
        if total_volume < 0:
            raise ValueError("total_volume must be non-negative")
        order = self.rank_order if limit is None else self.rank_order[:limit]
        return [
            Triplet(
                query=self.query_strings[self.pair_query[p]],
                url=self.result_urls[self.pair_result[p]],
                volume=int(round(self.pair_prob[p] * total_volume)),
            )
            for p in order
        ]

    def pair_siblings(self, pair_id: int) -> Tuple[np.ndarray, np.ndarray]:
        """Pairs reaching the same result within the same topic.

        Returns (sibling pair ids, normalized probabilities), including
        ``pair_id`` itself.  These are the alternative phrasings/
        misspellings a user may type for the same staple destination.
        """
        key = (int(self.pair_topic[pair_id]), int(self.pair_result[pair_id]))
        siblings = self._sibling_index.get(key)
        if siblings is None:
            mask = (self.pair_topic == self.pair_topic[pair_id]) & (
                self.pair_result == self.pair_result[pair_id]
            )
            ids = np.flatnonzero(mask)
            probs = self.pair_prob[ids]
            probs = probs / probs.sum()
            siblings = (ids, probs)
            self._sibling_index[key] = siblings
        return siblings

    def pair_result_variants(self, pair_id: int) -> Tuple[np.ndarray, np.ndarray]:
        """Pairs with the same topic and query but different results.

        Returns (variant pair ids, normalized probabilities), including
        ``pair_id`` itself.  These are the alternative results a user may
        click for the same staple query ("michael jackson" -> imdb on one
        visit, azlyrics on another).
        """
        key = (int(self.pair_topic[pair_id]), int(self.pair_query[pair_id]))
        variants = self._variant_index.get(key)
        if variants is None:
            mask = (self.pair_topic == self.pair_topic[pair_id]) & (
                self.pair_query == self.pair_query[pair_id]
            )
            ids = np.flatnonzero(mask)
            probs = self.pair_prob[ids]
            probs = probs / probs.sum()
            variants = (ids, probs)
            self._variant_index[key] = variants
        return variants

    def describe_pair(self, pair_id: int) -> Tuple[str, str, float]:
        """(query, url, probability) of one pair."""
        return (
            self.query_strings[self.pair_query[pair_id]],
            self.result_urls[self.pair_result[pair_id]],
            float(self.pair_prob[pair_id]),
        )
