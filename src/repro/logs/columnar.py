"""Columnar event batches for vectorized replay.

A :class:`SearchLog` already stores its events as parallel numpy arrays;
this module packs them into a single *struct array* (one record per
event) plus a per-user index, which is what the vectorized replay engine
(:mod:`repro.sim.vectorized`) consumes: instead of masking the full log
once per user (O(users x events)), a :class:`ColumnarEventBatch` sorts
the window once and hands out zero-copy per-user slices.

Sharding is a pure per-user function: each user's shard is derived from
``np.random.SeedSequence(seed, spawn_key=(domain, user_id))`` — never
from a shared stream — so a user's shard assignment is invariant under
any permutation of (or addition to) the rest of the population, the same
property the replay harness relies on for bit-identical parallel runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.logs.schema import QueryEvent

__all__ = [
    "EVENT_DTYPE",
    "ColumnarEventBatch",
    "events_from_struct",
    "log_to_struct_array",
    "shard_of_user",
]

#: One replay event, fully resolved to integer keys.  ``query_key`` /
#: ``result_key`` index the log's community + unique-pair key spaces;
#: ``shard`` is the seeded per-user shard assignment.
EVENT_DTYPE = np.dtype(
    [
        ("user_id", np.int64),
        ("timestamp", np.float64),
        ("pair_id", np.int64),
        ("query_key", np.int64),
        ("result_key", np.int64),
        ("navigational", np.bool_),
        ("device_code", np.int8),
        ("shard", np.uint32),
    ]
)

#: Spawn-key domain for shard derivation.  Distinct from the replay
#: harness's selection (0) and replay (1) domains so shard assignment
#: never correlates with per-user replay randomness.
_SHARD_DOMAIN = 2


def shard_of_user(seed: int, user_id: int, n_shards: int) -> int:
    """The user's shard in ``[0, n_shards)``, keyed by ``(seed, user_id)``.

    A permutation-invariant pure function: it consumes no shared RNG
    stream, so the assignment depends only on the (seed, user id) pair,
    never on which other users exist or in what order they are processed.
    """
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    seq = np.random.SeedSequence(seed, spawn_key=(_SHARD_DOMAIN, user_id))
    return int(seq.generate_state(1, dtype=np.uint64)[0] % n_shards)


def log_to_struct_array(
    log, seed: int = 0, n_shards: int = 1
) -> np.ndarray:
    """Pack a :class:`SearchLog`'s columns into one struct array.

    Row order is exactly the log's row order — the struct array is a
    lossless re-encoding, not a re-sort (see :func:`events_from_struct`
    for the round trip back to :class:`QueryEvent` records).
    """
    n = log.n_events
    out = np.empty(n, dtype=EVENT_DTYPE)
    out["user_id"] = log.user_ids
    out["timestamp"] = log.timestamps
    out["pair_id"] = log.pair_ids
    out["query_key"] = log.query_keys
    out["result_key"] = log.result_keys
    out["navigational"] = log.navigational
    out["device_code"] = log.device_codes
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    if n == 0 or n_shards == 1:
        # One shard: every user's assignment is 0 by definition, so the
        # per-user SeedSequence derivation is skipped entirely.
        out["shard"] = 0
        return out
    shard_by_uid: Dict[int, int] = {}
    shards = np.empty(n, dtype=np.uint32)
    for i, uid in enumerate(log.user_ids.tolist()):
        shard = shard_by_uid.get(uid)
        if shard is None:
            shard = shard_of_user(seed, uid, n_shards)
            shard_by_uid[uid] = shard
        shards[i] = shard
    out["shard"] = shards
    return out


def events_from_struct(log, struct: np.ndarray) -> List[QueryEvent]:
    """Materialize struct-array rows back into :class:`QueryEvent` records.

    The inverse of :func:`log_to_struct_array` (up to the shard column,
    which has no :class:`QueryEvent` counterpart): resolving the integer
    keys through ``log``'s string tables reproduces ``log.events()``.
    """
    from repro.logs.generator import _DEVICE_NAMES

    return [
        QueryEvent(
            user_id=int(row["user_id"]),
            timestamp=float(row["timestamp"]),
            query=log.query_string(int(row["query_key"])),
            clicked_url=log.result_url(int(row["result_key"])),
            navigational=bool(row["navigational"]),
            device=_DEVICE_NAMES[int(row["device_code"])],
        )
        for row in struct
    ]


class ColumnarEventBatch:
    """A time window of a log, sorted by user for O(1) per-user slices.

    The sort is *stable*, so within each user the original log order
    (time order) is preserved exactly — batch construction never
    reorders a user's events relative to the scalar replay loop.
    """

    def __init__(self, struct: np.ndarray) -> None:
        order = np.argsort(struct["user_id"], kind="stable")
        self.struct = struct[order]
        if len(self.struct):
            uids = self.struct["user_id"]
            boundaries = np.flatnonzero(np.diff(uids)) + 1
            starts = np.concatenate(([0], boundaries))
            ends = np.concatenate((boundaries, [len(uids)]))
            self._slices = {
                int(uids[s]): (int(s), int(e))
                for s, e in zip(starts.tolist(), ends.tolist())
            }
        else:
            self._slices = {}

    @classmethod
    def from_log(
        cls,
        log,
        t_start: Optional[float] = None,
        t_end: Optional[float] = None,
        seed: int = 0,
        n_shards: int = 1,
        user_ids: Optional[Sequence[int]] = None,
    ) -> "ColumnarEventBatch":
        """Build a batch from a log, optionally windowed and user-filtered.

        The window/user mask is applied to the log's columns *before*
        packing, so out-of-window events are never materialized (a
        month-long window of a multi-month log only pays for its own
        rows).
        """
        mask = None
        if t_start is not None or t_end is not None:
            lo = -np.inf if t_start is None else t_start
            hi = np.inf if t_end is None else t_end
            mask = (log.timestamps >= lo) & (log.timestamps < hi)
        if user_ids is not None:
            selected = np.isin(log.user_ids, np.asarray(list(user_ids)))
            mask = selected if mask is None else (mask & selected)
        source = log._select(mask) if mask is not None else log
        return cls(log_to_struct_array(source, seed=seed, n_shards=n_shards))

    @property
    def n_events(self) -> int:
        return len(self.struct)

    @property
    def user_ids(self) -> List[int]:
        """Distinct user ids present, ascending."""
        return sorted(self._slices)

    def for_user(self, user_id: int) -> np.ndarray:
        """Zero-copy view of one user's events, in original log order."""
        span = self._slices.get(int(user_id))
        if span is None:
            return self.struct[0:0]
        return self.struct[span[0]: span[1]]

    def shards(self) -> Dict[int, List[int]]:
        """shard id -> user ids, from the struct array's shard column."""
        out: Dict[int, List[int]] = {}
        for uid in self.user_ids:
            row = self.for_user(uid)
            out.setdefault(int(row["shard"][0]), []).append(uid)
        return out
