"""Mobile search-log substrate.

The paper's PocketSearch design and evaluation are driven by 200 million
real queries from m.bing.com.  Those logs are proprietary, so this
subpackage provides a synthetic generator calibrated to every
distributional property the paper reports (see DESIGN.md section 5):

* community concentration: a few thousand popular queries/results carry
  ~60% of volume, navigational queries far more concentrated (Figure 4);
* per-user repeatability: half the users repeat at least 70% of their
  queries within a month, mean repeat rate ~56.5% (Figure 5);
* user classes by monthly volume (Table 6);
* misspelling/shortcut aliases that make multiple queries reach one
  result (only ~60% of cached results are unique);
* featurephone vs smartphone and mobile vs desktop contrasts.
"""

from repro.logs.schema import QueryEvent, Triplet, UserClass, classify_user
from repro.logs.vocabulary import (
    QueryDef,
    ResultDef,
    Topic,
    Vocabulary,
    VocabularyConfig,
)
from repro.logs.popularity import CommunityModel
from repro.logs.users import UserBehavior, UserPopulation, PopulationConfig
from repro.logs.generator import GeneratorConfig, SearchLog, generate_logs
from repro.logs import analysis

__all__ = [
    "CommunityModel",
    "GeneratorConfig",
    "PopulationConfig",
    "QueryDef",
    "QueryEvent",
    "ResultDef",
    "SearchLog",
    "Topic",
    "Triplet",
    "UserBehavior",
    "UserClass",
    "UserPopulation",
    "Vocabulary",
    "VocabularyConfig",
    "analysis",
    "classify_user",
    "generate_logs",
]
