"""Record types shared across the search-log substrate.

Mirrors the fields the paper says each log entry carries: "the raw query
string that was submitted by the mobile user as well as the search result
that was selected" (Section 4) — plus user and time, which the paper's
per-user and per-month analyses imply.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

#: Seconds in the paper's analysis month (30 days).
MONTH_SECONDS = 30 * 24 * 3600
WEEK_SECONDS = 7 * 24 * 3600


class UserClass(Enum):
    """User classes of Table 6, keyed by monthly query volume."""

    LOW = "low"  # [20, 40)
    MEDIUM = "medium"  # [40, 140)
    HIGH = "high"  # [140, 460)
    EXTREME = "extreme"  # [460, inf)


#: Monthly query-volume ranges of Table 6 (upper bound exclusive).
CLASS_VOLUME_RANGES = {
    UserClass.LOW: (20, 40),
    UserClass.MEDIUM: (40, 140),
    UserClass.HIGH: (140, 460),
    UserClass.EXTREME: (460, 2000),
}

#: Population mixture of Table 6.
CLASS_POPULATION_SHARE = {
    UserClass.LOW: 0.55,
    UserClass.MEDIUM: 0.36,
    UserClass.HIGH: 0.08,
    UserClass.EXTREME: 0.01,
}

#: Users below this monthly volume are ignored, as in the paper.
MIN_MONTHLY_VOLUME = 20


def classify_user(monthly_volume: int) -> Optional[UserClass]:
    """Classify a user by monthly query volume per Table 6.

    Returns ``None`` for users below the paper's 20-queries/month floor.
    """
    if monthly_volume < MIN_MONTHLY_VOLUME:
        return None
    if monthly_volume < 40:
        return UserClass.LOW
    if monthly_volume < 140:
        return UserClass.MEDIUM
    if monthly_volume < 460:
        return UserClass.HIGH
    return UserClass.EXTREME


@dataclass(frozen=True)
class QueryEvent:
    """One search-log entry: a query and the result clicked for it."""

    user_id: int
    timestamp: float
    query: str
    clicked_url: str
    navigational: bool
    device: str = "smartphone"  # or "featurephone" / "desktop"


@dataclass(frozen=True)
class Triplet:
    """A <query, search result, volume> row of Table 3."""

    query: str
    url: str
    volume: int

    def __post_init__(self) -> None:
        if self.volume < 0:
            raise ValueError(f"volume must be non-negative, got {self.volume}")


def is_navigational(query: str, url: str) -> bool:
    """The paper's navigational test: query string is a substring of the URL.

    Comparison is case-insensitive with whitespace stripped from the query
    (i.e. "youtube" vs www.youtube.com is navigational).
    """
    needle = query.strip().lower().replace(" ", "")
    return bool(needle) and needle in url.lower()
