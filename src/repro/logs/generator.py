"""Synthetic search-log generation.

Produces multi-month event streams for a sampled user population over a
community popularity model.  The output :class:`SearchLog` is columnar
(numpy arrays) for fast analysis and cache replay, with lazy
materialization of :class:`~repro.logs.schema.QueryEvent` records.

Unique personal queries (the long tail no shared cache can know) are given
key values past the community id ranges, so every (query, result) pair —
community or personal — has a stable integer identity usable as a cache
key during replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.logs.popularity import CommunityModel
from repro.logs.schema import MONTH_SECONDS, QueryEvent
from repro.logs.users import PopulationConfig, UserBehavior, UserPopulation
from repro.logs.vocabulary import Vocabulary, VocabularyConfig

_DEVICE_CODES = {"smartphone": 0, "featurephone": 1, "desktop": 2}
_DEVICE_NAMES = {v: k for k, v in _DEVICE_CODES.items()}

#: Relative query volume per hour of day (mobile search is quiet
#: overnight, ramps through the morning, and peaks midday and evening).
DIURNAL_WEIGHTS = np.array(
    [
        0.25, 0.15, 0.10, 0.08, 0.08, 0.12,  # 00-05
        0.25, 0.45, 0.70, 0.90, 1.00, 1.10,  # 06-11
        1.25, 1.20, 1.05, 1.00, 1.05, 1.15,  # 12-17
        1.30, 1.45, 1.50, 1.30, 0.95, 0.55,  # 18-23
    ]
)
_DIURNAL_P = DIURNAL_WEIGHTS / DIURNAL_WEIGHTS.sum()


def _sample_timestamps(
    volume: int, rng: np.random.Generator
) -> np.ndarray:
    """Event times within one month, following the diurnal profile."""
    days = rng.integers(0, 30, size=volume)
    hours = rng.choice(24, size=volume, p=_DIURNAL_P)
    seconds = rng.uniform(0, 3600, size=volume)
    return np.sort(days * 86400.0 + hours * 3600.0 + seconds)

#: Desktop-mode overrides (Section 4 contrasts; see DESIGN.md): desktop
#: query streams are flatter and less repetitive than mobile.
DESKTOP_ROUTINE_SCALE = 0.62
DESKTOP_COMMUNITY_TILT = 0.70
DESKTOP_EXPLORE_TILT_SCALE = 1.25

#: Probability that a routine (staple) event is typed as an alternative
#: phrasing of the staple query (misspelling or shortcut).
ALIAS_SWITCH_PROB = 0.22

#: Probability that a routine event clicks an alternative result of the
#: staple query (same query, different destination).
RESULT_SWITCH_PROB = 0.25


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of one log-generation run."""

    months: int = 2
    seed: int = 23
    desktop: bool = False
    monthly_volume_jitter: float = 0.15

    def __post_init__(self) -> None:
        if self.months <= 0:
            raise ValueError("months must be positive")
        if self.monthly_volume_jitter < 0:
            raise ValueError("monthly_volume_jitter must be non-negative")


class SearchLog:
    """A columnar, multi-month search log.

    Attributes:
        user_ids, timestamps, pair_ids, query_keys, result_keys,
        navigational, device_codes: parallel numpy arrays, one row per
        logged (query, clicked result) event, sorted by timestamp within
        each user.
    """

    def __init__(
        self,
        community: CommunityModel,
        population: UserPopulation,
        user_ids: np.ndarray,
        timestamps: np.ndarray,
        pair_ids: np.ndarray,
        query_keys: np.ndarray,
        result_keys: np.ndarray,
        navigational: np.ndarray,
        device_codes: np.ndarray,
        unique_names: Dict[int, Tuple[str, str]],
    ) -> None:
        self.community = community
        self.population = population
        self.user_ids = user_ids
        self.timestamps = timestamps
        self.pair_ids = pair_ids
        self.query_keys = query_keys
        self.result_keys = result_keys
        self.navigational = navigational
        self.device_codes = device_codes
        self._unique_names = unique_names

    # -- shape ---------------------------------------------------------------

    @property
    def n_events(self) -> int:
        return len(self.user_ids)

    def __len__(self) -> int:
        return self.n_events

    # -- string lookup --------------------------------------------------------

    def query_string(self, query_key: int) -> str:
        if query_key < self.community.n_queries:
            return self.community.query_strings[query_key]
        return self._unique_names[int(query_key)][0]

    def result_url(self, result_key: int) -> str:
        if result_key < self.community.n_results:
            return self.community.result_urls[result_key]
        # Unique pairs share one id space for query and result keys.
        offset = int(result_key) - self.community.n_results
        unique_qkey = self.community.n_queries + offset
        return self._unique_names[unique_qkey][1]

    # -- views ---------------------------------------------------------------

    def _select(self, mask: np.ndarray) -> "SearchLog":
        return SearchLog(
            self.community,
            self.population,
            self.user_ids[mask],
            self.timestamps[mask],
            self.pair_ids[mask],
            self.query_keys[mask],
            self.result_keys[mask],
            self.navigational[mask],
            self.device_codes[mask],
            self._unique_names,
        )

    def month(self, m: int) -> "SearchLog":
        """Events of month ``m`` (0-based)."""
        lo, hi = m * MONTH_SECONDS, (m + 1) * MONTH_SECONDS
        return self.window(lo, hi)

    def window(self, t_start: float, t_end: float) -> "SearchLog":
        mask = (self.timestamps >= t_start) & (self.timestamps < t_end)
        return self._select(mask)

    def for_user(self, user_id: int) -> "SearchLog":
        return self._select(self.user_ids == user_id)

    def for_device(self, device: str) -> "SearchLog":
        code = _DEVICE_CODES[device]
        return self._select(self.device_codes == code)

    def navigational_only(self, navigational: bool = True) -> "SearchLog":
        return self._select(self.navigational == navigational)

    def user_monthly_volumes(self, month: int = 0) -> Dict[int, int]:
        """Events per user within a month."""
        sub = self.month(month)
        users, counts = np.unique(sub.user_ids, return_counts=True)
        return dict(zip(users.tolist(), counts.tolist()))

    # -- columnar batches -----------------------------------------------------

    def to_struct_array(self, seed: int = 0, n_shards: int = 1) -> np.ndarray:
        """Pack the event columns into one numpy struct array.

        Row order is preserved exactly; the extra ``shard`` column is the
        seeded per-user shard assignment (see :mod:`repro.logs.columnar`).
        """
        from repro.logs.columnar import log_to_struct_array

        return log_to_struct_array(self, seed=seed, n_shards=n_shards)

    def to_columnar(
        self,
        t_start: Optional[float] = None,
        t_end: Optional[float] = None,
        seed: int = 0,
        n_shards: int = 1,
        user_ids=None,
    ):
        """A :class:`~repro.logs.columnar.ColumnarEventBatch` over a window.

        The batch indexes events by user for O(1) per-user slices — the
        layout the vectorized replay engine consumes.
        """
        from repro.logs.columnar import ColumnarEventBatch

        return ColumnarEventBatch.from_log(
            self, t_start=t_start, t_end=t_end, seed=seed,
            n_shards=n_shards, user_ids=user_ids,
        )

    # -- materialization ------------------------------------------------------

    def events(self) -> Iterator[QueryEvent]:
        """Materialize events (slow path; analysis uses the columns)."""
        for i in range(self.n_events):
            yield QueryEvent(
                user_id=int(self.user_ids[i]),
                timestamp=float(self.timestamps[i]),
                query=self.query_string(int(self.query_keys[i])),
                clicked_url=self.result_url(int(self.result_keys[i])),
                navigational=bool(self.navigational[i]),
                device=_DEVICE_NAMES[int(self.device_codes[i])],
            )


def generate_logs(
    community: Optional[CommunityModel] = None,
    population: Optional[UserPopulation] = None,
    config: GeneratorConfig = GeneratorConfig(),
) -> SearchLog:
    """Generate a multi-month synthetic search log.

    Args:
        community: community popularity model (built from the default
            :class:`VocabularyConfig` when omitted).
        population: user population (default :class:`PopulationConfig`).
        config: generation knobs.

    Returns:
        A :class:`SearchLog` covering ``config.months`` months.
    """
    if community is None:
        community = CommunityModel(Vocabulary.build(VocabularyConfig()))
    if population is None:
        population = UserPopulation.build(PopulationConfig())
    rng = np.random.default_rng(config.seed)

    user_col: List[np.ndarray] = []
    time_col: List[np.ndarray] = []
    pair_col: List[np.ndarray] = []
    unique_names: Dict[int, Tuple[str, str]] = {}
    unique_counter = 0

    n_pairs = community.n_pairs
    for user in population.users:
        staples = _draw_staples(user, community, rng, config.desktop)
        for m in range(config.months):
            volume = _monthly_volume(user, config, rng)
            pairs, unique_counter = _draw_month_pairs(
                user,
                staples,
                volume,
                community,
                rng,
                config,
                unique_counter,
            )
            times = _sample_timestamps(volume, rng)
            times += m * MONTH_SECONDS
            user_col.append(np.full(volume, user.user_id, dtype=np.int64))
            time_col.append(times)
            pair_col.append(pairs)

    user_ids = np.concatenate(user_col)
    timestamps = np.concatenate(time_col)
    pair_ids = np.concatenate(pair_col)

    # Resolve pair ids into query/result keys and flags.
    query_keys = np.empty(len(pair_ids), dtype=np.int64)
    result_keys = np.empty(len(pair_ids), dtype=np.int64)
    navigational = np.zeros(len(pair_ids), dtype=bool)
    is_community = pair_ids < n_pairs
    comm = pair_ids[is_community]
    query_keys[is_community] = community.pair_query[comm]
    result_keys[is_community] = community.pair_result[comm]
    navigational[is_community] = community.query_navigational[
        community.pair_query[comm]
    ]
    uniq = ~is_community
    unique_offset = pair_ids[uniq] - n_pairs
    query_keys[uniq] = community.n_queries + unique_offset
    result_keys[uniq] = community.n_results + unique_offset

    # Name the unique pairs that actually occurred.
    owners = user_ids[uniq]
    for offset, owner in zip(unique_offset.tolist(), owners.tolist()):
        qkey = community.n_queries + offset
        if qkey not in unique_names:
            unique_names[qkey] = (
                f"personal query {owner}-{offset}",
                f"www.personal{owner}-{offset}.net",
            )

    max_uid = max(u.user_id for u in population.users)
    code_by_uid = np.zeros(max_uid + 1, dtype=np.int8)
    for u in population.users:
        code_by_uid[u.user_id] = _DEVICE_CODES[
            "desktop" if config.desktop else u.device
        ]
    device_codes = code_by_uid[user_ids]

    return SearchLog(
        community,
        population,
        user_ids,
        timestamps,
        pair_ids,
        query_keys,
        result_keys,
        navigational,
        device_codes,
        unique_names,
    )


# -- sampling internals -----------------------------------------------------


def _draw_staples(
    user: UserBehavior,
    community: CommunityModel,
    rng: np.random.Generator,
    desktop: bool,
) -> np.ndarray:
    """A user's persistent staple pairs (popular-skewed, deduplicated)."""
    from repro.logs.users import STAPLE_TILT

    tilt = STAPLE_TILT * user.community_tilt
    if desktop:
        tilt *= DESKTOP_COMMUNITY_TILT
    draws = community.sample_pairs(user.n_staples * 3, rng, tilt=tilt)
    staples = list(dict.fromkeys(draws.tolist()))[: user.n_staples]
    while len(staples) < user.n_staples:
        extra = community.sample_pairs(user.n_staples, rng, tilt=tilt)
        for pair in extra.tolist():
            if pair not in staples:
                staples.append(pair)
                if len(staples) == user.n_staples:
                    break
    return np.asarray(staples, dtype=np.int64)


def _monthly_volume(
    user: UserBehavior, config: GeneratorConfig, rng: np.random.Generator
) -> int:
    jitter = rng.lognormal(0.0, config.monthly_volume_jitter)
    return max(1, int(round(user.mean_monthly_volume * jitter)))


def _draw_month_pairs(
    user: UserBehavior,
    staples: np.ndarray,
    volume: int,
    community: CommunityModel,
    rng: np.random.Generator,
    config: GeneratorConfig,
    unique_counter: int,
) -> Tuple[np.ndarray, int]:
    routine_prob = user.routine_prob
    explore_tilt = user.explore_tilt * user.community_tilt
    if config.desktop:
        routine_prob *= DESKTOP_ROUTINE_SCALE
        explore_tilt /= DESKTOP_EXPLORE_TILT_SCALE

    mode = rng.random(volume)
    routine_mask = mode < routine_prob
    n_routine = int(routine_mask.sum())
    n_explore = volume - n_routine

    pairs = np.empty(volume, dtype=np.int64)
    if n_routine:
        weights = user.staple_weights[: len(staples)]
        weights = weights / weights.sum()
        idx = rng.choice(len(staples), size=n_routine, p=weights)
        routine_pairs = staples[idx]
        # Users re-type their staples in alternative phrasings: with some
        # probability an event uses a misspelling/shortcut sibling of the
        # staple pair (same destination, different query string).
        switch = rng.random(n_routine) < ALIAS_SWITCH_PROB
        for j in np.flatnonzero(switch):
            sibling_ids, sibling_probs = community.pair_siblings(
                int(routine_pairs[j])
            )
            if len(sibling_ids) > 1:
                routine_pairs[j] = sibling_ids[
                    rng.choice(len(sibling_ids), p=sibling_probs)
                ]
        # Independently, the user may click a different result for the
        # same staple query (the "michael jackson" two-destination case).
        result_switch = rng.random(n_routine) < RESULT_SWITCH_PROB
        for j in np.flatnonzero(result_switch):
            variant_ids, variant_probs = community.pair_result_variants(
                int(routine_pairs[j])
            )
            if len(variant_ids) > 1:
                routine_pairs[j] = variant_ids[
                    rng.choice(len(variant_ids), p=variant_probs)
                ]
        pairs[routine_mask] = routine_pairs
    if n_explore:
        tail_mask = rng.random(n_explore) < user.unique_tail_prob
        n_tail = int(tail_mask.sum())
        n_comm = n_explore - n_tail
        explore = np.empty(n_explore, dtype=np.int64)
        if n_comm:
            explore[~tail_mask] = community.sample_pairs(
                n_comm, rng, tilt=explore_tilt
            )
        if n_tail:
            explore[tail_mask] = (
                community.n_pairs + unique_counter + np.arange(n_tail)
            )
            unique_counter += n_tail
        pairs[~routine_mask] = explore
    return pairs, unique_counter
