"""Query/result universe construction.

The universe is organised in *topics*.  A topic bundles the query strings
users type for one information need with the search results they click:

* a **navigational** topic has a single result (the site) reached through
  its canonical site-name query (navigational by the paper's substring
  test) plus misspelling/shortcut aliases ("yotube", "boa") that are not
  substrings of the URL;
* a **non-navigational** topic ("michael jackson") has one or two query
  phrasings and one to three clicked results with uneven click shares.

This structure produces the two alias effects the paper measured: popular
results are reached through several distinct queries (60% more queries
than results for equal volume coverage), and a query can map to multiple
results (which is why the PocketSearch hash table stores two results per
entry and chains extra entries).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.logs.schema import is_navigational


@dataclass(frozen=True)
class QueryDef:
    """One query string of a topic, with its share of the topic's volume."""

    text: str
    share: float
    navigational: bool


@dataclass(frozen=True)
class ResultDef:
    """One clickable result of a topic."""

    url: str
    title: str
    snippet_bytes: int
    share: float

    @property
    def record_bytes(self) -> int:
        """Bytes needed to store this result in the PocketSearch database
        (title + URL + human-readable URL + snippet), ~500 B on average as
        the paper reports."""
        return len(self.title) + 2 * len(self.url) + self.snippet_bytes


@dataclass(frozen=True)
class Topic:
    """A bundle of queries and results serving one information need."""

    topic_id: int
    navigational: bool
    weight: float
    queries: List[QueryDef]
    results: List[ResultDef]


@dataclass(frozen=True)
class VocabularyConfig:
    """Size and shape knobs of the synthetic universe.

    Defaults give a scaled-down universe (~50k distinct queries) that
    preserves the paper's fractional concentration targets; benchmarks
    scale ``n_nav_topics``/``n_non_nav_topics`` up for paper-scale runs.
    """

    n_nav_topics: int = 12_000
    n_non_nav_topics: int = 18_000
    nav_zipf_s: float = 0.95
    non_nav_zipf_s: float = 0.40
    nav_volume_share: float = 0.62
    nav_alias_rate: float = 1.3
    non_nav_alias_rate: float = 0.8
    extra_result_p: float = 0.60
    nav_extra_result_p: float = 0.60
    shared_result_p: float = 0.35
    shared_result_scale: float = 60.0
    canonical_query_share: float = 0.50
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_nav_topics <= 0 or self.n_non_nav_topics <= 0:
            raise ValueError("topic counts must be positive")
        if not 0 < self.nav_volume_share < 1:
            raise ValueError("nav_volume_share must be in (0, 1)")
        if not 0 < self.canonical_query_share <= 1:
            raise ValueError("canonical_query_share must be in (0, 1]")


_NAV_ALIAS_PATTERNS = (
    "syte{t}", "sitee{t}", "cite{t}", "sit {t}", "zite{t}", "syt {t}", "cyte{t}"
)
_NON_NAV_ALIAS_PATTERNS = (
    "topc {t}", "topik {t}", "tpc {t}", "topid {t}", "topi {t}", "tobic {t}"
)


def _zipf_weights(n: int, s: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    w = ranks**-s
    return w / w.sum()


class Vocabulary:
    """The generated topic universe.

    Use :meth:`build` to construct one from a :class:`VocabularyConfig`.
    """

    def __init__(self, config: VocabularyConfig, topics: List[Topic]) -> None:
        self.config = config
        self.topics = topics

    @classmethod
    def build(cls, config: VocabularyConfig = VocabularyConfig()) -> "Vocabulary":
        rng = np.random.default_rng(config.seed)
        topics: List[Topic] = []
        nav_w = _zipf_weights(config.n_nav_topics, config.nav_zipf_s)
        non_nav_w = _zipf_weights(config.n_non_nav_topics, config.non_nav_zipf_s)

        for i in range(config.n_nav_topics):
            topics.append(
                cls._build_nav_topic(
                    topic_id=i,
                    weight=float(nav_w[i]) * config.nav_volume_share,
                    rank_fraction=i / config.n_nav_topics,
                    config=config,
                    rng=rng,
                )
            )
        offset = config.n_nav_topics
        for i in range(config.n_non_nav_topics):
            topics.append(
                cls._build_non_nav_topic(
                    topic_id=offset + i,
                    weight=float(non_nav_w[i]) * (1 - config.nav_volume_share),
                    rank_fraction=i / config.n_non_nav_topics,
                    config=config,
                    rng=rng,
                )
            )
        return cls(config, topics)

    @staticmethod
    def _alias_boost(rank_fraction: float) -> float:
        """Popular topics collect more misspellings and shortcuts.

        The very popular sites ("youtube", "bank of america") are typed by
        millions of users and accumulate misspelling variants ("yotube")
        and shortcuts ("boa"); tail topics are typically reached one way.
        """
        if rank_fraction < 0.05:
            return 4.0
        if rank_fraction < 0.20:
            return 2.2
        return 0.8

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def _query_shares(n: int, canonical_share: float) -> List[float]:
        """Volume shares for a canonical query plus ``n - 1`` aliases."""
        if n == 1:
            return [1.0]
        alias_total = 1.0 - canonical_share
        # Aliases get geometrically decreasing shares of the alias mass.
        raw = [0.65**k for k in range(n - 1)]
        norm = sum(raw)
        return [canonical_share] + [alias_total * r / norm for r in raw]

    @classmethod
    def _build_nav_topic(
        cls,
        topic_id: int,
        weight: float,
        rank_fraction: float,
        config: VocabularyConfig,
        rng: np.random.Generator,
    ) -> Topic:
        site = f"site{topic_id}"
        url = f"www.{site}.com"
        rate = config.nav_alias_rate * cls._alias_boost(rank_fraction)
        n_aliases = min(int(rng.poisson(rate)), len(_NAV_ALIAS_PATTERNS))
        names = [site] + [
            _NAV_ALIAS_PATTERNS[k].format(t=topic_id) for k in range(n_aliases)
        ]
        shares = cls._query_shares(len(names), config.canonical_query_share)
        queries = [
            QueryDef(text=q, share=s, navigational=is_navigational(q, url))
            for q, s in zip(names, shares)
        ]
        snippet = int(np.clip(rng.normal(500, 60), 300, 700))
        results = [
            ResultDef(url=url, title=f"Site {topic_id}", snippet_bytes=snippet, share=1.0)
        ]
        if rng.random() < config.nav_extra_result_p:
            # Popular sites are also reached through a secondary page
            # (login or mobile frontend) that users click directly.
            snippet2 = int(np.clip(rng.normal(500, 60), 300, 700))
            results = [
                ResultDef(url=url, title=f"Site {topic_id}", snippet_bytes=snippet, share=0.55),
                ResultDef(
                    url=f"{url}/login",
                    title=f"Site {topic_id} login",
                    snippet_bytes=snippet2,
                    share=0.45,
                ),
            ]
        return Topic(topic_id, True, weight, queries, results)

    @classmethod
    def _build_non_nav_topic(
        cls,
        topic_id: int,
        weight: float,
        rank_fraction: float,
        config: VocabularyConfig,
        rng: np.random.Generator,
    ) -> Topic:
        name = f"topic {topic_id}"
        rate = config.non_nav_alias_rate * cls._alias_boost(rank_fraction)
        n_aliases = min(int(rng.poisson(rate)), len(_NON_NAV_ALIAS_PATTERNS))
        names = [name] + [
            _NON_NAV_ALIAS_PATTERNS[k].format(t=topic_id) for k in range(n_aliases)
        ]
        q_shares = cls._query_shares(len(names), config.canonical_query_share)

        n_results = 1 + int(rng.binomial(2, config.extra_result_p))
        shared_url = None
        if rng.random() < config.shared_result_p:
            # Popular destinations are reached from many topics (the
            # paper's "michael jackson" -> imdb example): one of this
            # topic's results is a popular navigational site.
            site = min(
                int(rng.exponential(config.shared_result_scale)),
                config.n_nav_topics - 1,
            )
            shared_url = f"www.site{site}.com"
            n_results = max(n_results, 2)
        r_raw = [0.8**k for k in range(n_results)]
        r_norm = sum(r_raw)
        results = []
        for k in range(n_results):
            snippet = int(np.clip(rng.normal(500, 60), 300, 700))
            if shared_url is not None and k == 1:
                url, title = shared_url, f"Shared site result"
            else:
                url, title = f"www.info{topic_id}.org/page{k}", f"Topic {topic_id} page {k}"
            results.append(
                ResultDef(
                    url=url,
                    title=title,
                    snippet_bytes=snippet,
                    share=r_raw[k] / r_norm,
                )
            )
        queries = [
            QueryDef(text=q, share=s, navigational=is_navigational(q, results[0].url))
            for q, s in zip(names, q_shares)
        ]
        return Topic(topic_id, False, weight, queries, results)

    # -- stats ---------------------------------------------------------------

    @property
    def n_queries(self) -> int:
        return sum(len(t.queries) for t in self.topics)

    @property
    def n_results(self) -> int:
        return sum(len(t.results) for t in self.topics)

    @property
    def n_pairs(self) -> int:
        return sum(len(t.queries) * len(t.results) for t in self.topics)
