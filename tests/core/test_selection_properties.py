"""Property-based tests on the data selector."""

from hypothesis import given, settings, strategies as st

from repro.core.selection import (
    CommunityAccessModel,
    DataSelector,
    PersonalAccessModel,
)

items = st.dictionaries(
    st.integers(0, 30),
    st.tuples(
        st.integers(min_value=0, max_value=100),  # community volume
        st.integers(min_value=0, max_value=10),  # personal accesses
        st.integers(min_value=1, max_value=50),  # bytes
    ),
    max_size=20,
)


@given(items=items, budget=st.integers(min_value=0, max_value=300))
@settings(max_examples=80, deadline=None)
def test_selection_invariants(items, budget):
    community = CommunityAccessModel()
    personal = PersonalAccessModel(decay_rate=0.0)
    item_bytes = {}
    t = 0.0
    for key, (volume, accesses, nbytes) in items.items():
        if volume:
            community.record(key, volume)
        for _ in range(accesses):
            personal.record(key, t)
            t += 1.0
        item_bytes[key] = nbytes
    selector = DataSelector(community, personal)
    chosen = selector.select(budget, item_bytes)
    # Budget respected; no duplicates; scores descending; all scored > 0.
    assert sum(item_bytes[s.item] for s in chosen) <= budget
    assert len({s.item for s in chosen}) == len(chosen)
    scores = [s.score for s in chosen]
    assert all(b <= a + 1e-12 for a, b in zip(scores, scores[1:]))
    assert all(s.score > 0 for s in chosen)
