"""Tests for update policies (Section 3.2)."""

import pytest

from repro.core.management import ChargeState, UpdatePolicy, UpdateScheduler

DAY = 24 * 3600


class TestPolicyAssignment:
    def test_hot_items_realtime(self):
        scheduler = UpdateScheduler(realtime_threshold_per_day=3)
        scheduler.observe_daily_rate("stocks", 10)
        scheduler.observe_daily_rate("maps", 0.1)
        assert scheduler.policy_for("stocks") is UpdatePolicy.REALTIME
        assert scheduler.policy_for("maps") is UpdatePolicy.PERIODIC_CHARGING

    def test_unknown_item_defaults_to_periodic(self):
        scheduler = UpdateScheduler()
        assert scheduler.policy_for("never seen") is UpdatePolicy.PERIODIC_CHARGING

    def test_hot_set(self):
        scheduler = UpdateScheduler(realtime_threshold_per_day=3)
        scheduler.observe_daily_rate("a", 5)
        scheduler.observe_daily_rate("b", 1)
        assert scheduler.hot_set() == {"a"}


class TestBulkUpdates:
    def test_requires_charging_and_fast_link(self):
        scheduler = UpdateScheduler(bulk_period_s=DAY)
        assert not scheduler.bulk_update_due(
            2 * DAY, ChargeState(charging=True, on_fast_link=False)
        )
        assert not scheduler.bulk_update_due(
            2 * DAY, ChargeState(charging=False, on_fast_link=True)
        )
        assert scheduler.bulk_update_due(
            2 * DAY, ChargeState(charging=True, on_fast_link=True)
        )

    def test_period_enforced(self):
        scheduler = UpdateScheduler(bulk_period_s=DAY)
        charge = ChargeState(charging=True, on_fast_link=True)
        assert scheduler.run_bulk_update(DAY, charge)
        assert not scheduler.run_bulk_update(DAY + 3600, charge)
        assert scheduler.run_bulk_update(2 * DAY + 1, charge)


class TestRealtimeUpdates:
    def test_budget_enforced(self):
        scheduler = UpdateScheduler(
            realtime_threshold_per_day=1, realtime_budget_per_day=2
        )
        scheduler.observe_daily_rate("hot", 5)
        assert scheduler.request_realtime_update("hot", 100.0)
        assert scheduler.request_realtime_update("hot", 200.0)
        assert not scheduler.request_realtime_update("hot", 300.0)

    def test_budget_resets_daily(self):
        scheduler = UpdateScheduler(
            realtime_threshold_per_day=1, realtime_budget_per_day=1
        )
        scheduler.observe_daily_rate("hot", 5)
        assert scheduler.request_realtime_update("hot", 0.0)
        assert not scheduler.request_realtime_update("hot", 1.0)
        assert scheduler.request_realtime_update("hot", DAY + 1.0)

    def test_cold_items_refused(self):
        scheduler = UpdateScheduler(realtime_threshold_per_day=3)
        scheduler.observe_daily_rate("cold", 0.5)
        assert not scheduler.request_realtime_update("cold", 0.0)


class TestDecisions:
    def test_snapshot(self):
        scheduler = UpdateScheduler(
            bulk_period_s=DAY, realtime_threshold_per_day=3
        )
        scheduler.observe_daily_rate("hot", 5)
        scheduler.observe_daily_rate("cold", 0.1)
        decisions = {
            d.item: d
            for d in scheduler.decisions(
                2 * DAY, ChargeState(charging=True, on_fast_link=True)
            )
        }
        assert decisions["hot"].policy is UpdatePolicy.REALTIME
        assert decisions["hot"].due
        assert decisions["cold"].due  # bulk window is open

    def test_validation(self):
        with pytest.raises(ValueError):
            UpdateScheduler(bulk_period_s=0)
        with pytest.raises(ValueError):
            UpdateScheduler(realtime_threshold_per_day=-1)
        scheduler = UpdateScheduler()
        with pytest.raises(ValueError):
            scheduler.observe_daily_rate("x", -1)
