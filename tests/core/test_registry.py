"""Tests for the multi-cloudlet registry (Section 7)."""

import pytest

from repro.core.registry import CloudletRegistry, IsolationError
from tests.core.test_cloudlet import DictCloudlet


@pytest.fixture
def registry():
    reg = CloudletRegistry(total_budget_bytes=10_000, index_budget_bytes=1000)
    reg.register(DictCloudlet("search", 4000), index_bytes=400)
    reg.register(DictCloudlet("ads", 2000), index_bytes=200)
    return reg


class TestRegistration:
    def test_names(self, registry):
        assert registry.names == ["ads", "search"]

    def test_duplicate_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.register(DictCloudlet("search", 100))

    def test_storage_budget_enforced(self, registry):
        with pytest.raises(ValueError):
            registry.register(DictCloudlet("maps", 5000))

    def test_index_budget_enforced(self, registry):
        """Indexes compete with user apps for main memory (Section 7)."""
        with pytest.raises(ValueError):
            registry.register(DictCloudlet("maps", 100), index_bytes=500)

    def test_unregister(self, registry):
        registry.unregister("ads")
        assert registry.names == ["search"]
        registry.register(DictCloudlet("maps", 5000))  # budget freed

    def test_free_bytes(self, registry):
        assert registry.free_bytes == 10_000 - 6000

    def test_unknown_lookup(self, registry):
        with pytest.raises(KeyError):
            registry.cloudlet("nope")


class TestIsolation:
    def test_cross_read_denied_by_default(self, registry):
        registry.cloudlet("search").record_access("secret", "v", 10)
        with pytest.raises(IsolationError):
            registry.read_across("ads", "search", "secret")

    def test_cross_read_with_grant(self, registry):
        registry.cloudlet("search").record_access("k", "v", 10)
        registry.grant_access("ads", "search")
        assert registry.read_across("ads", "search", "k") == "v"

    def test_revoke(self, registry):
        registry.grant_access("ads", "search")
        registry.revoke_access("ads", "search")
        with pytest.raises(IsolationError):
            registry.read_across("ads", "search", "k")

    def test_self_read_always_allowed(self, registry):
        registry.cloudlet("search").record_access("k", "v", 10)
        assert registry.read_across("search", "search", "k") == "v"

    def test_unregister_revokes_grants(self, registry):
        registry.grant_access("ads", "search")
        registry.unregister("ads")
        registry.register(DictCloudlet("ads", 2000))
        with pytest.raises(IsolationError):
            registry.read_across("ads", "search", "k")


class TestCoordinatedEviction:
    def test_group_evicted_across_cloudlets(self, registry):
        """Related items (query in search + ad caches) evict together."""
        search = registry.cloudlet("search")
        ads = registry.cloudlet("ads")
        search.record_access("q", "serp", 100)
        ads.record_access("q", "banner", 50)
        registry.link_group("q", [("search", "q", 100), ("ads", "q", 50)])
        event = registry.evict_group("q")
        assert event.total_freed == 150
        assert search.lookup_local("q") is None
        assert ads.lookup_local("q") is None

    def test_unknown_group(self, registry):
        with pytest.raises(KeyError):
            registry.evict_group("nope")

    def test_reclaim_until_target(self, registry):
        search = registry.cloudlet("search")
        for i in range(4):
            key = f"q{i}"
            search.record_access(key, "v", 100)
            registry.link_group(key, [("search", key, 100)])
        events = registry.reclaim(250)
        assert sum(e.total_freed for e in events) >= 250
        assert len(events) == 3

    def test_reclaim_validation(self, registry):
        with pytest.raises(ValueError):
            registry.reclaim(-1)

    def test_link_group_validation(self, registry):
        with pytest.raises(KeyError):
            registry.link_group("g", [("nope", "k", 10)])
        with pytest.raises(ValueError):
            registry.link_group("g", [("search", "k", -1)])
