"""Tests for the generic cloudlet interface."""

import pytest

from repro.core.cloudlet import Cloudlet


class DictCloudlet(Cloudlet):
    """Minimal concrete cloudlet over a dict, for interface testing."""

    def __init__(self, name="test", budget=1000):
        super().__init__(name, budget)
        self.store = {}
        self.sizes = {}

    def lookup_local(self, key):
        return self.store.get(key)

    def store_local(self, key, value, nbytes):
        self.store[key] = value
        self.sizes[key] = nbytes

    def evict(self, nbytes):
        freed = 0
        for key in list(self.store):
            if freed >= nbytes:
                break
            freed += self.sizes.pop(key)
            del self.store[key]
        return freed

    def local_cost(self, key):
        return (0.01, 0.001)

    def remote_cost(self, key):
        return (5.0, 10.0)


class TestServicePath:
    def test_hit(self):
        cloudlet = DictCloudlet()
        cloudlet.record_access("k", "v", 10)
        outcome = cloudlet.serve("k")
        assert outcome.hit
        assert outcome.value == "v"
        assert outcome.latency_s == 0.01

    def test_miss(self):
        cloudlet = DictCloudlet()
        outcome = cloudlet.serve("k")
        assert not outcome.hit
        assert outcome.latency_s == 5.0

    def test_stats(self):
        cloudlet = DictCloudlet()
        cloudlet.record_access("k", "v", 10)
        cloudlet.serve("k")
        cloudlet.serve("missing")
        assert cloudlet.stats.hit_rate == 0.5
        assert cloudlet.stats.bytes_stored == 10


class TestBudget:
    def test_eviction_on_overflow(self):
        cloudlet = DictCloudlet(budget=100)
        cloudlet.record_access("a", 1, 60)
        cloudlet.record_access("b", 2, 60)  # must evict a
        assert cloudlet.stats.bytes_stored <= 100

    def test_item_larger_than_budget_skipped(self):
        cloudlet = DictCloudlet(budget=100)
        cloudlet.record_access("huge", 1, 500)
        assert "huge" not in cloudlet.store

    def test_validation(self):
        with pytest.raises(ValueError):
            DictCloudlet(name="")
        with pytest.raises(ValueError):
            DictCloudlet(budget=0)
        with pytest.raises(ValueError):
            DictCloudlet().record_access("k", "v", -1)
