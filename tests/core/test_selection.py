"""Tests for the data-selection layer (Section 3.1)."""

import pytest

from repro.core.selection import (
    CommunityAccessModel,
    DataSelector,
    PersonalAccessModel,
)


class TestCommunityModel:
    def test_volumes_accumulate(self):
        model = CommunityAccessModel()
        model.record("a", 5)
        model.record("a", 3)
        assert model.volume("a") == 8
        assert model.total_volume == 8

    def test_top_items(self):
        model = CommunityAccessModel()
        model.record("a", 1)
        model.record("b", 10)
        assert model.top_items(1) == [("b", 10)]

    def test_normalized(self):
        model = CommunityAccessModel()
        model.record("a", 3)
        model.record("b", 1)
        assert model.normalized_volume("a") == pytest.approx(0.75)

    def test_validation(self):
        model = CommunityAccessModel()
        with pytest.raises(ValueError):
            model.record("a", -1)
        with pytest.raises(ValueError):
            model.top_items(-1)


class TestPersonalModel:
    def test_frequency_weighting(self):
        model = PersonalAccessModel(decay_rate=0.0)
        model.record("a", 0)
        model.record("a", 1)
        model.record("b", 2)
        assert model.weight("a") == 2.0
        assert model.top_items(1)[0][0] == "a"

    def test_recency_decay(self):
        model = PersonalAccessModel(decay_rate=0.1)
        model.record("old", 0.0)
        model.record("new", 100.0)
        assert model.weight("new") > model.weight("old")

    def test_time_must_advance(self):
        model = PersonalAccessModel()
        model.record("a", 10.0)
        with pytest.raises(ValueError):
            model.record("b", 5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PersonalAccessModel(decay_rate=-1)


class TestSelector:
    def _models(self):
        community = CommunityAccessModel()
        community.record("popular", 100)
        community.record("niche", 1)
        personal = PersonalAccessModel(decay_rate=0.0)
        personal.record("mine", 0)
        personal.record("mine", 1)
        return community, personal

    def test_merges_both_sources(self):
        community, personal = self._models()
        selector = DataSelector(community, personal)
        chosen = selector.select(
            budget_bytes=1000,
            item_bytes={"popular": 10, "niche": 10, "mine": 10},
        )
        names = {s.item for s in chosen}
        assert "popular" in names and "mine" in names

    def test_budget_respected(self):
        community, personal = self._models()
        selector = DataSelector(community, personal)
        chosen = selector.select(
            budget_bytes=15,
            item_bytes={"popular": 10, "niche": 10, "mine": 10},
        )
        assert sum(10 for _ in chosen) <= 15

    def test_sources_labelled(self):
        community, personal = self._models()
        personal.record("popular", 2)
        selector = DataSelector(community, personal)
        chosen = selector.select(
            budget_bytes=1000, item_bytes={"popular": 1, "mine": 1}
        )
        by_name = {s.item: s.source for s in chosen}
        assert by_name["popular"] == "both"
        assert by_name["mine"] == "personal"

    def test_zero_score_items_skipped(self):
        community, personal = self._models()
        selector = DataSelector(community, personal)
        chosen = selector.select(budget_bytes=100, item_bytes={"unknown": 1})
        assert chosen == []

    def test_weight_validation(self):
        community, personal = self._models()
        with pytest.raises(ValueError):
            DataSelector(community, personal, community_weight=-1)
        with pytest.raises(ValueError):
            DataSelector(community, personal, 0, 0)
