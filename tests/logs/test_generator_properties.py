"""Property-based tests on the log generator."""

from hypothesis import given, settings, strategies as st

from repro.logs.generator import GeneratorConfig, generate_logs
from repro.logs.popularity import CommunityModel
from repro.logs.schema import MONTH_SECONDS
from repro.logs.users import PopulationConfig, UserPopulation
from repro.logs.vocabulary import Vocabulary, VocabularyConfig


@st.composite
def tiny_worlds(draw):
    nav = draw(st.integers(min_value=20, max_value=80))
    non_nav = draw(st.integers(min_value=20, max_value=80))
    users = draw(st.integers(min_value=5, max_value=25))
    months = draw(st.integers(min_value=1, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return nav, non_nav, users, months, seed


@given(world=tiny_worlds())
@settings(max_examples=20, deadline=None)
def test_generated_logs_are_well_formed(world):
    nav, non_nav, users, months, seed = world
    community = CommunityModel(
        Vocabulary.build(VocabularyConfig(n_nav_topics=nav, n_non_nav_topics=non_nav))
    )
    population = UserPopulation.build(PopulationConfig(n_users=users, seed=seed))
    log = generate_logs(
        community, population, GeneratorConfig(months=months, seed=seed)
    )
    # Timestamps within range, columns aligned, keys resolvable.
    assert log.n_events > 0
    assert (log.timestamps >= 0).all()
    assert (log.timestamps < months * MONTH_SECONDS).all()
    assert len(log.query_keys) == len(log.result_keys) == log.n_events
    for i in range(0, log.n_events, max(1, log.n_events // 17)):
        assert log.query_string(int(log.query_keys[i]))
        assert log.result_url(int(log.result_keys[i]))
    # Month views partition the events.
    assert sum(log.month(m).n_events for m in range(months)) == log.n_events
