"""Tests for the log generator."""

import numpy as np
import pytest

from repro.logs.generator import GeneratorConfig, generate_logs
from repro.logs.schema import MONTH_SECONDS


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            GeneratorConfig(months=0)
        with pytest.raises(ValueError):
            GeneratorConfig(monthly_volume_jitter=-1)


class TestLogStructure:
    def test_columns_aligned(self, small_log):
        n = small_log.n_events
        assert len(small_log.timestamps) == n
        assert len(small_log.pair_ids) == n
        assert len(small_log.query_keys) == n
        assert len(small_log.result_keys) == n
        assert len(small_log.navigational) == n
        assert len(small_log.device_codes) == n

    def test_len_protocol(self, small_log):
        assert len(small_log) == small_log.n_events

    def test_timestamps_cover_both_months(self, small_log):
        assert small_log.month(0).n_events > 0
        assert small_log.month(1).n_events > 0
        assert small_log.timestamps.max() < 2 * MONTH_SECONDS

    def test_every_user_appears(self, small_log, small_population):
        logged = set(np.unique(small_log.user_ids).tolist())
        expected = {u.user_id for u in small_population.users}
        assert logged == expected

    def test_community_keys_resolve(self, small_log):
        cm = small_log.community
        mask = small_log.query_keys < cm.n_queries
        sample = small_log.query_keys[mask][:20]
        for qkey in sample.tolist():
            assert small_log.query_string(qkey) == cm.query_strings[qkey]

    def test_unique_keys_resolve(self, small_log):
        cm = small_log.community
        mask = small_log.query_keys >= cm.n_queries
        if mask.any():
            qkey = int(small_log.query_keys[mask][0])
            rkey = int(small_log.result_keys[mask][0])
            assert "personal" in small_log.query_string(qkey)
            assert "personal" in small_log.result_url(rkey)

    def test_unique_pairs_never_repeat(self, small_log):
        cm = small_log.community
        unique_ids = small_log.pair_ids[small_log.pair_ids >= cm.n_pairs]
        assert len(unique_ids) == len(np.unique(unique_ids))

    def test_nav_flags_match_community(self, small_log):
        cm = small_log.community
        mask = small_log.pair_ids < cm.n_pairs
        qkeys = small_log.query_keys[mask]
        expected = cm.query_navigational[qkeys]
        assert np.array_equal(small_log.navigational[mask], expected)

    def test_deterministic(self, small_community, small_population):
        config = GeneratorConfig(months=1, seed=77)
        a = generate_logs(small_community, small_population, config)
        b = generate_logs(small_community, small_population, config)
        assert np.array_equal(a.pair_ids, b.pair_ids)
        assert np.array_equal(a.timestamps, b.timestamps)


class TestViews:
    def test_for_user(self, small_log):
        uid = int(small_log.user_ids[0])
        view = small_log.for_user(uid)
        assert view.n_events > 0
        assert (view.user_ids == uid).all()

    def test_window(self, small_log):
        view = small_log.window(0, MONTH_SECONDS / 2)
        assert (view.timestamps < MONTH_SECONDS / 2).all()

    def test_device_views_partition(self, small_log):
        smart = small_log.for_device("smartphone").n_events
        feature = small_log.for_device("featurephone").n_events
        assert smart + feature == small_log.n_events

    def test_navigational_views_partition(self, small_log):
        nav = small_log.navigational_only(True).n_events
        non = small_log.navigational_only(False).n_events
        assert nav + non == small_log.n_events

    def test_monthly_volumes(self, small_log):
        volumes = small_log.user_monthly_volumes(0)
        assert sum(volumes.values()) == small_log.month(0).n_events


class TestEvents:
    def test_event_materialization(self, small_log):
        events = []
        for i, event in enumerate(small_log.events()):
            events.append(event)
            if i >= 9:
                break
        assert len(events) == 10
        for event in events:
            assert event.query
            assert event.clicked_url
            assert event.device in ("smartphone", "featurephone", "desktop")


class TestDesktopMode:
    def test_desktop_events_flagged(self, small_community, small_population):
        log = generate_logs(
            small_community,
            small_population,
            GeneratorConfig(months=1, seed=5, desktop=True),
        )
        assert (log.device_codes == 2).all()
