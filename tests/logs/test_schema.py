"""Tests for search-log record types and classification rules."""

import pytest

from repro.logs.schema import (
    CLASS_POPULATION_SHARE,
    Triplet,
    UserClass,
    classify_user,
    is_navigational,
)


class TestClassification:
    def test_table6_boundaries(self):
        assert classify_user(19) is None
        assert classify_user(20) is UserClass.LOW
        assert classify_user(39) is UserClass.LOW
        assert classify_user(40) is UserClass.MEDIUM
        assert classify_user(139) is UserClass.MEDIUM
        assert classify_user(140) is UserClass.HIGH
        assert classify_user(459) is UserClass.HIGH
        assert classify_user(460) is UserClass.EXTREME
        assert classify_user(10_000) is UserClass.EXTREME

    def test_population_shares_sum_to_one(self):
        assert sum(CLASS_POPULATION_SHARE.values()) == pytest.approx(1.0)

    def test_table6_shares(self):
        assert CLASS_POPULATION_SHARE[UserClass.LOW] == 0.55
        assert CLASS_POPULATION_SHARE[UserClass.MEDIUM] == 0.36
        assert CLASS_POPULATION_SHARE[UserClass.HIGH] == 0.08
        assert CLASS_POPULATION_SHARE[UserClass.EXTREME] == 0.01


class TestNavigational:
    def test_paper_example(self):
        """'youtube' vs www.youtube.com is navigational."""
        assert is_navigational("youtube", "www.youtube.com")

    def test_misspelling_is_not(self):
        assert not is_navigational("yotube", "www.youtube.com")

    def test_spaces_stripped(self):
        assert is_navigational("you tube", "www.youtube.com")

    def test_case_insensitive(self):
        assert is_navigational("YouTube", "www.youtube.com")

    def test_empty_query(self):
        assert not is_navigational("", "www.youtube.com")
        assert not is_navigational("   ", "www.youtube.com")


class TestTriplet:
    def test_negative_volume_rejected(self):
        with pytest.raises(ValueError):
            Triplet("q", "u", -1)
