"""Columnar event-batch properties (builder for the vectorized engine).

Three contracts, property-tested over small generated universes:

1. **Lossless round trip** — ``SearchLog`` → struct array →
   ``QueryEvent`` list reproduces ``log.events()`` exactly, field for
   field, in order.
2. **No same-user reordering** — however a batch windows, filters, and
   sorts, each user's events stay in original log (time) order.
3. **Permutation-invariant sharding** — a user's shard is a pure
   function of ``SeedSequence(seed, user_id)``: independent of the rest
   of the population, stable under any processing order.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.logs.columnar import (
    EVENT_DTYPE,
    ColumnarEventBatch,
    events_from_struct,
    log_to_struct_array,
    shard_of_user,
)
from repro.logs.generator import GeneratorConfig, generate_logs
from repro.logs.popularity import CommunityModel
from repro.logs.schema import MONTH_SECONDS
from repro.logs.users import PopulationConfig, UserPopulation
from repro.logs.vocabulary import Vocabulary, VocabularyConfig


def _tiny_log(nav, non_nav, users, months, seed):
    community = CommunityModel(
        Vocabulary.build(
            VocabularyConfig(n_nav_topics=nav, n_non_nav_topics=non_nav)
        )
    )
    population = UserPopulation.build(
        PopulationConfig(n_users=users, seed=seed)
    )
    return generate_logs(
        community, population, GeneratorConfig(months=months, seed=seed)
    )


@st.composite
def tiny_worlds(draw):
    nav = draw(st.integers(min_value=20, max_value=60))
    non_nav = draw(st.integers(min_value=20, max_value=60))
    users = draw(st.integers(min_value=5, max_value=20))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return nav, non_nav, users, seed


@given(world=tiny_worlds())
@settings(max_examples=10, deadline=None)
def test_struct_array_round_trip_is_lossless(world):
    nav, non_nav, users, seed = world
    log = _tiny_log(nav, non_nav, users, 1, seed)
    struct = log_to_struct_array(log)
    assert struct.dtype == EVENT_DTYPE
    assert len(struct) == log.n_events
    # Column-level identity with the log's arrays (row order preserved).
    assert (struct["user_id"] == log.user_ids).all()
    assert (struct["timestamp"] == log.timestamps).all()
    assert (struct["query_key"] == log.query_keys).all()
    assert (struct["result_key"] == log.result_keys).all()
    assert (struct["navigational"] == log.navigational).all()
    # Event-level identity through the string tables.
    round_tripped = events_from_struct(log, struct)
    assert round_tripped == list(log.events())


@given(world=tiny_worlds(), n_shards=st.integers(min_value=1, max_value=7))
@settings(max_examples=10, deadline=None)
def test_batch_never_reorders_same_user_events(world, n_shards):
    nav, non_nav, users, seed = world
    log = _tiny_log(nav, non_nav, users, 1, seed)
    batch = ColumnarEventBatch.from_log(log, seed=seed, n_shards=n_shards)
    assert batch.n_events == log.n_events
    for uid in batch.user_ids:
        rows = batch.for_user(uid)
        # Strictly the user's own events, in original log order — which
        # for the generator means non-decreasing timestamps.
        assert (rows["user_id"] == uid).all()
        original = log.timestamps[log.user_ids == uid]
        assert (rows["timestamp"] == original).all()
        # A windowed batch preserves relative order too.
        lo = float(np.median(original))
        windowed = ColumnarEventBatch.from_log(
            log, t_start=lo, seed=seed
        ).for_user(uid)
        assert (windowed["timestamp"] == original[original >= lo]).all()


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    user_id=st.integers(min_value=0, max_value=100_000),
    n_shards=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=50, deadline=None)
def test_shard_is_pure_function_of_seed_and_user(seed, user_id, n_shards):
    first = shard_of_user(seed, user_id, n_shards)
    assert 0 <= first < n_shards
    assert shard_of_user(seed, user_id, n_shards) == first
    # Matches the explicit SeedSequence derivation, domain-separated from
    # the replay harness's selection (0) and replay (1) spawn keys.
    seq = np.random.SeedSequence(seed, spawn_key=(2, user_id))
    assert first == int(
        seq.generate_state(1, dtype=np.uint64)[0] % n_shards
    )


def test_shard_assignment_is_permutation_invariant(small_log):
    """Shard columns agree no matter which users are in the batch."""
    seed, n_shards = 23, 4
    full = ColumnarEventBatch.from_log(small_log, seed=seed, n_shards=n_shards)
    uids = full.user_ids
    assert len(uids) > 3
    # Rebuild with an arbitrary subset (reversed order): assignments of
    # the surviving users must be identical.
    subset = list(reversed(uids[:: 2]))
    filtered = ColumnarEventBatch.from_log(
        small_log, seed=seed, n_shards=n_shards, user_ids=subset
    )
    for uid in filtered.user_ids:
        assert (
            int(filtered.for_user(uid)["shard"][0])
            == int(full.for_user(uid)["shard"][0])
            == shard_of_user(seed, uid, n_shards)
        )
    # shards() partitions exactly the users present.
    shards = filtered.shards()
    assert sorted(u for us in shards.values() for u in us) == sorted(
        filtered.user_ids
    )


class TestBatchEdgeCases:
    def test_empty_window(self, small_log):
        batch = ColumnarEventBatch.from_log(
            small_log, t_start=99 * MONTH_SECONDS
        )
        assert batch.n_events == 0
        assert batch.user_ids == []
        assert batch.shards() == {}

    def test_unknown_user_yields_empty_slice(self, small_log):
        batch = ColumnarEventBatch.from_log(small_log)
        rows = batch.for_user(10**9)
        assert len(rows) == 0
        assert rows.dtype == EVENT_DTYPE

    def test_n_shards_must_be_positive(self, small_log):
        with pytest.raises(ValueError):
            shard_of_user(0, 1, 0)
        with pytest.raises(ValueError):
            log_to_struct_array(small_log, n_shards=0)

    def test_searchlog_methods_delegate(self, small_log):
        struct = small_log.to_struct_array()
        assert len(struct) == small_log.n_events
        batch = small_log.to_columnar(
            t_start=MONTH_SECONDS, t_end=2 * MONTH_SECONDS
        )
        assert batch.n_events == small_log.month(1).n_events
