"""Tests for log analysis measurements."""

import numpy as np
import pytest

from repro.logs import analysis
from repro.logs.schema import UserClass


class TestVolumeCdf:
    def test_cdf_reaches_one(self, small_log):
        cdf = analysis.query_volume_cdf(small_log.month(0))
        assert cdf.cumulative_fraction[-1] == pytest.approx(1.0)

    def test_counts_descending(self, small_log):
        cdf = analysis.query_volume_cdf(small_log.month(0))
        counts = cdf.counts
        assert all(b <= a for a, b in zip(counts, counts[1:]))

    def test_coverage_monotone(self, small_log):
        cdf = analysis.query_volume_cdf(small_log.month(0))
        assert cdf.coverage_at(10) <= cdf.coverage_at(100) <= cdf.coverage_at(10_000)

    def test_coverage_at_bounds(self, small_log):
        cdf = analysis.query_volume_cdf(small_log.month(0))
        assert cdf.coverage_at(0) == 0.0
        assert cdf.coverage_at(cdf.n_items * 10) == pytest.approx(1.0)

    def test_items_for_coverage_inverse(self, small_log):
        cdf = analysis.query_volume_cdf(small_log.month(0))
        k = cdf.items_for_coverage(0.5)
        assert cdf.coverage_at(k) >= 0.5
        assert cdf.coverage_at(k - 1) < 0.5

    def test_items_for_coverage_validation(self, small_log):
        cdf = analysis.query_volume_cdf(small_log.month(0))
        with pytest.raises(ValueError):
            cdf.items_for_coverage(1.5)

    def test_empty_log(self, small_log):
        empty = small_log.window(1e12, 2e12)
        cdf = analysis.query_volume_cdf(empty)
        assert cdf.n_items == 0
        assert cdf.coverage_at(10) == 0.0

    def test_results_more_concentrated_than_queries(self, small_log):
        """Aliases funnel many queries into fewer results, so result
        coverage at the same count is at least query coverage (Fig 4)."""
        month = small_log.month(0)
        q = analysis.query_volume_cdf(month)
        r = analysis.result_volume_cdf(month)
        k = q.items_for_coverage(0.6)
        assert r.coverage_at(k) >= q.coverage_at(k) - 0.02


class TestFigure4Series:
    def test_all_subsets_present(self, small_log):
        series = analysis.figure4_series(small_log.month(0))
        assert set(series) == {
            "all",
            "navigational",
            "non_navigational",
            "smartphone",
            "featurephone",
        }

    def test_nav_more_concentrated(self, small_log):
        series = analysis.figure4_series(small_log.month(0))
        k = series["all"]["queries"].items_for_coverage(0.6)
        nav = series["navigational"]["queries"].coverage_at(k)
        non = series["non_navigational"]["queries"].coverage_at(k)
        assert nav > non

    def test_featurephone_more_concentrated(self, small_log):
        series = analysis.figure4_series(small_log.month(0))
        k = series["all"]["queries"].items_for_coverage(0.6)
        feature = series["featurephone"]["queries"].coverage_at(k)
        smart = series["smartphone"]["queries"].coverage_at(k)
        assert feature > smart


class TestRepeatability:
    def test_new_prob_in_unit_interval(self, small_log):
        probs = analysis.user_new_pair_probability(small_log.month(0))
        assert probs
        assert all(0 < p <= 1 for p in probs.values())

    def test_cdf_monotone(self, small_log):
        probs = analysis.user_new_pair_probability(small_log.month(0))
        grid, cdf = analysis.new_pair_probability_cdf(probs)
        assert cdf[0] <= cdf[-1] == pytest.approx(1.0)
        assert all(b >= a for a, b in zip(cdf, cdf[1:]))

    def test_empty_log_repeat(self, small_log):
        empty = small_log.window(1e12, 2e12)
        assert analysis.overall_repeat_rate(empty) == 0.0
        assert analysis.user_new_pair_probability(empty) == {}

    def test_repeat_rate_consistency(self, small_log):
        """Overall repeat rate equals 1 - distinct/total."""
        month = small_log.month(0)
        rate = analysis.overall_repeat_rate(month)
        assert 0 <= rate < 1

    def test_repeat_rate_by_class_keys(self, small_log):
        rates = analysis.repeat_rate_by_class(small_log.month(0))
        assert set(rates) == set(UserClass)


class TestUniqueResultRatio:
    def test_in_unit_range(self, small_log):
        ratio = analysis.unique_result_ratio(small_log.month(0), 200)
        assert 0 < ratio <= 2  # results can rarely exceed queries

    def test_zero_inputs(self, small_log):
        assert analysis.unique_result_ratio(small_log.month(0), 0) == 0.0


class TestClassMix:
    def test_shares_sum_to_one(self, small_log):
        mix = analysis.observed_class_mix(small_log)
        assert sum(mix.values()) == pytest.approx(1.0)
