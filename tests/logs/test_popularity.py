"""Tests for the community popularity model."""

import numpy as np
import pytest

from repro.logs.schema import Triplet


class TestFlattening:
    def test_probabilities_sum_to_one(self, small_community):
        assert small_community.pair_prob.sum() == pytest.approx(1.0)

    def test_pair_arrays_aligned(self, small_community):
        cm = small_community
        assert len(cm.pair_query) == len(cm.pair_result) == cm.n_pairs
        assert cm.pair_query.max() < cm.n_queries
        assert cm.pair_result.max() < cm.n_results

    def test_urls_deduplicated(self, small_community):
        assert len(set(small_community.result_urls)) == small_community.n_results

    def test_rank_order_descending(self, small_community):
        probs = small_community.pair_prob[small_community.rank_order]
        assert all(b <= a for a, b in zip(probs, probs[1:]))


class TestSampling:
    def test_sample_respects_popularity(self, small_community):
        rng = np.random.default_rng(1)
        draws = small_community.sample_pairs(20_000, rng)
        top = set(small_community.top_pairs(10).tolist())
        top_share = np.isin(draws, list(top)).mean()
        tail = set(small_community.rank_order[-10:].tolist())
        tail_share = np.isin(draws, list(tail)).mean()
        assert top_share > tail_share

    def test_tilt_concentrates(self, small_community):
        rng = np.random.default_rng(2)
        flat = small_community.sample_pairs(20_000, rng, tilt=0.6)
        sharp = small_community.sample_pairs(20_000, rng, tilt=1.5)
        top = set(small_community.top_pairs(20).tolist())
        assert np.isin(sharp, list(top)).mean() > np.isin(flat, list(top)).mean()

    def test_invalid_args(self, small_community):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            small_community.sample_pairs(-1, rng)
        with pytest.raises(ValueError):
            small_community.sample_pairs(1, rng, tilt=0)

    def test_zero_draws(self, small_community):
        rng = np.random.default_rng(4)
        assert len(small_community.sample_pairs(0, rng)) == 0


class TestIdealStats:
    def test_cumulative_volume_monotone(self, small_community):
        values = [
            small_community.cumulative_volume_by_pairs(k)
            for k in (0, 10, 100, 1000)
        ]
        assert values[0] == 0.0
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_cumulative_volume_saturates(self, small_community):
        assert small_community.cumulative_volume_by_pairs(
            small_community.n_pairs * 2
        ) == pytest.approx(1.0)

    def test_expected_triplets(self, small_community):
        triplets = small_community.expected_triplets(1_000_000, limit=10)
        assert len(triplets) == 10
        assert all(isinstance(t, Triplet) for t in triplets)
        volumes = [t.volume for t in triplets]
        assert all(b <= a for a, b in zip(volumes, volumes[1:]))

    def test_negative_volume_rejected(self, small_community):
        with pytest.raises(ValueError):
            small_community.expected_triplets(-1)


class TestSiblingsAndVariants:
    def test_siblings_share_result(self, small_community):
        cm = small_community
        pair = int(cm.rank_order[0])
        ids, probs = cm.pair_siblings(pair)
        assert pair in ids.tolist()
        assert probs.sum() == pytest.approx(1.0)
        assert len(set(cm.pair_result[ids].tolist())) == 1

    def test_variants_share_query(self, small_community):
        cm = small_community
        pair = int(cm.rank_order[0])
        ids, probs = cm.pair_result_variants(pair)
        assert pair in ids.tolist()
        assert probs.sum() == pytest.approx(1.0)
        assert len(set(cm.pair_query[ids].tolist())) == 1

    def test_describe_pair(self, small_community):
        query, url, prob = small_community.describe_pair(0)
        assert isinstance(query, str) and isinstance(url, str)
        assert 0 < prob <= 1
