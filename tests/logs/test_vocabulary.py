"""Tests for the synthetic query/result universe."""

import pytest

from repro.logs.schema import is_navigational
from repro.logs.vocabulary import Vocabulary, VocabularyConfig


class TestConfigValidation:
    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            VocabularyConfig(n_nav_topics=0)

    def test_rejects_bad_shares(self):
        with pytest.raises(ValueError):
            VocabularyConfig(nav_volume_share=0.0)
        with pytest.raises(ValueError):
            VocabularyConfig(canonical_query_share=1.5)


class TestStructure:
    def test_topic_counts(self, small_vocabulary):
        config = small_vocabulary.config
        nav = [t for t in small_vocabulary.topics if t.navigational]
        non = [t for t in small_vocabulary.topics if not t.navigational]
        assert len(nav) == config.n_nav_topics
        assert len(non) == config.n_non_nav_topics

    def test_weights_sum_to_one(self, small_vocabulary):
        total = sum(t.weight for t in small_vocabulary.topics)
        assert total == pytest.approx(1.0)

    def test_query_shares_sum_to_one(self, small_vocabulary):
        for topic in small_vocabulary.topics[:50]:
            assert sum(q.share for q in topic.queries) == pytest.approx(1.0)

    def test_result_shares_sum_to_one(self, small_vocabulary):
        for topic in small_vocabulary.topics[:50]:
            assert sum(r.share for r in topic.results) == pytest.approx(1.0)

    def test_nav_canonical_is_navigational(self, small_vocabulary):
        for topic in small_vocabulary.topics:
            if topic.navigational:
                canonical = topic.queries[0]
                assert canonical.navigational
                assert is_navigational(canonical.text, topic.results[0].url)

    def test_aliases_are_not_navigational(self, small_vocabulary):
        for topic in small_vocabulary.topics:
            if topic.navigational:
                for alias in topic.queries[1:]:
                    assert not alias.navigational

    def test_record_bytes_about_500(self, small_vocabulary):
        """The paper: ~500 bytes per stored search result."""
        sizes = [
            r.record_bytes
            for t in small_vocabulary.topics
            for r in t.results
        ]
        mean = sum(sizes) / len(sizes)
        assert 400 <= mean <= 700

    def test_more_queries_than_results_overall(self, small_vocabulary):
        """Aliases make queries outnumber distinct results."""
        assert small_vocabulary.n_queries > small_vocabulary.n_results

    def test_popular_topics_have_more_aliases(self, small_vocabulary):
        nav = [t for t in small_vocabulary.topics if t.navigational]
        top = nav[: len(nav) // 10]
        tail = nav[-len(nav) // 2 :]
        top_mean = sum(len(t.queries) for t in top) / len(top)
        tail_mean = sum(len(t.queries) for t in tail) / len(tail)
        assert top_mean > tail_mean

    def test_deterministic_given_seed(self):
        config = VocabularyConfig(n_nav_topics=50, n_non_nav_topics=50, seed=3)
        a = Vocabulary.build(config)
        b = Vocabulary.build(config)
        assert [t.queries[0].text for t in a.topics] == [
            t.queries[0].text for t in b.topics
        ]
        assert [len(t.queries) for t in a.topics] == [
            len(t.queries) for t in b.topics
        ]

    def test_shared_results_reference_nav_sites(self, small_vocabulary):
        """Some non-nav topics point at popular nav site URLs."""
        nav_urls = {
            t.results[0].url
            for t in small_vocabulary.topics
            if t.navigational
        }
        shared = [
            r.url
            for t in small_vocabulary.topics
            if not t.navigational
            for r in t.results
            if r.url in nav_urls
        ]
        assert len(shared) > 0
