"""Tests for the diurnal traffic profile."""

import numpy as np

from repro.logs.generator import DIURNAL_WEIGHTS


class TestDiurnalProfile:
    def test_24_hours(self):
        assert len(DIURNAL_WEIGHTS) == 24

    def test_night_quieter_than_evening(self, small_log):
        hours = (small_log.timestamps % 86400 // 3600).astype(int)
        counts = np.bincount(hours, minlength=24)
        night = counts[2:5].sum()
        evening = counts[19:22].sum()
        assert evening > 3 * night

    def test_peak_in_daytime_or_evening(self, small_log):
        hours = (small_log.timestamps % 86400 // 3600).astype(int)
        counts = np.bincount(hours, minlength=24)
        assert 11 <= int(counts.argmax()) <= 22
