"""Tests for the user population model."""

import numpy as np
import pytest

from repro.logs.schema import CLASS_VOLUME_RANGES, UserClass
from repro.logs.users import (
    DEFAULT_CLASS_BEHAVIOR,
    PopulationConfig,
    UserPopulation,
)


class TestPopulation:
    def test_class_mix_matches_table6(self):
        population = UserPopulation.build(PopulationConfig(n_users=5000, seed=1))
        mix = population.class_mix()
        assert mix[UserClass.LOW] == pytest.approx(0.55, abs=0.03)
        assert mix[UserClass.MEDIUM] == pytest.approx(0.36, abs=0.03)
        assert mix[UserClass.HIGH] == pytest.approx(0.08, abs=0.02)
        assert mix[UserClass.EXTREME] == pytest.approx(0.01, abs=0.01)

    def test_volumes_within_class_band(self, small_population):
        for user in small_population.users:
            lo, hi = CLASS_VOLUME_RANGES[user.user_class]
            assert lo <= user.mean_monthly_volume <= hi

    def test_routine_prob_in_unit_interval(self, small_population):
        for user in small_population.users:
            assert 0 <= user.routine_prob <= 1

    def test_staple_weights_normalized(self, small_population):
        for user in small_population.users:
            assert user.staple_weights.sum() == pytest.approx(1.0)
            assert len(user.staple_weights) == user.n_staples

    def test_staples_grow_with_volume(self):
        population = UserPopulation.build(PopulationConfig(n_users=3000, seed=5))
        low = [u.n_staples for u in population.by_class(UserClass.LOW)]
        extreme = [u.n_staples for u in population.by_class(UserClass.EXTREME)]
        assert np.mean(extreme) > np.mean(low)

    def test_staples_stay_small(self, small_population):
        """The paper: revisits concentrate on a couple tens of pages."""
        for user in small_population.users:
            assert 2 <= user.n_staples <= 50

    def test_featurephone_share(self):
        population = UserPopulation.build(
            PopulationConfig(n_users=4000, seed=2, featurephone_share=0.3)
        )
        share = sum(
            1 for u in population.users if u.device == "featurephone"
        ) / len(population.users)
        assert share == pytest.approx(0.3, abs=0.03)

    def test_featurephone_tilt(self, small_population):
        for user in small_population.users:
            if user.device == "featurephone":
                assert user.community_tilt > 1.0
            else:
                assert user.community_tilt == 1.0

    def test_deterministic(self):
        config = PopulationConfig(n_users=50, seed=9)
        a = UserPopulation.build(config)
        b = UserPopulation.build(config)
        assert [u.routine_prob for u in a.users] == [
            u.routine_prob for u in b.users
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            PopulationConfig(n_users=0)
        with pytest.raises(ValueError):
            PopulationConfig(featurephone_share=1.5)


class TestClassBehavior:
    def test_routine_increases_with_class(self):
        means = [
            DEFAULT_CLASS_BEHAVIOR[c].routine_prob_mean
            for c in (UserClass.LOW, UserClass.MEDIUM, UserClass.HIGH, UserClass.EXTREME)
        ]
        assert all(b >= a for a, b in zip(means, means[1:]))

    def test_all_classes_defined(self):
        assert set(DEFAULT_CLASS_BEHAVIOR) == set(UserClass)
