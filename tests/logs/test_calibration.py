"""Acceptance tests: the synthetic log reproduces the paper's Section 4
statistics at the default seed and scale (DESIGN.md section 5).

These run on the full default-scale log (built once per session), so they
live here rather than with the fast unit tests.
"""

import numpy as np
import pytest

from repro.experiments.common import default_log, desktop_log
from repro.logs import analysis


@pytest.fixture(scope="module")
def month0():
    return default_log().month(0)


class TestCommunityConcentration:
    def test_small_head_covers_60pct(self, month0):
        """Paper: 6000 of ~200k distinct queries (~3%) carry 60% of
        volume.  We accept 2-6% at our scale."""
        cdf = analysis.query_volume_cdf(month0)
        k60 = cdf.items_for_coverage(0.60)
        fraction = k60 / cdf.n_items
        assert 0.02 <= fraction <= 0.06

    def test_results_reach_60pct_with_fewer_items(self, month0):
        """Paper: 4000 results vs 6000 queries for 60% coverage."""
        q = analysis.query_volume_cdf(month0)
        r = analysis.result_volume_cdf(month0)
        assert r.items_for_coverage(0.60) < q.items_for_coverage(0.60)

    def test_navigational_far_more_concentrated(self, month0):
        """Paper: 5000 nav queries -> 90% of nav volume; the same count
        of non-nav queries -> well under half."""
        k = analysis.query_volume_cdf(month0).items_for_coverage(0.60)
        nav = analysis.query_volume_cdf(month0.navigational_only(True))
        non = analysis.query_volume_cdf(month0.navigational_only(False))
        assert nav.coverage_at(k) >= 0.85
        assert non.coverage_at(k) <= 0.65
        assert nav.coverage_at(k) - non.coverage_at(k) >= 0.30

    def test_featurephone_more_concentrated_than_smartphone(self, month0):
        k = analysis.query_volume_cdf(month0).items_for_coverage(0.60)
        feature = analysis.query_volume_cdf(month0.for_device("featurephone"))
        smart = analysis.query_volume_cdf(month0.for_device("smartphone"))
        assert feature.coverage_at(k) > smart.coverage_at(k) + 0.05


class TestRepeatability:
    def test_mean_repeat_rate_near_paper(self, month0):
        """Paper: mobile users repeat 56.5% of queries."""
        rate = analysis.overall_repeat_rate(month0)
        assert 0.50 <= rate <= 0.68

    def test_substantial_habitual_user_share(self, month0):
        """Paper: ~50% of users have new-query probability <= 0.30.
        Our generator lands a 20-45% share (documented deviation)."""
        probs = analysis.user_new_pair_probability(month0)
        values = np.asarray(list(probs.values()))
        assert 0.15 <= (values <= 0.30).mean() <= 0.55

    def test_median_user_mostly_repeats(self, month0):
        probs = analysis.user_new_pair_probability(month0)
        median_new = float(np.median(list(probs.values())))
        assert median_new <= 0.50


class TestMobileVsDesktop:
    def test_desktop_repeats_less(self, month0):
        """Paper: desktop ~40% vs mobile ~56.5%."""
        desktop = desktop_log().month(0)
        mobile_rate = analysis.overall_repeat_rate(month0)
        desktop_rate = analysis.overall_repeat_rate(desktop)
        assert 0.30 <= desktop_rate <= 0.48
        assert mobile_rate - desktop_rate >= 0.10

    def test_desktop_less_concentrated(self, month0):
        """Paper: the mobile 60% head covers <20% of desktop volume."""
        desktop = desktop_log().month(0)
        k = analysis.query_volume_cdf(month0).items_for_coverage(0.60)
        desktop_cov = analysis.query_volume_cdf(desktop).coverage_at(k)
        assert desktop_cov <= 0.40


class TestTable6Mix:
    def test_class_mix(self, month0):
        mix = analysis.observed_class_mix(default_log(), month=1)
        from repro.logs.schema import UserClass

        assert mix[UserClass.LOW] == pytest.approx(0.55, abs=0.08)
        assert mix[UserClass.MEDIUM] == pytest.approx(0.36, abs=0.08)
        assert mix[UserClass.HIGH] == pytest.approx(0.08, abs=0.04)
        assert mix[UserClass.EXTREME] == pytest.approx(0.01, abs=0.02)
