"""Tests for the ``repro top`` terminal dashboard (repro.serve.top)."""

import json

from repro.obs.slo import SLOPolicy, SLORule
from repro.serve.telemetry import ServeTelemetry
from repro.serve.top import extract_serve_snapshot, render_top, top_main

from .test_telemetry import _response


def _snapshot(slo=False):
    policy = None
    if slo:
        policy = SLOPolicy(
            rules=(SLORule("p99", "latency", objective=0.9, threshold_s=0.5),),
            long_window_s=10.0,
            short_window_s=2.0,
        )
    telemetry = ServeTelemetry(bucket_width_s=1.0, n_buckets=30,
                               slo_policy=policy)
    for i in range(6):
        t = 0.3 + i * 0.5
        telemetry.on_submit(t, inflight=1)
        telemetry.on_response(
            t + 0.1,
            _response(trace_id=i + 1, enqueued_at=t, completed_at=t + 0.1,
                      hit=(i % 2 == 0), key=f"query-{i}"),
            inflight=0,
        )
    telemetry.on_submit(3.5, inflight=1)
    telemetry.on_shed(3.5, object())
    telemetry.finalize()
    return telemetry.snapshot()


class TestExtract:
    def test_bare_snapshot_accepted(self):
        snap = _snapshot()
        assert extract_serve_snapshot(snap) is snap

    def test_metrics_json_document_unwrapped(self):
        snap = _snapshot()
        assert extract_serve_snapshot({"metrics": {}, "serve": snap}) is snap

    def test_no_telemetry_returns_none(self):
        assert extract_serve_snapshot({"metrics": {}}) is None
        assert extract_serve_snapshot({"serve": {"oops": 1}}) is None


class TestRenderTop:
    def test_headline_and_sparklines(self):
        text = render_top(_snapshot())
        assert "repro top" in text
        assert "hit 50.0%" in text
        assert "completed" in text
        assert "shed" in text
        # Sparkline glyphs present for the per-bucket series.
        assert any(glyph in text for glyph in "▁▂▃▄▅▆▇█")

    def test_exemplars_table_has_segment_columns(self):
        text = render_top(_snapshot())
        assert "slowest requests in window" in text
        assert "queue" in text and "batch" in text and "service" in text
        assert "query-" in text

    def test_slo_rules_section_when_policy_present(self):
        text = render_top(_snapshot(slo=True))
        assert "SLO rules" in text
        assert "p99" in text

    def test_empty_snapshot_does_not_crash(self):
        text = render_top({"rolling": {}})
        assert "repro top" in text


class TestTopMain:
    def test_snapshot_file_renders_once(self, tmp_path, capsys):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps({"serve": _snapshot()}))
        assert top_main(["--snapshot", str(path)]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "slowest requests in window" in out

    def test_snapshot_without_telemetry_exits_2(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"metrics": {}}))
        assert top_main(["--snapshot", str(path)]) == 2
        assert "no telemetry" in capsys.readouterr().err

    def test_unreachable_url_exits_1(self, capsys):
        # Port 1 is reserved and nothing listens on it.
        code = top_main(["--url", "http://127.0.0.1:1", "--frames", "1",
                         "--interval", "0"])
        assert code == 1
        assert "repro top:" in capsys.readouterr().err


def _energy_snapshot():
    from repro.obs.energy import EnergyBreakdown

    from .test_telemetry import _energy_response

    telemetry = ServeTelemetry(bucket_width_s=1.0, n_buckets=30,
                               battery_capacity_j=200.0)
    hit = EnergyBreakdown(storage_j=0.3, base_j=0.2)
    miss = EnergyBreakdown(ramp_j=1.0, transfer_j=7.0, tail_j=2.0)
    for i in range(8):
        t = 0.5 + i * 0.5
        is_hit = i % 2 == 0
        energy = hit if is_hit else miss
        telemetry.on_response(
            t,
            _energy_response(
                i + 1, t, is_hit, energy,
                0.0 if is_hit else energy.radio_j, device_id=i % 3,
            ),
            inflight=0,
        )
    telemetry.finalize()
    return telemetry.snapshot()


class TestRenderTopEnergy:
    def test_energy_panel_renders(self):
        text = render_top(_energy_snapshot())
        assert "J/query" in text
        assert "miss/hit" in text
        assert "radio ledger:" in text
        assert "power (W)" in text
        # Per-source wattage sparkline (truncated source label).
        assert "3g" in text
        # ASCII radio power trace over the window's buckets.
        assert "radio power trace (window)" in text
        assert "#" in text

    def test_battery_section_renders(self):
        text = render_top(_energy_snapshot())
        assert "batteries: 3 devices" in text
        assert "queries/charge" in text
        assert "burn/day" in text

    def test_snapshot_without_energy_omits_panel(self):
        text = render_top(_snapshot())
        # No attributed responses: headline shows placeholders and the
        # ledger/battery/trace sections stay absent.
        assert "radio ledger:" not in text
        assert "batteries:" not in text
        assert "radio power trace" not in text
