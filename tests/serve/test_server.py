"""Tests for the asyncio cloudlet server: admission, ordering, refresh."""

import asyncio

import pytest

from repro.obs.registry import MetricsRegistry
from repro.pocketsearch.cache import PocketSearchCache
from repro.pocketsearch.content import CacheContent, CacheEntry
from repro.pocketsearch.engine import PocketSearchEngine
from repro.pocketsearch.manager import CacheUpdateServer
from repro.serve.backends import BackendResult, SearchBackend
from repro.serve.requests import Overloaded, ServeRequest, ServeResponse
from repro.serve.server import CloudletServer, ServeConfig
from repro.serve.vclock import run_simulated
from repro.sim.metrics import QueryOutcome, ServiceSource


class StubBackend:
    """Scripted backend: hits on keys in ``cached``, records call order."""

    def __init__(
        self,
        cached=frozenset(),
        hit_latency_s=0.1,
        miss_latency_s=2.0,
        radio_s=1.5,
    ):
        self.cached = set(cached)
        self.hit_latency_s = hit_latency_s
        self.miss_latency_s = miss_latency_s
        self.radio_s = radio_s
        self.served = []

    def serve(self, request: ServeRequest) -> BackendResult:
        self.served.append(request.key)
        hit = request.key in self.cached
        outcome = QueryOutcome(
            query=request.key,
            hit=hit,
            source=ServiceSource.CACHE if hit else ServiceSource.RADIO_3G,
            latency_s=self.hit_latency_s if hit else self.miss_latency_s,
            energy_j=0.0,
            timestamp=request.timestamp,
        )
        return BackendResult(
            outcome=outcome, radio_s=0.0 if hit else self.radio_s
        )


def _request(device_id=1, key="q", timestamp=0.0):
    return ServeRequest(device_id=device_id, key=key, timestamp=timestamp)


class TestAdmissionControl:
    def test_device_queue_full_sheds_typed_response(self):
        async def scenario():
            server = CloudletServer(
                lambda uid: StubBackend(cached={"q"}),
                ServeConfig(queue_depth=1),
                registry=MetricsRegistry(),
            )
            futures = [
                server.submit(_request(key=f"q{i}")) for i in range(5)
            ]
            await server.drain()
            replies = [f.result() for f in futures]
            await server.close()
            return server, replies

        server, replies = run_simulated(scenario())
        sheds = [r for r in replies if isinstance(r, Overloaded)]
        completed = [r for r in replies if isinstance(r, ServeResponse)]
        # Burst of 5 into a depth-1 queue before the worker runs: one
        # queued, four shed -- and the sheds resolve instantly, typed.
        assert len(completed) == 1
        assert len(sheds) == 4
        assert all(s.reason == "device-queue-full" for s in sheds)
        assert all(not s.ok for s in sheds)
        assert server.registry.counter("serve.shed").value == 4
        assert (
            server.registry.counter("serve.shed.device_queue_full").value == 4
        )

    def test_global_inflight_cap_sheds_server_busy(self):
        async def scenario():
            server = CloudletServer(
                lambda uid: StubBackend(cached={"q"}),
                ServeConfig(queue_depth=10, max_inflight=2),
                registry=MetricsRegistry(),
            )
            futures = [
                server.submit(_request(device_id=uid)) for uid in range(4)
            ]
            await server.drain()
            replies = [f.result() for f in futures]
            await server.close()
            return replies

        replies = run_simulated(scenario())
        sheds = [r for r in replies if isinstance(r, Overloaded)]
        assert len(sheds) == 2
        assert all(s.reason == "server-busy" for s in sheds)

    def test_sheds_resolve_immediately(self):
        async def scenario():
            server = CloudletServer(
                lambda uid: StubBackend(),
                ServeConfig(queue_depth=1),
                registry=MetricsRegistry(),
            )
            server.submit(_request(key="a"))
            shed = server.submit(_request(key="b"))
            done_now = shed.done()
            await server.drain()
            await server.close()
            return done_now

        assert run_simulated(scenario()) is True


class TestServing:
    def test_per_device_fifo_order(self):
        async def scenario():
            backends = {}

            def factory(uid):
                backends[uid] = StubBackend(cached={f"k{i}" for i in range(20)})
                return backends[uid]

            server = CloudletServer(
                factory, ServeConfig(queue_depth=64), registry=MetricsRegistry()
            )
            for i in range(20):
                server.submit(_request(device_id=7, key=f"k{i}"))
            await server.drain()
            await server.close()
            return backends[7].served

        assert run_simulated(scenario()) == [f"k{i}" for i in range(20)]

    def test_response_times_and_metrics(self):
        async def scenario():
            server = CloudletServer(
                lambda uid: StubBackend(cached={"hit"}, hit_latency_s=0.5),
                ServeConfig(queue_depth=8),
                registry=MetricsRegistry(),
            )
            hit_f = server.submit(_request(key="hit"))
            miss_f = server.submit(_request(key="miss"))
            await server.drain()
            await server.close()
            return server, hit_f.result(), miss_f.result()

        server, hit, miss = run_simulated(scenario())
        assert hit.ok and hit.outcome.hit
        assert hit.sojourn_s == pytest.approx(0.5)
        # Miss: radio fetch (1.5s shared window) + local remainder (0.5s),
        # queued behind the hit.
        assert not miss.outcome.hit
        assert miss.completed_at == pytest.approx(0.5 + 2.0)
        assert miss.sojourn_s == pytest.approx(2.5)
        assert miss.queue_wait_s == pytest.approx(0.5)
        reg = server.registry
        assert reg.counter("serve.completed").value == 2
        assert reg.counter("serve.hits").value == 1
        assert reg.counter("serve.misses").value == 1
        assert reg.histogram("serve.sojourn_s").count == 2
        assert reg.gauge("serve.inflight_peak").value == 2

    def test_cross_device_miss_batching(self):
        async def scenario():
            server = CloudletServer(
                lambda uid: StubBackend(),  # everything misses
                ServeConfig(queue_depth=8),
                registry=MetricsRegistry(),
            )
            futures = [
                server.submit(_request(device_id=uid, key="same-query"))
                for uid in range(3)
            ]
            await server.drain()
            replies = [f.result() for f in futures]
            await server.close()
            return server, replies

        server, replies = run_simulated(scenario())
        assert server.batcher.fetches == 1
        assert server.batcher.piggybacked == 2
        shared = [r.shared_fetch for r in replies]
        assert shared.count(True) == 2
        # Sharing never changes the *model* accounting.
        assert all(r.outcome.latency_s == 2.0 for r in replies)

    def test_time_scale_zero_serves_instantly(self):
        async def scenario():
            server = CloudletServer(
                lambda uid: StubBackend(),
                ServeConfig(queue_depth=8, time_scale=0.0),
                registry=MetricsRegistry(),
            )
            futures = [server.submit(_request(key=f"q{i}")) for i in range(5)]
            await server.drain()
            await server.close()
            loop = asyncio.get_running_loop()
            return loop.time(), [f.result() for f in futures]

        t, replies = run_simulated(scenario())
        assert t == 0.0
        assert all(isinstance(r, ServeResponse) for r in replies)

    def test_submit_after_close_raises(self):
        async def scenario():
            server = CloudletServer(
                lambda uid: StubBackend(), registry=MetricsRegistry()
            )
            await server.close()
            with pytest.raises(RuntimeError, match="closed"):
                server.submit(_request())

        run_simulated(scenario())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServeConfig(queue_depth=0)
        with pytest.raises(ValueError):
            ServeConfig(max_inflight=-1)
        with pytest.raises(ValueError):
            ServeConfig(time_scale=-0.1)
        with pytest.raises(ValueError):
            ServeConfig(refresh_interval_s=0.0)
        with pytest.raises(ValueError, match="refresh_fn"):
            CloudletServer(
                lambda uid: StubBackend(),
                ServeConfig(refresh_interval_s=5.0),
                registry=MetricsRegistry(),
            )


class TestBackgroundRefresh:
    def test_refresh_runs_without_stalling_serving(self):
        async def scenario():
            refreshes = []

            def refresh_fn(device_id, backend):
                refreshes.append(asyncio.get_running_loop().time())

            server = CloudletServer(
                lambda uid: StubBackend(cached={"q"}),
                ServeConfig(queue_depth=8, refresh_interval_s=5.0),
                registry=MetricsRegistry(),
                refresh_fn=refresh_fn,
            )
            server.start()
            replies = []
            for i in range(30):
                fut = server.submit(_request(key="q", timestamp=float(i)))
                await asyncio.sleep(1.0)
                replies.append(fut)
            await server.drain()
            await server.close()
            return server, refreshes, [f.result() for f in replies]

        server, refreshes, replies = run_simulated(scenario())
        # ~30s of traffic at a 5s refresh period: the scheduler kept
        # firing and every request still completed promptly.
        assert len(refreshes) >= 5
        assert all(isinstance(r, ServeResponse) for r in replies)
        assert all(r.sojourn_s < 1.0 for r in replies)
        assert server.registry.counter("serve.refreshes").value == len(refreshes)

    def test_mid_session_refresh_applies_fresh_content(self):
        """A background refresh lands between two requests of a live
        session and the second request sees the new community content."""
        content_a = CacheContent(
            entries=[CacheEntry("alpha", "www.alpha.com", 10, 0.5, False)],
            total_log_volume=100,
        )
        content_b = CacheContent(
            entries=[
                CacheEntry("alpha", "www.alpha.com", 10, 0.5, False),
                CacheEntry("zebra", "www.zebra.org", 10, 0.5, False),
            ],
            total_log_volume=100,
        )

        async def scenario():
            update_server = CacheUpdateServer()

            def factory(uid):
                cache = PocketSearchCache()
                cache.load_community(content_a)
                return SearchBackend(PocketSearchEngine(cache))

            def refresh_fn(device_id, backend):
                update_server.refresh_with_content(
                    backend.engine.cache, content_b
                )

            server = CloudletServer(
                factory,
                ServeConfig(queue_depth=8, refresh_interval_s=10.0),
                registry=MetricsRegistry(),
                refresh_fn=refresh_fn,
            )
            server.start()
            before = server.submit(
                ServeRequest(device_id=1, key="zebra", clicked_url="www.other.com")
            )
            await asyncio.sleep(15.0)  # refresh fires at t=10
            after = server.submit(
                ServeRequest(device_id=1, key="zebra", clicked_url="www.zebra.org")
            )
            await server.drain()
            await server.close()
            return before.result(), after.result()

        before, after = run_simulated(scenario())
        assert not before.outcome.hit
        assert after.outcome.hit

    def test_refresh_waits_for_inflight_request(self):
        """The refresher takes the session lock, so it can never observe
        (or mutate) a backend mid-``serve``."""

        class LockProbeBackend(StubBackend):
            def __init__(self):
                super().__init__(cached={"q"})
                self.refreshed_during_serve = False
                self.in_serve = False

            def serve(self, request):
                self.in_serve = True
                try:
                    return super().serve(request)
                finally:
                    self.in_serve = False

        async def scenario():
            backends = {}

            def factory(uid):
                backends[uid] = LockProbeBackend()
                return backends[uid]

            def refresh_fn(device_id, backend):
                if backend.in_serve:
                    backend.refreshed_during_serve = True

            server = CloudletServer(
                factory,
                ServeConfig(queue_depth=8, refresh_interval_s=0.05),
                registry=MetricsRegistry(),
                refresh_fn=refresh_fn,
            )
            server.start()
            for i in range(50):
                server.submit(_request(device_id=1, key="q"))
                await asyncio.sleep(0.05)
            await server.drain()
            await server.close()
            return backends[1]

        backend = run_simulated(scenario())
        assert backend.served  # traffic actually flowed
        assert backend.refreshed_during_serve is False
