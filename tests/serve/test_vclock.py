"""Tests for the deterministic simulated-time event loop."""

import asyncio
import time

import pytest

from repro.serve.vclock import VirtualTimeLoop, run_simulated


class TestVirtualTime:
    def test_sleep_advances_clock_not_wall(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            t0 = loop.time()
            await asyncio.sleep(1_000_000.0)
            return loop.time() - t0

        wall0 = time.monotonic()
        elapsed = run_simulated(scenario())
        assert elapsed == pytest.approx(1_000_000.0)
        assert time.monotonic() - wall0 < 5.0

    def test_clock_starts_at_zero(self):
        async def scenario():
            return asyncio.get_running_loop().time()

        assert run_simulated(scenario()) == 0.0

    def test_concurrent_sleeps_complete_in_deadline_order(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            events = []

            async def sleeper(name, dt):
                await asyncio.sleep(dt)
                events.append((name, loop.time()))

            await asyncio.gather(
                sleeper("c", 3.0), sleeper("a", 1.0), sleeper("b", 2.0)
            )
            return events

        events = run_simulated(scenario())
        assert [name for name, _ in events] == ["a", "b", "c"]
        assert [t for _, t in events] == pytest.approx([1.0, 2.0, 3.0])

    def test_interleaving_is_deterministic(self):
        async def scenario():
            trace = []

            async def worker(name, period, n):
                for i in range(n):
                    await asyncio.sleep(period)
                    trace.append((name, i))

            await asyncio.gather(
                worker("x", 0.7, 10), worker("y", 1.1, 10), worker("z", 0.3, 10)
            )
            return trace

        assert run_simulated(scenario()) == run_simulated(scenario())

    def test_result_and_exception_propagate(self):
        async def ok():
            await asyncio.sleep(1)
            return 42

        async def boom():
            await asyncio.sleep(1)
            raise ValueError("boom")

        assert run_simulated(ok()) == 42
        with pytest.raises(ValueError, match="boom"):
            run_simulated(boom())

    def test_deadlocked_await_raises_instead_of_spinning(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            await loop.create_future()  # nobody will ever resolve this

        with pytest.raises(RuntimeError, match="stalled"):
            run_simulated(scenario())

    def test_loop_closed_after_run(self):
        loop_holder = {}

        async def scenario():
            loop_holder["loop"] = asyncio.get_running_loop()

        run_simulated(scenario())
        assert isinstance(loop_holder["loop"], VirtualTimeLoop)
        assert loop_holder["loop"].is_closed()
