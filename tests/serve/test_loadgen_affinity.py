"""The load generator's device geographic/affinity assignment.

``LoadGenConfig.n_regions`` turns on a deterministic per-device region
draw (reused from :mod:`repro.edge.placement`) recorded in
``Workload.device_regions`` — stable across runs, draw order, and
fleet growth.
"""

import pytest

from repro.serve.loadgen import (
    LoadGenConfig,
    assign_device_regions,
    build_workload,
)


class TestConfig:
    def test_regions_off_by_default(self, small_log):
        workload = build_workload(small_log, 1, LoadGenConfig(seed=7))
        assert workload.device_regions == {}

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadGenConfig(n_regions=0)
        with pytest.raises(ValueError):
            LoadGenConfig(placement_skew=-0.5)


class TestDeviceRegions:
    def test_every_scheduled_device_gets_a_region(self, small_log):
        config = LoadGenConfig(seed=7, rate_multiplier=500.0, n_regions=4)
        workload = build_workload(small_log, 1, config)
        scheduled = {req.device_id for _, req in workload.arrivals}
        assert set(workload.device_regions) == scheduled
        assert all(0 <= r < 4 for r in workload.device_regions.values())

    def test_deterministic_across_builds(self, small_log):
        config = LoadGenConfig(seed=7, rate_multiplier=500.0, n_regions=8, placement_skew=1.0)
        a = build_workload(small_log, 1, config)
        b = build_workload(small_log, 1, config)
        assert a.device_regions == b.device_regions

    def test_matches_reusable_helper(self, small_log):
        """The workload records exactly what the standalone helper
        computes — one assignment authority, two entry points."""
        config = LoadGenConfig(seed=7, rate_multiplier=500.0, n_regions=8, placement_skew=0.5)
        workload = build_workload(small_log, 1, config)
        expected = assign_device_regions(
            sorted(workload.device_regions),
            8,
            skew=0.5,
            seed=7,
        )
        assert workload.device_regions == expected

    def test_stable_under_device_cap(self, small_log):
        """Capping the fleet never moves the surviving devices — the
        draw is per-device, not positional."""
        whole = build_workload(
            small_log, 1, LoadGenConfig(seed=7, rate_multiplier=500.0, n_regions=4)
        )
        capped = build_workload(
            small_log, 1, LoadGenConfig(seed=7, rate_multiplier=500.0, n_regions=4, max_devices=3)
        )
        assert capped.device_regions  # the cap leaves someone scheduled
        for device_id, region in capped.device_regions.items():
            assert whole.device_regions[device_id] == region

    def test_skew_concentrates_devices(self, small_log):
        uniform = build_workload(
            small_log, 1, LoadGenConfig(seed=7, rate_multiplier=500.0, n_regions=4)
        )
        skewed = build_workload(
            small_log, 1,
            LoadGenConfig(seed=7, rate_multiplier=500.0, n_regions=4, placement_skew=3.0),
        )

        def region0_share(workload):
            regions = list(workload.device_regions.values())
            return regions.count(0) / len(regions)

        assert region0_share(skewed) > region0_share(uniform)

    def test_log_arrivals_also_assigned(self, small_log):
        config = LoadGenConfig(
            seed=7, n_regions=4, arrivals="log", rate_multiplier=5000.0
        )
        workload = build_workload(small_log, 1, config)
        scheduled = {req.device_id for _, req in workload.arrivals}
        assert set(workload.device_regions) == scheduled
