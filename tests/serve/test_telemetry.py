"""Tests for the serving telemetry plane (repro.serve.telemetry)."""

import pytest

from repro.obs.slo import SLOPolicy, SLORule
from repro.obs.trace import TraceContext, Tracer, set_tracer, disable
from repro.serve.requests import ServeRequest, ServeResponse
from repro.serve.telemetry import ServeTelemetry
from repro.sim.metrics import QueryOutcome, ServiceSource


def _response(
    trace_id=1,
    enqueued_at=0.0,
    completed_at=1.0,
    hit=True,
    shared=False,
    device_id=1,
    key="q",
):
    """A synthetic completed response with a consistent trace."""
    outcome = QueryOutcome(
        query=key,
        hit=hit,
        source=ServiceSource.CACHE if hit else ServiceSource.RADIO_3G,
        latency_s=completed_at - enqueued_at,
        energy_j=0.0,
        timestamp=enqueued_at,
    )
    trace = TraceContext(trace_id, enqueued_at)
    trace.mark("queue_wait", enqueued_at)
    trace.mark("refresh_blocked", enqueued_at)
    if not hit:
        trace.mark("batch_wait", completed_at)
    trace.mark("service", completed_at)
    return ServeResponse(
        request=ServeRequest(device_id=device_id, key=key),
        outcome=outcome,
        enqueued_at=enqueued_at,
        started_at=enqueued_at,
        completed_at=completed_at,
        shared_fetch=shared,
        trace=trace,
    )


def _slow_policy():
    return SLOPolicy(
        rules=(SLORule("p99", "latency", objective=0.9, threshold_s=0.5),),
        long_window_s=10.0,
        short_window_s=2.0,
        burn_threshold=2.0,
    )


class TestRollingStats:
    def test_hit_and_shed_rates(self):
        telemetry = ServeTelemetry(bucket_width_s=1.0, n_buckets=60)
        for i in range(4):
            telemetry.on_submit(i * 0.1, inflight=1)
            telemetry.on_response(
                i * 0.1 + 0.05,
                _response(trace_id=i + 1, enqueued_at=i * 0.1,
                          completed_at=i * 0.1 + 0.05, hit=(i % 2 == 0)),
                inflight=0,
            )
        telemetry.on_submit(1.0, inflight=1)
        telemetry.on_shed(1.0, object())
        rolling = telemetry.rolling(2.0)
        assert rolling["requests"] == 5
        assert rolling["completed"] == 4
        assert rolling["hit_rate"] == pytest.approx(0.5)
        assert rolling["shed_rate"] == pytest.approx(0.2)
        assert rolling["inflight_hwm"] == 1

    def test_batch_efficiency_from_fetch_classification(self):
        telemetry = ServeTelemetry()
        # Leader miss: batch_wait > 0, not shared.
        telemetry.on_response(
            1.0, _response(hit=False, completed_at=1.0), inflight=0
        )
        # Rider miss: shared fetch.
        telemetry.on_response(
            1.1,
            _response(trace_id=2, hit=False, completed_at=1.1, shared=True),
            inflight=0,
        )
        rolling = telemetry.rolling(2.0)
        assert rolling["batch_efficiency"] == pytest.approx(0.5)

    def test_exemplars_carry_segment_timelines(self):
        telemetry = ServeTelemetry(exemplar_k=2)
        telemetry.on_response(
            5.0, _response(completed_at=5.0, key="slow"), inflight=0
        )
        top = telemetry.exemplars.top(5.5)
        assert top[0]["key"] == "slow"
        assert top[0]["latency_s"] == pytest.approx(5.0)
        assert "breakdown" in top[0]
        assert top[0]["hit"] is True


class TestPerBucket:
    def test_rows_align_across_instruments(self):
        telemetry = ServeTelemetry(bucket_width_s=1.0, n_buckets=10)
        telemetry.on_submit(0.5, inflight=3)
        telemetry.on_response(
            0.6, _response(enqueued_at=0.5, completed_at=0.6), inflight=2
        )
        telemetry.on_shed(2.5, object())
        rows = telemetry.per_bucket(3.0)
        by_start = {row["t_start"]: row for row in rows}
        assert by_start[0.0]["completed"] == 1
        assert by_start[0.0]["hit_rate"] == 1.0
        assert by_start[0.0]["inflight_hwm"] == 3
        assert by_start[2.0]["shed"] == 1
        assert by_start[2.0]["hit_rate"] is None


class TestSLOIntegration:
    def test_alerts_fire_inline_and_emit_tracer_events(self):
        tracer = Tracer()
        set_tracer(tracer)
        try:
            telemetry = ServeTelemetry(slo_policy=_slow_policy())
            # Every request blows the 0.5s threshold across 4 buckets;
            # the bucket-roll tick evaluates and fires inline.
            for i in range(40):
                t = i * 0.1
                telemetry.on_response(
                    t,
                    _response(trace_id=i + 1, enqueued_at=t - 2.0,
                              completed_at=t, hit=False),
                    inflight=0,
                )
            telemetry.finalize()
            assert telemetry.slo.alerts
            events = [r for r in tracer.records() if r.name == "slo_alert"]
            assert len(events) == len(telemetry.slo.alerts)
            assert events[0].attrs["rule"] == "p99"
        finally:
            disable()

    def test_verdict_surfaces_in_snapshot_and_none_without_policy(self):
        telemetry = ServeTelemetry(slo_policy=_slow_policy())
        telemetry.on_response(0.5, _response(completed_at=0.5), inflight=0)
        snapshot = telemetry.snapshot()
        assert "slo" in snapshot
        assert telemetry.verdict()["verdict"] in ("pass", "fail")
        bare = ServeTelemetry()
        assert bare.verdict() is None
        assert "slo" not in bare.snapshot()


class TestTicks:
    def test_on_tick_fires_once_per_bucket_roll(self):
        telemetry = ServeTelemetry(bucket_width_s=1.0)
        ticks = []
        telemetry.on_tick.append(lambda t, tel: ticks.append(t))
        for t in (0.1, 0.5, 0.9, 1.1, 1.2, 3.5):
            telemetry.on_submit(t, inflight=1)
        # Rolls: bucket 0 -> 1 (tick at 1.0) and 1 -> 3 (tick at 3.0).
        assert ticks == [1.0, 3.0]

    def test_snapshot_defaults_to_latest_event_time(self):
        telemetry = ServeTelemetry()
        telemetry.on_submit(7.25, inflight=1)
        assert telemetry.snapshot()["t"] == 7.25
        assert telemetry.t_last == 7.25
