"""Tests for the serving telemetry plane (repro.serve.telemetry)."""

import pytest

from repro.obs.slo import SLOPolicy, SLORule
from repro.obs.trace import TraceContext, Tracer, set_tracer, disable
from repro.serve.requests import ServeRequest, ServeResponse
from repro.serve.telemetry import ServeTelemetry
from repro.sim.metrics import QueryOutcome, ServiceSource


def _response(
    trace_id=1,
    enqueued_at=0.0,
    completed_at=1.0,
    hit=True,
    shared=False,
    device_id=1,
    key="q",
):
    """A synthetic completed response with a consistent trace."""
    outcome = QueryOutcome(
        query=key,
        hit=hit,
        source=ServiceSource.CACHE if hit else ServiceSource.RADIO_3G,
        latency_s=completed_at - enqueued_at,
        energy_j=0.0,
        timestamp=enqueued_at,
    )
    trace = TraceContext(trace_id, enqueued_at)
    trace.mark("queue_wait", enqueued_at)
    trace.mark("refresh_blocked", enqueued_at)
    if not hit:
        trace.mark("batch_wait", completed_at)
    trace.mark("service", completed_at)
    return ServeResponse(
        request=ServeRequest(device_id=device_id, key=key),
        outcome=outcome,
        enqueued_at=enqueued_at,
        started_at=enqueued_at,
        completed_at=completed_at,
        shared_fetch=shared,
        trace=trace,
    )


def _slow_policy():
    return SLOPolicy(
        rules=(SLORule("p99", "latency", objective=0.9, threshold_s=0.5),),
        long_window_s=10.0,
        short_window_s=2.0,
        burn_threshold=2.0,
    )


class TestRollingStats:
    def test_hit_and_shed_rates(self):
        telemetry = ServeTelemetry(bucket_width_s=1.0, n_buckets=60)
        for i in range(4):
            telemetry.on_submit(i * 0.1, inflight=1)
            telemetry.on_response(
                i * 0.1 + 0.05,
                _response(trace_id=i + 1, enqueued_at=i * 0.1,
                          completed_at=i * 0.1 + 0.05, hit=(i % 2 == 0)),
                inflight=0,
            )
        telemetry.on_submit(1.0, inflight=1)
        telemetry.on_shed(1.0, object())
        rolling = telemetry.rolling(2.0)
        assert rolling["requests"] == 5
        assert rolling["completed"] == 4
        assert rolling["hit_rate"] == pytest.approx(0.5)
        assert rolling["shed_rate"] == pytest.approx(0.2)
        assert rolling["inflight_hwm"] == 1

    def test_batch_efficiency_from_fetch_classification(self):
        telemetry = ServeTelemetry()
        # Leader miss: batch_wait > 0, not shared.
        telemetry.on_response(
            1.0, _response(hit=False, completed_at=1.0), inflight=0
        )
        # Rider miss: shared fetch.
        telemetry.on_response(
            1.1,
            _response(trace_id=2, hit=False, completed_at=1.1, shared=True),
            inflight=0,
        )
        rolling = telemetry.rolling(2.0)
        assert rolling["batch_efficiency"] == pytest.approx(0.5)

    def test_exemplars_carry_segment_timelines(self):
        telemetry = ServeTelemetry(exemplar_k=2)
        telemetry.on_response(
            5.0, _response(completed_at=5.0, key="slow"), inflight=0
        )
        top = telemetry.exemplars.top(5.5)
        assert top[0]["key"] == "slow"
        assert top[0]["latency_s"] == pytest.approx(5.0)
        assert "breakdown" in top[0]
        assert top[0]["hit"] is True


class TestPerBucket:
    def test_rows_align_across_instruments(self):
        telemetry = ServeTelemetry(bucket_width_s=1.0, n_buckets=10)
        telemetry.on_submit(0.5, inflight=3)
        telemetry.on_response(
            0.6, _response(enqueued_at=0.5, completed_at=0.6), inflight=2
        )
        telemetry.on_shed(2.5, object())
        rows = telemetry.per_bucket(3.0)
        by_start = {row["t_start"]: row for row in rows}
        assert by_start[0.0]["completed"] == 1
        assert by_start[0.0]["hit_rate"] == 1.0
        assert by_start[0.0]["inflight_hwm"] == 3
        assert by_start[2.0]["shed"] == 1
        assert by_start[2.0]["hit_rate"] is None


class TestSLOIntegration:
    def test_alerts_fire_inline_and_emit_tracer_events(self):
        tracer = Tracer()
        set_tracer(tracer)
        try:
            telemetry = ServeTelemetry(slo_policy=_slow_policy())
            # Every request blows the 0.5s threshold across 4 buckets;
            # the bucket-roll tick evaluates and fires inline.
            for i in range(40):
                t = i * 0.1
                telemetry.on_response(
                    t,
                    _response(trace_id=i + 1, enqueued_at=t - 2.0,
                              completed_at=t, hit=False),
                    inflight=0,
                )
            telemetry.finalize()
            assert telemetry.slo.alerts
            events = [r for r in tracer.records() if r.name == "slo_alert"]
            assert len(events) == len(telemetry.slo.alerts)
            assert events[0].attrs["rule"] == "p99"
        finally:
            disable()

    def test_verdict_surfaces_in_snapshot_and_none_without_policy(self):
        telemetry = ServeTelemetry(slo_policy=_slow_policy())
        telemetry.on_response(0.5, _response(completed_at=0.5), inflight=0)
        snapshot = telemetry.snapshot()
        assert "slo" in snapshot
        assert telemetry.verdict()["verdict"] in ("pass", "fail")
        bare = ServeTelemetry()
        assert bare.verdict() is None
        assert "slo" not in bare.snapshot()


class TestTicks:
    def test_on_tick_fires_once_per_bucket_roll(self):
        telemetry = ServeTelemetry(bucket_width_s=1.0)
        ticks = []
        telemetry.on_tick.append(lambda t, tel: ticks.append(t))
        for t in (0.1, 0.5, 0.9, 1.1, 1.2, 3.5):
            telemetry.on_submit(t, inflight=1)
        # Rolls: bucket 0 -> 1 (tick at 1.0) and 1 -> 3 (tick at 3.0).
        assert ticks == [1.0, 3.0]

    def test_snapshot_defaults_to_latest_event_time(self):
        telemetry = ServeTelemetry()
        telemetry.on_submit(7.25, inflight=1)
        assert telemetry.snapshot()["t"] == 7.25
        assert telemetry.t_last == 7.25


def _energy_response(trace_id, t, hit, energy, timeline_j, device_id=1):
    import dataclasses

    response = _response(
        trace_id=trace_id,
        enqueued_at=t - 0.1,
        completed_at=t,
        hit=hit,
        device_id=device_id,
    )
    return dataclasses.replace(
        response, energy=energy, radio_timeline_j=timeline_j
    )


class TestEnergyTelemetry:
    def _hit(self):
        from repro.obs.energy import EnergyBreakdown

        return EnergyBreakdown(storage_j=0.3, base_j=0.2)

    def _miss(self):
        from repro.obs.energy import EnergyBreakdown

        return EnergyBreakdown(ramp_j=1.0, transfer_j=7.0, tail_j=2.0)

    def test_energy_and_battery_sections_in_snapshot(self):
        telemetry = ServeTelemetry(battery_capacity_j=100.0)
        hit, miss = self._hit(), self._miss()
        telemetry.on_response(
            1.0, _energy_response(1, 1.0, True, hit, 0.0, device_id=1),
            inflight=0,
        )
        telemetry.on_response(
            2.0,
            _energy_response(2, 2.0, False, miss, miss.radio_j, device_id=2),
            inflight=0,
        )
        snap = telemetry.snapshot()
        rolling = snap["energy"]["rolling"]
        assert rolling["hit_energy_j"] == pytest.approx(hit.total_j)
        assert rolling["miss_energy_j"] == pytest.approx(miss.total_j)
        assert rolling["hit_miss_energy_ratio"] == pytest.approx(
            miss.total_j / hit.total_j
        )
        assert rolling["conservation"]["requests"] == 2
        assert telemetry.energy.ledger.conserved()
        batteries = snap["batteries"]
        assert batteries["n_devices"] == 2
        assert batteries["drained_j"] == pytest.approx(
            hit.total_j + miss.total_j
        )
        assert batteries["min_level"] == pytest.approx(
            1.0 - miss.total_j / 100.0
        )

    def test_responses_without_energy_leave_plane_empty(self):
        telemetry = ServeTelemetry()
        telemetry.on_response(1.0, _response(), inflight=0)
        snap = telemetry.snapshot()
        assert snap["energy"]["rolling"]["conservation"]["requests"] == 0
        assert snap["batteries"]["n_devices"] == 0

    def test_prometheus_samples_labeled(self):
        telemetry = ServeTelemetry(battery_capacity_j=100.0)
        miss = self._miss()
        telemetry.on_response(
            1.0,
            _energy_response(1, 1.0, False, miss, miss.radio_j, device_id=7),
            inflight=0,
        )
        samples = telemetry.prometheus_samples()
        by_name = {}
        for name, labels, value in samples:
            by_name.setdefault(name, []).append((labels, value))
        assert by_name["serve.energy.source_joules"] == [
            ({"source": "3g"}, pytest.approx(miss.total_j))
        ]
        assert by_name["serve.energy.attributed_radio_j"][0][1] == (
            pytest.approx(miss.radio_j)
        )
        assert ({"device": "7"}, pytest.approx(0.9)) in by_name[
            "serve.battery.level"
        ]

    def test_energy_slo_rules_fed_from_responses(self):
        from repro.obs.slo import SLOPolicy, SLORule

        policy = SLOPolicy(
            rules=(
                SLORule("joules", "energy", objective=0.5, threshold_j=1.0),
            ),
            long_window_s=10.0,
            short_window_s=2.0,
        )
        telemetry = ServeTelemetry(slo_policy=policy)
        telemetry.on_response(
            1.0, _energy_response(1, 1.0, True, self._hit(), 0.0), inflight=0
        )
        miss = self._miss()
        telemetry.on_response(
            2.0, _energy_response(2, 2.0, False, miss, miss.radio_j),
            inflight=0,
        )
        rule = telemetry.verdict()["rules"]["joules"]
        assert rule["total"] == 2
        assert rule["bad"] == 1


class TestEdgeNodeExposition:
    def test_per_node_labeled_samples(self):
        from repro.edge.tier import EdgeTier, EdgeTopology
        from repro.obs.exposition import render_prometheus
        from repro.obs.registry import MetricsRegistry

        telemetry = ServeTelemetry()
        tier = EdgeTier(EdgeTopology(n_nodes=2, seed=7))
        telemetry.edge_stats_fn = tier.stats
        telemetry.on_response(1.0, _response(), inflight=0)

        by_name = {}
        for name, labels, value in telemetry.prometheus_samples():
            by_name.setdefault(name, []).append((labels, value))
        for field in ("hits", "misses", "inflight", "sheds", "slice_size"):
            rows = by_name["serve.edge.node_" + field]
            assert [labels for labels, _ in rows] == [
                {"node": "0"}, {"node": "1"},
            ], field

        text = render_prometheus(
            MetricsRegistry(),
            extra_samples=telemetry.prometheus_samples(),
        )
        assert '# TYPE repro_serve_edge_node_hits gauge' in text
        assert 'repro_serve_edge_node_hits{node="0"} 0' in text
        assert 'repro_serve_edge_node_hits{node="1"} 0' in text

    def test_no_edge_tier_no_node_samples(self):
        telemetry = ServeTelemetry()
        telemetry.on_response(1.0, _response(), inflight=0)
        names = {name for name, _, _ in telemetry.prometheus_samples()}
        assert not any(name.startswith("serve.edge.") for name in names)
