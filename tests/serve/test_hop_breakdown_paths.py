"""Per-tier hop accounting on the degraded paths.

The happy path's hop re-sum invariants are covered by the trace and
edge suites; these tests pin the shed/overloaded paths the flight
recorder leans on: completed replies re-sum while the server is
actively shedding, shed traces carry the ``shed`` mark and typed
reason, and an edge-inflight shed records which cloudlet node refused.
"""

from repro.edge.tier import EdgeTier, EdgeTopology
from repro.obs.registry import MetricsRegistry
from repro.serve.requests import (
    Overloaded,
    ServeRequest,
    ServeResponse,
    TIER_NAMES,
)
from repro.serve.server import CloudletServer, ServeConfig
from repro.serve.vclock import run_simulated
from repro.sim.metrics import QueryOutcome, ServiceSource

from tests.serve.test_trace_propagation import StubBackend, _request

TOL = 1e-9


def _hop_sums(response):
    hops = response.hop_breakdown()
    assert set(hops) == set(TIER_NAMES)
    latency = sum(h["latency_s"] for h in hops.values())
    energy = sum(h["energy_j"] for h in hops.values())
    return latency, energy


async def _overload_scenario(n=24, **config):
    server = CloudletServer(
        lambda uid: StubBackend(cached={"hit"}),
        ServeConfig(**config),
        registry=MetricsRegistry(),
    )
    futures = [
        server.submit(_request(device_id=i % 3, key="hit" if i % 2 else f"m{i}"))
        for i in range(n)
    ]
    await server.drain()
    replies = [f.result() for f in futures]
    await server.close()
    return replies


class TestNoTracePath:
    def test_hop_breakdown_without_trace_resums(self):
        outcome = QueryOutcome(
            query="q", hit=True, source=ServiceSource.CACHE,
            latency_s=0.2, energy_j=0.0, timestamp=0.0,
        )
        response = ServeResponse(
            request=ServeRequest(device_id=1, key="q"),
            outcome=outcome,
            enqueued_at=1.0, started_at=1.3, completed_at=1.5,
        )
        latency, energy = _hop_sums(response)
        assert abs(latency - response.sojourn_s) <= TOL
        assert energy == 0.0
        # Without a trace everything is device-side time.
        assert response.hop_breakdown()["device"]["latency_s"] == (
            response.sojourn_s
        )


class TestOverloadedServerPath:
    def test_completed_replies_resum_while_shedding(self):
        replies = run_simulated(
            _overload_scenario(queue_depth=1, max_inflight=4)
        )
        responses = [r for r in replies if isinstance(r, ServeResponse)]
        sheds = [r for r in replies if isinstance(r, Overloaded)]
        assert responses and sheds  # genuinely degraded, not idle
        for response in responses:
            latency, energy = _hop_sums(response)
            assert abs(latency - response.sojourn_s) <= TOL
            assert abs(energy - response.energy_j) <= TOL

    def test_shed_trace_carries_mark_and_reason(self):
        replies = run_simulated(
            _overload_scenario(queue_depth=1, max_inflight=4)
        )
        sheds = [r for r in replies if isinstance(r, Overloaded)]
        assert sheds
        for shed in sheds:
            assert shed.reason in ("device-queue-full", "server-busy")
            assert shed.trace is not None
            assert [name for name, _ in shed.trace.marks[1:]] == ["shed"]
            assert shed.trace.annotations["shed_reason"] == shed.reason

    def test_server_busy_when_inflight_cap_hit(self):
        replies = run_simulated(
            _overload_scenario(queue_depth=64, max_inflight=2)
        )
        reasons = {
            r.reason for r in replies if isinstance(r, Overloaded)
        }
        assert reasons == {"server-busy"}


class TestEdgeShedPath:
    def _scenario(self):
        async def run():
            edge = EdgeTier(EdgeTopology(n_nodes=2, node_max_inflight=1))
            server = CloudletServer(
                lambda uid: StubBackend(cached=frozenset()),
                ServeConfig(queue_depth=64, max_inflight=64),
                registry=MetricsRegistry(),
                edge=edge,
            )
            futures = [
                server.submit(_request(device_id=i, key=f"miss-{i}"))
                for i in range(16)
            ]
            await server.drain()
            replies = [f.result() for f in futures]
            await server.close()
            return replies

        return run_simulated(run())

    def test_edge_shed_records_refusing_node(self):
        replies = self._scenario()
        edge_sheds = [
            r for r in replies
            if isinstance(r, Overloaded) and r.reason == "edge-queue-full"
        ]
        assert edge_sheds  # inflight bound of 1 must refuse concurrent fetches
        topology_nodes = {0, 1}
        for shed in edge_sheds:
            assert shed.trace is not None
            assert shed.trace.annotations["edge_node"] in topology_nodes
            assert shed.trace.annotations["shed_reason"] == "edge-queue-full"

    def test_edge_completions_resum_alongside_sheds(self):
        replies = self._scenario()
        responses = [r for r in replies if isinstance(r, ServeResponse)]
        assert responses
        for response in responses:
            latency, energy = _hop_sums(response)
            assert abs(latency - response.sojourn_s) <= TOL
            assert abs(energy - response.energy_j) <= TOL
        # At least one answer actually crossed the edge hop.
        assert any(r.edge_node is not None for r in responses)
