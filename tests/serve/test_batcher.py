"""Tests for single-flight miss batching."""

import asyncio

import pytest

from repro.serve.batcher import MissBatcher
from repro.serve.vclock import run_simulated


class TestSingleFlight:
    def test_concurrent_identical_fetches_share_one_flight(self):
        async def scenario():
            batcher = MissBatcher()
            shared = await asyncio.gather(
                batcher.fetch("q", 5.0), batcher.fetch("q", 5.0),
                batcher.fetch("q", 5.0),
            )
            return batcher, shared

        batcher, shared = run_simulated(scenario())
        assert batcher.fetches == 1
        assert batcher.piggybacked == 2
        assert shared == [False, True, True]
        assert batcher.batch_efficiency == pytest.approx(2 / 3)

    def test_distinct_keys_do_not_share(self):
        async def scenario():
            batcher = MissBatcher()
            await asyncio.gather(
                batcher.fetch("a", 1.0), batcher.fetch("b", 1.0)
            )
            return batcher

        batcher = run_simulated(scenario())
        assert batcher.fetches == 2
        assert batcher.piggybacked == 0
        assert batcher.batch_efficiency == 0.0

    def test_sequential_fetches_do_not_share(self):
        async def scenario():
            batcher = MissBatcher()
            await batcher.fetch("q", 1.0)
            await batcher.fetch("q", 1.0)
            return batcher

        batcher = run_simulated(scenario())
        assert batcher.fetches == 2
        assert batcher.piggybacked == 0

    def test_follower_completes_with_leader(self):
        """A piggybacked fetch finishes when the in-flight one does —
        earlier than its own full duration would have."""

        async def scenario():
            loop = asyncio.get_running_loop()
            batcher = MissBatcher()
            times = {}

            async def leader():
                await batcher.fetch("q", 10.0)
                times["leader"] = loop.time()

            async def follower():
                await asyncio.sleep(4.0)  # join 4s into the flight
                await batcher.fetch("q", 10.0)
                times["follower"] = loop.time()

            await asyncio.gather(leader(), follower())
            return times

        times = run_simulated(scenario())
        assert times["leader"] == pytest.approx(10.0)
        assert times["follower"] == pytest.approx(10.0)

    def test_inflight_tracking(self):
        async def scenario():
            batcher = MissBatcher()
            task = asyncio.ensure_future(batcher.fetch("q", 2.0))
            await asyncio.sleep(1.0)
            mid = batcher.inflight
            await task
            return mid, batcher.inflight

        mid, after = run_simulated(scenario())
        assert mid == 1
        assert after == 0

    def test_idle_efficiency_is_zero(self):
        assert MissBatcher().batch_efficiency == 0.0
