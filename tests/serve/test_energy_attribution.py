"""The energy attribution tentpole: per-request joules through the serve
path, with the conservation invariant held under both clocks.

Every attributed response carries an :class:`EnergyBreakdown`; when
concurrent identical misses batch onto one radio flight, the wake/tail
energy is re-split across the participants.  The invariant: summing the
attributed radio joules across all responses reproduces the simulated
radio timeline's spend to 1e-9 — attribution moves energy around, it
never creates or destroys it.  And it is observe-only: the model's
``QueryOutcome.energy_j`` numbers are exactly what they were offline.
"""

import asyncio

import pytest

from repro.obs.energy import EnergyBreakdown
from repro.obs.registry import MetricsRegistry
from repro.serve import LoadGenConfig, ServeConfig, run_loadtest
from repro.serve.backends import BackendResult
from repro.serve.requests import ServeRequest, ServeResponse
from repro.serve.server import CloudletServer
from repro.serve.vclock import run_simulated
from repro.sim.metrics import QueryOutcome, ServiceSource

TOLERANCE = 1e-9

#: The stub's isolated miss energy: radio (1.5 + 6.0 + 2.5 = 10 J) + base.
MISS_ENERGY = EnergyBreakdown(
    ramp_j=1.5, transfer_j=6.0, tail_j=2.5, base_j=1.8
)
HIT_ENERGY = EnergyBreakdown(storage_j=0.3, base_j=0.2)


class EnergyStubBackend:
    """Scripted backend attaching fixed energy breakdowns."""

    def __init__(self, cached=frozenset(), with_energy=True, radio_s=1.5):
        self.cached = set(cached)
        self.with_energy = with_energy
        self.radio_s = radio_s

    def serve(self, request: ServeRequest) -> BackendResult:
        hit = request.key in self.cached
        energy = HIT_ENERGY if hit else MISS_ENERGY
        outcome = QueryOutcome(
            query=request.key,
            hit=hit,
            source=ServiceSource.CACHE if hit else ServiceSource.RADIO_3G,
            latency_s=0.1 if hit else 2.0,
            energy_j=energy.total_j,
            timestamp=request.timestamp,
        )
        return BackendResult(
            outcome=outcome,
            radio_s=0.0 if hit else self.radio_s,
            energy=energy if self.with_energy else None,
        )


def _server(backend_factory, **config):
    return CloudletServer(
        backend_factory,
        ServeConfig(**config) if config else ServeConfig(),
        registry=MetricsRegistry(),
    )


async def _burst(server, n_devices, key="shared-miss"):
    """Submit the same key from ``n_devices`` devices at once."""
    server.start()
    futures = [
        server.submit(ServeRequest(device_id=uid, key=key))
        for uid in range(n_devices)
    ]
    await server.drain()
    replies = [f.result() for f in futures]
    await server.close()
    return server, replies


def _assert_batched_conservation(server, replies, n_devices):
    responses = [r for r in replies if isinstance(r, ServeResponse)]
    assert len(responses) == n_devices
    leaders = [r for r in responses if not r.shared_fetch]
    riders = [r for r in responses if r.shared_fetch]
    assert len(leaders) == 1
    assert len(riders) == n_devices - 1

    leader, full = leaders[0], MISS_ENERGY
    # The transfer stays with the leader; riders carry none of it.
    assert leader.energy.transfer_j == full.transfer_j
    for rider in riders:
        assert rider.energy.transfer_j == 0.0
        assert rider.energy.ramp_j == pytest.approx(full.ramp_j / n_devices)
        assert rider.energy.tail_j == pytest.approx(full.tail_j / n_devices)
        # Non-radio components are untouched by the re-split.
        assert rider.energy.base_j == full.base_j
        # Riders report no timeline spend; the leader reports it all.
        assert rider.radio_timeline_j == 0.0
        assert rider.trace.annotations["batch_role"] == "rider"
    assert leader.radio_timeline_j == pytest.approx(full.radio_j)
    assert leader.trace.annotations["batch_riders"] == n_devices - 1

    # Conservation: attributed radio joules re-sum to the one flight.
    attributed = sum(r.energy.radio_j for r in responses)
    assert attributed == pytest.approx(full.radio_j, abs=TOLERANCE)
    ledger = server.telemetry.energy.ledger
    assert ledger.requests == n_devices
    assert ledger.timeline_j == pytest.approx(full.radio_j, abs=TOLERANCE)
    assert ledger.conserved()

    # Observe-only: the model's outcome numbers are untouched — every
    # participant still records its full isolated energy.
    for response in responses:
        assert response.outcome.energy_j == full.total_j
        # The trace carries the attributed breakdown.
        assert response.trace.energy == response.energy


class TestBatchedAttributionVirtualClock:
    @pytest.mark.parametrize("n_devices", [2, 3, 7])
    def test_shared_flight_conserves_energy(self, n_devices):
        async def scenario():
            server = _server(lambda uid: EnergyStubBackend())
            return await _burst(server, n_devices)

        server, replies = run_simulated(scenario())
        _assert_batched_conservation(server, replies, n_devices)

    def test_late_rider_joins_final_split(self):
        """Regression for the miss-batch accounting: the rider count is
        only final at flight completion, so a rider arriving mid-flight
        must still be counted in the leader's split."""

        async def scenario():
            server = _server(lambda uid: EnergyStubBackend(radio_s=1.5))
            server.start()
            first = server.submit(ServeRequest(device_id=0, key="k"))
            # Let the leader's fetch get airborne, then join it.
            await asyncio.sleep(0.5)
            second = server.submit(ServeRequest(device_id=1, key="k"))
            await server.drain()
            replies = [first.result(), second.result()]
            await server.close()
            return server, replies

        server, replies = run_simulated(scenario())
        _assert_batched_conservation(server, replies, 2)

    def test_sequential_flights_do_not_share(self):
        """A miss after the flight lands starts a fresh solo fetch with
        full isolated attribution."""

        async def scenario():
            server = _server(lambda uid: EnergyStubBackend(radio_s=0.5))
            server.start()
            first = server.submit(ServeRequest(device_id=0, key="k"))
            await server.drain()
            second = server.submit(ServeRequest(device_id=1, key="k"))
            await server.drain()
            replies = [first.result(), second.result()]
            await server.close()
            return server, replies

        server, replies = run_simulated(scenario())
        assert all(not r.shared_fetch for r in replies)
        for reply in replies:
            assert reply.energy == MISS_ENERGY
            assert reply.radio_timeline_j == pytest.approx(MISS_ENERGY.radio_j)
        ledger = server.telemetry.energy.ledger
        assert ledger.timeline_j == pytest.approx(2 * MISS_ENERGY.radio_j)
        assert ledger.conserved()

    def test_hits_attribute_without_radio(self):
        async def scenario():
            server = _server(lambda uid: EnergyStubBackend(cached={"q"}))
            server.start()
            future = server.submit(ServeRequest(device_id=1, key="q"))
            await server.drain()
            reply = future.result()
            await server.close()
            return server, reply

        server, reply = run_simulated(scenario())
        assert reply.energy == HIT_ENERGY
        assert reply.energy.radio_j == 0.0
        assert reply.radio_timeline_j == 0.0
        assert server.telemetry.energy.ledger.conserved()

    def test_rider_without_leader_energy_accounts_solo(self):
        """When the leader's backend carries no energy components, a
        rider keeps its isolated breakdown and reports its own timeline
        — pessimistic but self-consistent (the ledger still balances)."""

        async def scenario():
            server = _server(
                lambda uid: EnergyStubBackend(with_energy=(uid == 1))
            )
            server.start()
            leader = server.submit(ServeRequest(device_id=0, key="k"))
            await asyncio.sleep(0.1)
            rider = server.submit(ServeRequest(device_id=1, key="k"))
            await server.drain()
            replies = [leader.result(), rider.result()]
            await server.close()
            return server, replies

        server, (leader, rider) = run_simulated(scenario())
        assert not leader.shared_fetch and rider.shared_fetch
        assert leader.energy is None
        assert rider.energy == MISS_ENERGY
        assert rider.radio_timeline_j == pytest.approx(MISS_ENERGY.radio_j)
        assert server.telemetry.energy.ledger.conserved()


class TestBatchedAttributionWallClock:
    """The same invariant under a stock asyncio loop: attribution is a
    property of the serve path, not of the virtual clock."""

    def test_shared_flight_conserves_energy(self):
        async def scenario():
            server = _server(
                lambda uid: EnergyStubBackend(), time_scale=0.01
            )
            return await _burst(server, 3)

        server, replies = asyncio.run(scenario())
        _assert_batched_conservation(server, replies, 3)

    def test_throughput_mode_no_sleeps(self):
        """time_scale=0.0 collapses every sleep; the split still runs at
        flight completion with whatever riders actually joined."""

        async def scenario():
            server = _server(
                lambda uid: EnergyStubBackend(), time_scale=0.0
            )
            return await _burst(server, 4)

        server, replies = asyncio.run(scenario())
        responses = [r for r in replies if isinstance(r, ServeResponse)]
        assert len(responses) == 4
        attributed = sum(r.energy.radio_j for r in responses)
        ledger = server.telemetry.energy.ledger
        assert attributed == pytest.approx(ledger.timeline_j, abs=TOLERANCE)
        assert ledger.conserved()


class TestLoadtestEnergyReport:
    """End-to-end over the real engine: the loadtest report carries the
    energy plane and the run-level conservation verdict."""

    def test_report_energy_and_battery_fields(self, small_log):
        report, _ = run_loadtest(
            small_log,
            LoadGenConfig(duration_s=3600.0, rate_multiplier=20.0, seed=7),
            ServeConfig(queue_depth=64, max_inflight=4096),
            battery_capacity_j=500.0,
        )
        assert report.completed > 0
        assert report.energy_conserved is True
        assert report.attributed_radio_j == pytest.approx(
            report.timeline_radio_j,
            abs=max(TOLERANCE, 1e-12 * report.timeline_radio_j),
        )
        assert report.energy_j_total > 0
        assert report.energy_j_per_query > 0
        assert report.energy_j_p50 <= report.energy_j_p99
        # The online Figure 15b: a 3G miss costs far more than a hit.
        if report.misses and report.hits:
            assert report.hit_miss_energy_ratio > 5.0
        # Battery projections from the attributed joules.
        assert report.battery_capacity_j == 500.0
        assert 0.0 <= report.battery_min_level <= 1.0
        assert report.battery_day_fraction > 0
        assert report.queries_per_charge is not None
        metrics = report.to_metrics()
        assert metrics["energy_conserved"] == 1.0
        assert metrics["energy_j_per_query"] == report.energy_j_per_query

    def test_energy_attribution_is_deterministic(self, small_log):
        kwargs = dict(
            loadgen=LoadGenConfig(
                duration_s=600.0, rate_multiplier=100.0, seed=7, max_devices=4
            ),
            serve_config=ServeConfig(queue_depth=16, max_inflight=256),
        )
        a, _ = run_loadtest(small_log, **kwargs)
        b, _ = run_loadtest(small_log, **kwargs)
        assert a.energy_j_total == b.energy_j_total
        assert a.attributed_radio_j == b.attributed_radio_j
        assert a.timeline_radio_j == b.timeline_radio_j
