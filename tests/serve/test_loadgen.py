"""Tests for the open-loop load generator."""

import pytest

from repro.serve.loadgen import LoadGenConfig, build_workload


class TestPoissonWorkload:
    def test_deterministic_for_same_seed(self, small_log):
        cfg = LoadGenConfig(duration_s=3600.0, rate_multiplier=50.0, seed=7)
        a = build_workload(small_log, 1, cfg)
        b = build_workload(small_log, 1, cfg)
        assert [(t, r.device_id, r.key) for t, r in a.arrivals] == [
            (t, r.device_id, r.key) for t, r in b.arrivals
        ]

    def test_different_seed_differs(self, small_log):
        a = build_workload(
            small_log, 1, LoadGenConfig(duration_s=3600.0, rate_multiplier=50.0, seed=7)
        )
        b = build_workload(
            small_log, 1, LoadGenConfig(duration_s=3600.0, rate_multiplier=50.0, seed=8)
        )
        assert [t for t, _ in a.arrivals] != [t for t, _ in b.arrivals]

    def test_rate_multiplier_scales_volume(self, small_log):
        one = build_workload(
            small_log, 1,
            LoadGenConfig(duration_s=86400.0, rate_multiplier=1.0, seed=7),
        )
        ten = build_workload(
            small_log, 1,
            LoadGenConfig(duration_s=86400.0, rate_multiplier=10.0, seed=7),
        )
        assert ten.n_requests > 5 * max(one.n_requests, 1)

    def test_arrivals_sorted_and_in_range(self, small_log):
        wl = build_workload(
            small_log, 1,
            LoadGenConfig(duration_s=3600.0, rate_multiplier=100.0, seed=7),
        )
        offsets = [t for t, _ in wl.arrivals]
        assert offsets == sorted(offsets)
        assert all(0 <= t < 3600.0 for t in offsets)
        # Requests are re-stamped with their schedule arrival time.
        assert all(req.timestamp == t for t, req in wl.arrivals)

    def test_max_devices_caps_population(self, small_log):
        wl = build_workload(
            small_log, 1,
            LoadGenConfig(
                duration_s=3600.0, rate_multiplier=200.0, seed=7, max_devices=3
            ),
        )
        assert wl.n_devices <= 3
        assert wl.n_requests > 0

    def test_device_requests_follow_its_log_order(self, small_log):
        """Each device replays its own logged queries in log order."""
        wl = build_workload(
            small_log, 1,
            LoadGenConfig(
                duration_s=7200.0, rate_multiplier=500.0, seed=7, max_devices=1
            ),
        )
        (device_id,) = {r.device_id for _, r in wl.arrivals}
        month = small_log.month(1).for_user(device_id)
        logged = [
            month.query_string(int(month.query_keys[i]))
            for i in range(month.n_events)
        ]
        scheduled = [r.key for _, r in wl.arrivals]
        n = min(len(logged), len(scheduled))
        assert scheduled[:n] == logged[:n]


class TestLogWorkload:
    def test_trace_mode_compresses_time(self, small_log):
        natural = build_workload(
            small_log, 1,
            LoadGenConfig(
                duration_s=10 * 86400.0, rate_multiplier=1.0, arrivals="log"
            ),
        )
        squeezed = build_workload(
            small_log, 1,
            LoadGenConfig(
                duration_s=10 * 86400.0, rate_multiplier=10.0, arrivals="log"
            ),
        )
        # 10x compression fits ~10x the events into the same span.
        assert squeezed.n_requests >= natural.n_requests
        from repro.logs.schema import MONTH_SECONDS

        month = small_log.month(1)
        t0 = min(float(t) for t in month.timestamps)
        # First logged event lands at its in-month offset / multiplier.
        assert squeezed.arrivals[0][0] == pytest.approx(
            (t0 - MONTH_SECONDS) / 10.0
        )

    def test_trace_mode_preserves_per_device_order(self, small_log):
        wl = build_workload(
            small_log, 1,
            LoadGenConfig(duration_s=86400.0, rate_multiplier=5.0, arrivals="log"),
        )
        seen = {}
        for t, req in wl.arrivals:
            assert seen.get(req.device_id, -1.0) <= t
            seen[req.device_id] = t


class TestValidation:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            LoadGenConfig(duration_s=0)
        with pytest.raises(ValueError):
            LoadGenConfig(rate_multiplier=0)
        with pytest.raises(ValueError):
            LoadGenConfig(arrivals="burst")
        with pytest.raises(ValueError):
            LoadGenConfig(max_devices=0)

    def test_empty_month_rejected(self, small_log):
        with pytest.raises(ValueError, match="no events"):
            build_workload(small_log, 99, LoadGenConfig())
