"""Tests for the ``repro serve`` / ``repro loadtest`` CLI verbs."""

import json

from repro.cli import main as repro_main
from repro.serve.cli import loadtest_main, serve_main

LIGHT_LOADTEST = [
    "--duration", "600", "--rate", "5", "--seed", "7",
]

OVERLOAD = [
    "--duration", "600", "--rate", "3000", "--max-devices", "2",
    "--queue-depth", "4", "--max-inflight", "32", "--seed", "7",
]


class TestLoadtestVerb:
    def test_manifest_metrics(self, tmp_path, capsys):
        out = tmp_path / "loadtest.json"
        code = loadtest_main(LIGHT_LOADTEST + ["--manifest-out", str(out)])
        assert code == 0
        manifest = json.loads(out.read_text())
        for key in (
            "requests", "completed", "shed_rate", "throughput_rps",
            "sojourn_p50_s", "sojourn_p99_s", "batch_efficiency",
        ):
            assert key in manifest["metrics"], key
        assert manifest["config"]["rate_multiplier"] == 5.0
        assert manifest["seed"] == 7
        assert "throughput" in capsys.readouterr().out

    def test_shed_gate_fails_under_overload(self, tmp_path):
        out = tmp_path / "overload.json"
        code = loadtest_main(
            OVERLOAD + ["--max-shed-rate", "0.0001", "--manifest-out", str(out)]
        )
        assert code == 1
        # The manifest is still written so the failing run is inspectable.
        manifest = json.loads(out.read_text())
        assert manifest["metrics"]["shed"] > 0

    def test_shed_gate_passes_with_headroom(self):
        assert loadtest_main(OVERLOAD + ["--max-shed-rate", "0.999"]) == 0

    def test_dispatch_from_main_cli(self, capsys):
        assert repro_main(["loadtest"] + LIGHT_LOADTEST) == 0
        assert "loadtest" in capsys.readouterr().out


class TestServeVerb:
    def test_serve_with_equivalence_check(self, tmp_path, capsys):
        out = tmp_path / "serve.json"
        code = serve_main(
            ["--users", "1", "--check-equivalence", "--manifest-out", str(out)]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "equivalence check: serve matches offline replay" in captured
        manifest = json.loads(out.read_text())
        assert manifest["metrics"]["equivalence_ok"] is True
        assert manifest["metrics"]["shed"] == 0
        assert 0.0 < manifest["metrics"]["hit_rate"] <= 1.0

    def test_bad_users_rejected(self, capsys):
        assert serve_main(["--users", "0"]) == 2
