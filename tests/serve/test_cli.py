"""Tests for the ``repro serve`` / ``repro loadtest`` CLI verbs."""

import json

import pytest

from repro.cli import main as repro_main
from repro.serve.cli import loadtest_main, serve_main

@pytest.fixture(autouse=True)
def _run_in_tmp(tmp_path, monkeypatch):
    # The flight recorder is always on: any loadtest that trips a
    # trigger dumps a bundle into ./flight_bundles.  Keep those (and
    # any other relative-path artifacts) out of the repo tree.
    monkeypatch.chdir(tmp_path)


LIGHT_LOADTEST = [
    "--duration", "600", "--rate", "5", "--seed", "7",
]

OVERLOAD = [
    "--duration", "600", "--rate", "3000", "--max-devices", "2",
    "--queue-depth", "4", "--max-inflight", "32", "--seed", "7",
]


class TestLoadtestVerb:
    def test_manifest_metrics(self, tmp_path, capsys):
        out = tmp_path / "loadtest.json"
        code = loadtest_main(LIGHT_LOADTEST + ["--manifest-out", str(out)])
        assert code == 0
        manifest = json.loads(out.read_text())
        for key in (
            "requests", "completed", "shed_rate", "throughput_rps",
            "sojourn_p50_s", "sojourn_p99_s", "batch_efficiency",
        ):
            assert key in manifest["metrics"], key
        assert manifest["config"]["rate_multiplier"] == 5.0
        assert manifest["seed"] == 7
        assert "throughput" in capsys.readouterr().out

    def test_shed_gate_fails_under_overload(self, tmp_path):
        out = tmp_path / "overload.json"
        code = loadtest_main(
            OVERLOAD + ["--max-shed-rate", "0.0001", "--manifest-out", str(out)]
        )
        assert code == 1
        # The manifest is still written so the failing run is inspectable.
        manifest = json.loads(out.read_text())
        assert manifest["metrics"]["shed"] > 0

    def test_shed_gate_passes_with_headroom(self):
        assert loadtest_main(OVERLOAD + ["--max-shed-rate", "0.999"]) == 0

    def test_dispatch_from_main_cli(self, capsys):
        assert repro_main(["loadtest"] + LIGHT_LOADTEST) == 0
        assert "loadtest" in capsys.readouterr().out


class TestServeVerb:
    def test_serve_with_equivalence_check(self, tmp_path, capsys):
        out = tmp_path / "serve.json"
        code = serve_main(
            ["--users", "1", "--check-equivalence", "--manifest-out", str(out)]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "equivalence check: serve matches offline replay" in captured
        manifest = json.loads(out.read_text())
        assert manifest["metrics"]["equivalence_ok"] is True
        assert manifest["metrics"]["shed"] == 0
        assert 0.0 < manifest["metrics"]["hit_rate"] <= 1.0

    def test_bad_users_rejected(self, capsys):
        assert serve_main(["--users", "0"]) == 2


STRICT_POLICY = {
    "burn_threshold": 1.0,
    "long_window_s": 60.0,
    "short_window_s": 5.0,
    "rules": [
        {"name": "p99", "kind": "latency", "objective": 0.999,
         "threshold_s": 0.001},
    ],
}


class TestLoadtestTelemetryFlags:
    def test_slo_policy_verdict_in_manifest_and_output(
        self, tmp_path, capsys
    ):
        policy = tmp_path / "policy.json"
        policy.write_text(json.dumps(STRICT_POLICY))
        out = tmp_path / "loadtest.json"
        code = loadtest_main(
            LIGHT_LOADTEST
            + ["--slo-policy", str(policy), "--manifest-out", str(out)]
        )
        assert code == 0  # without --fail-on-alert the verdict is advisory
        captured = capsys.readouterr().out
        assert "SLO verdict: FAIL" in captured
        manifest = json.loads(out.read_text())
        assert manifest["metrics"]["slo"]["verdict"] == "fail"
        assert manifest["metrics"]["slo"]["alerts_total"] >= 1
        assert manifest["metrics"]["slo_passed"] == 0.0

    def test_fail_on_alert_gates_exit_code(self, tmp_path):
        policy = tmp_path / "policy.json"
        policy.write_text(json.dumps(STRICT_POLICY))
        code = loadtest_main(
            LIGHT_LOADTEST + ["--slo-policy", str(policy), "--fail-on-alert"]
        )
        assert code == 1

    def test_bad_policy_file_exits_2(self, tmp_path):
        policy = tmp_path / "broken.json"
        policy.write_text("{not json")
        code = loadtest_main(LIGHT_LOADTEST + ["--slo-policy", str(policy)])
        assert code == 2

    def test_snapshot_out_renders_with_repro_top(self, tmp_path, capsys):
        snap = tmp_path / "snap.json"
        code = loadtest_main(LIGHT_LOADTEST + ["--snapshot-out", str(snap)])
        assert code == 0
        doc = json.loads(snap.read_text())
        assert "rolling" in doc["serve"]
        assert repro_main(["top", "--snapshot", str(snap)]) == 0
        assert "repro top" in capsys.readouterr().out

    def test_every_response_breakdown_in_manifest_path(self, tmp_path):
        # The trace plane is always on: even a bare loadtest records
        # segment p99s in its manifest.
        out = tmp_path / "loadtest.json"
        assert loadtest_main(
            LIGHT_LOADTEST + ["--manifest-out", str(out)]
        ) == 0
        manifest = json.loads(out.read_text())
        for key in ("queue_wait_p99_s", "batch_wait_p99_s", "service_p99_s"):
            assert key in manifest["metrics"], key

    def test_traced_runs_record_spans_dropped_in_manifest(self, tmp_path):
        trace_out = tmp_path / "trace.jsonl"
        manifest_out = tmp_path / "m.json"
        code = repro_main(
            ["trace", "table2", "--trace-out", str(trace_out),
             "--manifest-out", str(manifest_out)]
        )
        assert code == 0
        manifest = json.loads(manifest_out.read_text())
        assert manifest["metrics"]["spans_dropped"] == 0


class TestBenchGateVerb:
    def test_dispatch_from_main_cli(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        base.write_text(
            json.dumps({"name": "lt", "metrics": {"sojourn_p99_s": 1.0}})
        )
        cand = tmp_path / "cand.json"
        cand.write_text(
            json.dumps({"name": "lt", "metrics": {"sojourn_p99_s": 5.0}})
        )
        code = repro_main(
            ["bench-gate", "--baseline", str(base), "--candidate", str(cand)]
        )
        assert code == 1
        assert "REGRESSED" in capsys.readouterr().out


class TestLoadtestBurstAndSamplingFlags:
    def test_bad_burst_spec_exits_2(self, capsys):
        for spec in ("60:10", "a:b:c", "60:-5:2", "60:10:0"):
            assert loadtest_main(LIGHT_LOADTEST + ["--burst", spec]) == 2, spec
        assert "--burst" in capsys.readouterr().err

    def test_burst_run_records_spec_in_manifest(self, tmp_path):
        out = tmp_path / "burst.json"
        code = loadtest_main(
            LIGHT_LOADTEST
            + ["--burst", "60:10:20", "--manifest-out", str(out),
               "--flight-bundle-dir", str(tmp_path / "fb")]
        )
        assert code == 0
        manifest = json.loads(out.read_text())
        assert manifest["config"]["burst"] == "60:10:20"

    def test_bad_trace_sample_rate_exits_2(self, capsys):
        for rate in ("0", "1.5", "-0.2"):
            assert loadtest_main(
                LIGHT_LOADTEST + ["--trace-sample-rate", rate]
            ) == 2, rate
        assert "--trace-sample-rate" in capsys.readouterr().err

    def test_sampled_trace_meta_accounts_for_dropped_spans(self, tmp_path):
        trace_out = tmp_path / "trace.jsonl"
        code = loadtest_main(
            LIGHT_LOADTEST
            + ["--trace-out", str(trace_out), "--trace-sample-rate", "0.25",
               "--flight-bundle-dir", str(tmp_path / "fb")]
        )
        assert code == 0
        with open(trace_out) as fh:
            meta = json.loads(fh.readline())
        assert meta["kind"] == "meta"
        assert meta["sample_rate"] == 0.25
        assert meta["sampled_out"] > 0
        assert meta["spans_dropped"] >= meta["sampled_out"]
        # ~3/4 of the spans were thinned out relative to what was kept.
        assert meta["sampled_out"] == pytest.approx(
            3 * (meta["n_records"] + meta["spans_dropped"]
                 - meta["sampled_out"]), rel=0.01
        )


class TestLoadtestFlightFlags:
    def test_no_flight_omits_bundle_metric(self, tmp_path):
        out = tmp_path / "m.json"
        code = loadtest_main(
            LIGHT_LOADTEST + ["--no-flight", "--manifest-out", str(out)]
        )
        assert code == 0
        manifest = json.loads(out.read_text())
        assert "flight_bundles" not in manifest["metrics"]

    def test_flight_dump_forces_a_bundle(self, tmp_path, capsys):
        bundles = tmp_path / "bundles"
        out = tmp_path / "m.json"
        code = loadtest_main(
            LIGHT_LOADTEST
            + ["--flight-dump", "--flight-bundle-dir", str(bundles),
               "--manifest-out", str(out)]
        )
        assert code == 0
        manifest = json.loads(out.read_text())
        assert manifest["metrics"]["flight_bundles"] == 1
        (bundle,) = list(bundles.iterdir())
        assert (bundle / "events.jsonl").exists()
        assert (bundle / "manifest.json").exists()
        assert "wrote flight bundle" in capsys.readouterr().out

    def test_quiet_run_dumps_nothing(self, tmp_path):
        bundles = tmp_path / "bundles"
        out = tmp_path / "m.json"
        code = loadtest_main(
            LIGHT_LOADTEST
            + ["--flight-bundle-dir", str(bundles), "--manifest-out", str(out)]
        )
        assert code == 0
        manifest = json.loads(out.read_text())
        assert manifest["metrics"]["flight_bundles"] == 0
        assert not bundles.exists()
