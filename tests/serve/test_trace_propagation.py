"""Trace propagation through the serving stack under the virtual clock.

The acceptance bar: every reply carries a trace id, segment breakdowns
sum to end-to-end latency within 1e-9 (they are exact by construction —
segments telescope between marks), and segment timelines are identical
run-to-run under :class:`~repro.serve.vclock.VirtualTimeLoop`.
"""

import asyncio

from repro.obs.registry import MetricsRegistry
from repro.serve.backends import BackendResult
from repro.serve.requests import (
    Overloaded,
    SEGMENT_NAMES,
    ServeRequest,
    ServeResponse,
)
from repro.serve.server import CloudletServer, ServeConfig
from repro.serve.vclock import run_simulated
from repro.sim.metrics import QueryOutcome, ServiceSource


class StubBackend:
    """Hits on keys in ``cached``; misses pay radio + local time."""

    def __init__(
        self,
        cached=frozenset(),
        hit_latency_s=0.1,
        miss_latency_s=2.0,
        radio_s=1.5,
        annotations=None,
    ):
        self.cached = set(cached)
        self.hit_latency_s = hit_latency_s
        self.miss_latency_s = miss_latency_s
        self.radio_s = radio_s
        self.annotations = dict(annotations or {})

    def serve(self, request: ServeRequest) -> BackendResult:
        hit = request.key in self.cached
        outcome = QueryOutcome(
            query=request.key,
            hit=hit,
            source=ServiceSource.CACHE if hit else ServiceSource.RADIO_3G,
            latency_s=self.hit_latency_s if hit else self.miss_latency_s,
            energy_j=0.0,
            timestamp=request.timestamp,
        )
        return BackendResult(
            outcome=outcome,
            radio_s=0.0 if hit else self.radio_s,
            annotations=dict(self.annotations),
        )


def _request(device_id=1, key="q", timestamp=0.0):
    return ServeRequest(device_id=device_id, key=key, timestamp=timestamp)


async def _mixed_scenario():
    """Hits, leader/rider misses, and queue pressure on two devices."""
    server = CloudletServer(
        lambda uid: StubBackend(cached={"hit"}),
        ServeConfig(queue_depth=64),
        registry=MetricsRegistry(),
    )
    futures = [server.submit(_request(device_id=1, key="hit"))]
    futures.append(server.submit(_request(device_id=1, key="miss-a")))
    futures.append(server.submit(_request(device_id=2, key="miss-a")))
    futures.append(server.submit(_request(device_id=2, key="hit")))
    await asyncio.sleep(0.05)
    futures.append(server.submit(_request(device_id=1, key="miss-b")))
    await server.drain()
    replies = [f.result() for f in futures]
    await server.close()
    return replies


class TestTraceIds:
    def test_every_reply_has_a_unique_trace_id(self):
        replies = run_simulated(_mixed_scenario())
        ids = [r.trace_id for r in replies]
        assert all(isinstance(i, int) and i > 0 for i in ids)
        assert len(set(ids)) == len(ids)

    def test_trace_ids_are_submission_ordered(self):
        replies = run_simulated(_mixed_scenario())
        assert [r.trace_id for r in replies] == [1, 2, 3, 4, 5]

    def test_sheds_carry_traces_too(self):
        async def scenario():
            server = CloudletServer(
                lambda uid: StubBackend(cached={"q"}),
                ServeConfig(queue_depth=1),
                registry=MetricsRegistry(),
            )
            futures = [
                server.submit(_request(key=f"q{i}")) for i in range(4)
            ]
            await server.drain()
            replies = [f.result() for f in futures]
            await server.close()
            return replies

        replies = run_simulated(scenario())
        sheds = [r for r in replies if isinstance(r, Overloaded)]
        assert sheds
        for shed in sheds:
            assert shed.trace_id is not None
            assert shed.trace.annotations["shed_reason"] == shed.reason
            # A shed trace is closed at admission: zero-length lifetime.
            assert shed.trace.end_to_end_s() == 0.0


class TestSegmentBreakdown:
    def test_breakdown_sums_to_sojourn_exactly(self):
        replies = run_simulated(_mixed_scenario())
        responses = [r for r in replies if isinstance(r, ServeResponse)]
        assert responses
        for response in responses:
            breakdown = response.breakdown()
            assert set(breakdown) == set(SEGMENT_NAMES)
            assert abs(sum(breakdown.values()) - response.sojourn_s) <= 1e-9

    def test_segments_match_legacy_timestamps(self):
        replies = run_simulated(_mixed_scenario())
        for response in replies:
            if not isinstance(response, ServeResponse):
                continue
            breakdown = response.breakdown()
            assert breakdown["queue_wait"] == (
                response.started_at - response.enqueued_at
            )
            assert response.trace.t_origin == response.enqueued_at
            assert response.trace.t_last == response.completed_at

    def test_miss_pays_batch_wait_hit_does_not(self):
        replies = run_simulated(_mixed_scenario())
        by_key = {}
        for r in replies:
            if isinstance(r, ServeResponse):
                by_key.setdefault(r.request.key, []).append(r)
        for hit in by_key["hit"]:
            assert hit.batch_wait_s == 0.0
        for miss in by_key["miss-a"]:
            assert miss.batch_wait_s > 0.0

    def test_backend_annotations_land_in_trace(self):
        async def scenario():
            server = CloudletServer(
                lambda uid: StubBackend(annotations={"refreshes_applied": 2}),
                registry=MetricsRegistry(),
            )
            future = server.submit(_request(key="miss"))
            await server.drain()
            reply = future.result()
            await server.close()
            return reply

        reply = run_simulated(scenario())
        assert reply.trace.annotations["refreshes_applied"] == 2


class TestBatcherCausality:
    def test_rider_links_to_leader_and_leader_counts_riders(self):
        replies = run_simulated(_mixed_scenario())
        misses = [
            r for r in replies
            if isinstance(r, ServeResponse) and r.request.key == "miss-a"
        ]
        assert len(misses) == 2
        leaders = [m for m in misses if not m.shared_fetch]
        riders = [m for m in misses if m.shared_fetch]
        assert len(leaders) == 1 and len(riders) == 1
        leader, rider = leaders[0], riders[0]
        assert leader.trace.annotations["batch_role"] == "leader"
        assert leader.trace.annotations["batch_riders"] == 1
        assert rider.trace.annotations["batch_role"] == "rider"
        assert (
            rider.trace.annotations["batch_leader_trace"]
            == leader.trace_id
        )


class TestDeterminism:
    def test_segment_timelines_identical_run_to_run(self):
        def timelines():
            replies = run_simulated(_mixed_scenario())
            return [
                (
                    reply.trace_id,
                    tuple(reply.trace.marks),
                    tuple(sorted(reply.trace.annotations.items())),
                )
                for reply in replies
            ]

        first, second = timelines(), timelines()
        assert first == second
