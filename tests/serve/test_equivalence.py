"""Differential tests: the online serve path vs the offline replay.

The serving layer's core guarantee: a deterministic simulated-time
serve over a log produces *identical* hit/miss/latency accounting to
``run_replay`` — queueing, sleeps, and cross-device interleaving shape
serve-layer metrics only, never the model's numbers.  These tests hold
the tentpole to that bar (per-user exact counts, totals within 1e-9,
bit-identical bounded-mode reservoirs), and pin graceful degradation
under deliberate overload.
"""

import json
import os

import pytest

from repro.serve import LoadGenConfig, ServeConfig, run_loadtest, serve_replay
from repro.sim.replay import CacheMode, ReplayConfig, run_replay

TOLERANCE = 1e-9


def _assert_equivalent(offline, served):
    assert len(offline.users) == len(served.users)
    for a, b in zip(offline.users, served.users):
        assert a.user_id == b.user_id
        assert a.user_class == b.user_class
        assert a.metrics.count == b.metrics.count
        assert a.metrics.hits == b.metrics.hits
        assert a.metrics.total_latency_s == pytest.approx(
            b.metrics.total_latency_s, abs=TOLERANCE
        )
        assert a.metrics.total_energy_j == pytest.approx(
            b.metrics.total_energy_j, abs=TOLERANCE
        )
    assert offline.overall_hit_rate() == pytest.approx(
        served.overall_hit_rate(), abs=TOLERANCE
    )


class TestServeReplayEquivalence:
    CONFIG = ReplayConfig(users_per_class=2, seed=97)

    @pytest.mark.parametrize("mode", CacheMode.ALL)
    def test_mode_accounting_matches_offline(self, small_log, mode):
        offline = run_replay(small_log, self.CONFIG, modes=(mode,))[mode]
        results, reports = serve_replay(small_log, self.CONFIG, modes=(mode,))
        assert reports[mode].shed == 0, "equivalence run must not shed"
        _assert_equivalent(offline, results[mode])

    def test_percentiles_match_exactly(self, small_log):
        """Exact collectors hold identical outcome sequences, so even
        order-sensitive statistics agree."""
        mode = CacheMode.FULL
        offline = run_replay(small_log, self.CONFIG, modes=(mode,))[mode]
        served = serve_replay(small_log, self.CONFIG, modes=(mode,))[0][mode]
        for a, b in zip(offline.users, served.users):
            for q in (50, 90, 99):
                pa, pb = (
                    a.metrics.latency_percentile(q),
                    b.metrics.latency_percentile(q),
                )
                assert pa == pb or (pa != pa and pb != pb)  # nan == nan

    def test_daily_updates_equivalence(self, small_log):
        """The event-synced refresh backend reproduces the offline
        nightly-update ordering even with queueing in play."""
        config = ReplayConfig(users_per_class=2, seed=97, daily_updates=True)
        mode = CacheMode.FULL
        offline = run_replay(small_log, config, modes=(mode,))[mode]
        results, reports = serve_replay(small_log, config, modes=(mode,))
        assert reports[mode].shed == 0
        _assert_equivalent(offline, results[mode])

    def test_bounded_metrics_reservoirs_bit_identical(self, small_log):
        """Bounded-mode collectors fold outcomes in the same order with
        the same per-user seeds, so reservoir percentile estimates are
        bit-identical, not just close."""
        config = ReplayConfig(users_per_class=2, seed=97, bounded_metrics=True)
        mode = CacheMode.FULL
        offline = run_replay(small_log, config, modes=(mode,))[mode]
        served = serve_replay(small_log, config, modes=(mode,))[0][mode]
        for a, b in zip(offline.users, served.users):
            assert a.metrics.count == b.metrics.count
            assert a.metrics.hits == b.metrics.hits
            for q in (50, 95, 99):
                assert a.metrics.latency_percentile(
                    q
                ) == b.metrics.latency_percentile(q)

    def test_serve_report_consistency(self, small_log):
        results, reports = serve_replay(
            small_log, self.CONFIG, modes=(CacheMode.FULL,)
        )
        report = reports[CacheMode.FULL]
        total = sum(u.metrics.count for u in results[CacheMode.FULL].users)
        assert report.requests == report.completed == total
        assert report.hits + report.misses == report.completed
        # Every miss goes through the batcher exactly once.
        assert report.fetches + report.piggybacked == report.misses
        assert report.sojourn_p50_s > 0
        assert report.to_metrics()["throughput_rps"] == pytest.approx(
            report.throughput_rps
        )


class TestGoldenServe:
    """The serve path against the checked-in golden replay fixture."""

    FIXTURE = os.path.join(
        os.path.dirname(__file__), "..", "fixtures", "golden_replay.json"
    )

    def test_serve_matches_golden_fixture(self):
        from tests.differential.test_golden_regression import (
            GOLDEN_CONFIG,
            TOLERANCE as GOLDEN_TOLERANCE,
        )
        from repro.logs.generator import GeneratorConfig, generate_logs
        from repro.logs.popularity import CommunityModel
        from repro.logs.users import PopulationConfig, UserPopulation
        from repro.logs.vocabulary import Vocabulary, VocabularyConfig

        log = generate_logs(
            community=CommunityModel(
                Vocabulary.build(VocabularyConfig(**GOLDEN_CONFIG["vocabulary"]))
            ),
            population=UserPopulation.build(
                PopulationConfig(**GOLDEN_CONFIG["population"])
            ),
            config=GeneratorConfig(**GOLDEN_CONFIG["generator"]),
        )
        results, reports = serve_replay(
            log,
            ReplayConfig(
                users_per_class=GOLDEN_CONFIG["users_per_class"],
                seed=GOLDEN_CONFIG["replay_seed"],
            ),
            modes=(CacheMode.FULL,),
        )
        result = results[CacheMode.FULL]
        with open(self.FIXTURE) as fh:
            golden = json.load(fh)
        assert reports[CacheMode.FULL].shed == 0
        assert len(result.users) == golden["n_users"]
        assert (
            sum(u.metrics.count for u in result.users)
            == golden["total_queries"]
        )
        assert sum(u.metrics.hits for u in result.users) == golden["total_hits"]
        assert result.overall_hit_rate() == pytest.approx(
            golden["overall_hit_rate"], abs=GOLDEN_TOLERANCE
        )


class TestOverloadDegradation:
    def test_overload_sheds_typed_and_bounds_latency(self, small_log):
        """Deliberate ~10x per-device overload: the server sheds with
        typed responses, never loses a request, and the sojourn of
        *admitted* requests stays bounded by the queue depth."""
        queue_depth = 4
        report, workload = run_loadtest(
            small_log,
            LoadGenConfig(
                duration_s=600.0,
                rate_multiplier=3000.0,
                seed=7,
                max_devices=2,
            ),
            ServeConfig(queue_depth=queue_depth, max_inflight=64),
        )
        assert workload.n_requests > 100
        # Conservation: every request either completed or was shed, typed.
        assert report.completed + report.shed == report.requests
        assert report.shed > 0
        assert set(report.shed_reasons) <= {"device-queue-full", "server-busy"}
        assert sum(report.shed_reasons.values()) == report.shed
        # Graceful degradation: admitted requests never wait behind more
        # than queue_depth predecessors, so worst-case sojourn is bounded
        # by (queue_depth + 1) * worst single-request service time.
        worst_service_s = 10.0  # miss: radio + render, generously rounded
        assert report.sojourn_max_s <= (queue_depth + 1) * worst_service_s
        assert report.sojourn_p99_s <= report.sojourn_max_s
        assert 0.0 < report.shed_rate < 1.0

    def test_light_load_sheds_nothing(self, small_log):
        report, workload = run_loadtest(
            small_log,
            LoadGenConfig(duration_s=3600.0, rate_multiplier=2.0, seed=7),
            ServeConfig(queue_depth=32, max_inflight=4096),
        )
        assert report.shed == 0
        assert report.completed == workload.n_requests

    def test_loadtest_deterministic(self, small_log):
        kwargs = dict(
            loadgen=LoadGenConfig(
                duration_s=600.0, rate_multiplier=1000.0, seed=7, max_devices=3
            ),
            serve_config=ServeConfig(queue_depth=4, max_inflight=32),
        )
        a, _ = run_loadtest(small_log, **kwargs)
        b, _ = run_loadtest(small_log, **kwargs)
        assert a.to_metrics() == b.to_metrics()

    def test_refresh_under_load(self, small_log):
        """The background refresher runs concurrently with live load
        without stalling it or losing requests."""
        report, workload = run_loadtest(
            small_log,
            LoadGenConfig(
                duration_s=600.0, rate_multiplier=200.0, seed=7, max_devices=4
            ),
            ServeConfig(queue_depth=16, max_inflight=256),
            refresh_interval_s=60.0,
        )
        assert report.completed + report.shed == report.requests
        assert report.completed > 0
