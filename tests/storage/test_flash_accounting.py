"""Deeper accounting tests for flash and the filesystem."""

import pytest

from repro.storage.filesystem import FlashFilesystem
from repro.storage.flash import FlashGeometry, NandFlash

PAGE = 4096


class TestAppendProgramAccounting:
    def test_page_aligned_append_programs_only_new_pages(self):
        flash = NandFlash(FlashGeometry(page_bytes=PAGE))
        fs = FlashFilesystem(flash)
        fs.create("f", PAGE)  # exactly one full page
        before = flash.stats.page_programs
        fs.append("f", PAGE)  # no partial tail to rewrite
        assert flash.stats.page_programs - before == 1

    def test_partial_tail_rewritten_on_append(self):
        flash = NandFlash(FlashGeometry(page_bytes=PAGE))
        fs = FlashFilesystem(flash)
        fs.create("f", 100)  # partial page
        before = flash.stats.page_programs
        fs.append("f", 50)  # stays in the same page: 1 rewrite
        assert flash.stats.page_programs - before == 1

    def test_append_spanning_boundary(self):
        flash = NandFlash(FlashGeometry(page_bytes=PAGE))
        fs = FlashFilesystem(flash)
        fs.create("f", PAGE - 10)
        before = flash.stats.page_programs
        fs.append("f", 100)  # rewrites tail + programs one new page
        assert flash.stats.page_programs - before == 2

    def test_zero_append_is_free_of_programs(self):
        flash = NandFlash(FlashGeometry(page_bytes=PAGE))
        fs = FlashFilesystem(flash)
        fs.create("f", PAGE)
        before = flash.stats.page_programs
        fs.append("f", 0)
        assert flash.stats.page_programs == before


class TestEraseAccounting:
    def test_erase_counts_and_costs(self):
        flash = NandFlash()
        result = flash.erase_blocks(3)
        assert flash.stats.block_erases == 3
        assert result.latency_s == pytest.approx(3 * flash.erase_block_s)
        assert result.energy_j == pytest.approx(3 * flash.erase_block_energy_j)


class TestEnergyOrdering:
    def test_program_costs_more_energy_than_read(self):
        flash = NandFlash()
        read = flash.read_pages(4)
        program = flash.program_pages(4)
        assert program.energy_j > read.energy_j
