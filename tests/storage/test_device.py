"""Tests for the MemoryDevice latency/energy model."""

import pytest

from repro.storage.device import MemoryDevice


def make_device(**overrides):
    params = dict(
        name="test",
        capacity_bytes=1024,
        read_latency_s=1e-6,
        write_latency_s=2e-6,
        read_bandwidth_bps=1e6,
        write_bandwidth_bps=5e5,
        access_energy_j=1e-9,
        energy_per_byte_j=1e-12,
    )
    params.update(overrides)
    return MemoryDevice(**params)


class TestConstruction:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            make_device(capacity_bytes=0)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            make_device(read_bandwidth_bps=0)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            make_device(read_latency_s=-1)


class TestAccessModel:
    def test_read_latency_formula(self):
        device = make_device()
        result = device.read(1000)
        assert result.latency_s == pytest.approx(1e-6 + 1000 / 1e6)

    def test_write_latency_formula(self):
        device = make_device()
        result = device.write(1000)
        assert result.latency_s == pytest.approx(2e-6 + 1000 / 5e5)

    def test_energy_formula(self):
        device = make_device()
        result = device.read(500)
        assert result.energy_j == pytest.approx(1e-9 + 500e-12)

    def test_zero_byte_access_costs_fixed_latency(self):
        device = make_device()
        assert device.read(0).latency_s == pytest.approx(1e-6)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            make_device().read(-1)

    def test_larger_reads_take_longer(self):
        device = make_device()
        assert device.read(10_000).latency_s > device.read(10).latency_s


class TestStats:
    def test_counters_accumulate(self):
        device = make_device()
        device.read(100)
        device.read(200)
        device.write(50)
        assert device.total_reads == 2
        assert device.total_writes == 1
        assert device.total_bytes_read == 300
        assert device.total_bytes_written == 50
        assert device.total_time_s > 0
        assert device.total_energy_j > 0

    def test_reset(self):
        device = make_device()
        device.read(100)
        device.reset_stats()
        assert device.total_reads == 0
        assert device.total_time_s == 0.0
