"""Property-based tests (hypothesis) on the storage substrate."""

from hypothesis import given, settings, strategies as st

from repro.storage.filesystem import FlashFilesystem
from repro.storage.flash import FlashGeometry, NandFlash

PAGE = 4096


def fresh_fs():
    return FlashFilesystem(
        NandFlash(FlashGeometry(page_bytes=PAGE, pages_per_block=8, total_blocks=64))
    )


@given(sizes=st.lists(st.integers(min_value=0, max_value=3 * PAGE), max_size=20))
@settings(max_examples=50, deadline=None)
def test_fragmentation_never_negative(sizes):
    """Allocated bytes always cover logical bytes."""
    fs = fresh_fs()
    for i, size in enumerate(sizes):
        fs.create(f"f{i}", size)
    assert fs.fragmentation_bytes >= 0
    assert fs.bytes_used == fs.logical_bytes + fs.fragmentation_bytes


@given(
    initial=st.integers(min_value=0, max_value=2 * PAGE),
    appends=st.lists(st.integers(min_value=0, max_value=PAGE), max_size=10),
)
@settings(max_examples=50, deadline=None)
def test_append_accumulates_sizes(initial, appends):
    fs = fresh_fs()
    fs.create("f", initial)
    for n in appends:
        fs.append("f", n)
    assert fs.file_size("f") == initial + sum(appends)
    # Allocation is exactly the page-rounded logical size.
    expected_pages = -(-fs.file_size("f") // PAGE) if fs.file_size("f") else 0
    assert fs.stat("f").pages_allocated == expected_pages


@given(
    size=st.integers(min_value=1, max_value=8 * PAGE),
    offset=st.integers(min_value=0, max_value=8 * PAGE - 1),
    length=st.integers(min_value=0, max_value=8 * PAGE),
)
@settings(max_examples=80, deadline=None)
def test_read_latency_monotone_in_span(size, offset, length):
    """Any valid read costs at least the open overhead, and reading more
    bytes from the same offset never gets cheaper."""
    fs = fresh_fs()
    fs.create("f", size)
    if offset + length > size:
        return  # out of bounds; covered by unit tests
    cost = fs.read("f", offset, length)
    assert cost.latency_s >= fs.open_overhead_s
    if length >= 1:
        shorter = fs.read("f", offset, max(length // 2, 0))
        assert cost.latency_s >= shorter.latency_s


@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["create", "delete"]), st.integers(0, 9)),
        max_size=30,
    )
)
@settings(max_examples=50, deadline=None)
def test_create_delete_conserves_pages(ops):
    """pages_used always equals the sum of live files' allocations."""
    fs = fresh_fs()
    live = {}
    for op, idx in ops:
        name = f"f{idx}"
        if op == "create" and name not in live:
            fs.create(name, (idx + 1) * 1000)
            live[name] = True
        elif op == "delete" and name in live:
            fs.delete(name)
            del live[name]
    expected = sum(fs.stat(n).pages_allocated for n in live)
    assert fs.pages_used == expected
