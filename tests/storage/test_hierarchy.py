"""Tests for the DRAM/PCM/NAND hierarchy."""

import pytest

from repro.storage.dram import Dram
from repro.storage.flash import NandFlash
from repro.storage.hierarchy import MemoryHierarchy, TierName
from repro.storage.pcm import Pcm

MB = 1024**2


class TestTiers:
    def test_default_two_tier(self):
        h = MemoryHierarchy()
        assert not h.has_pcm
        assert h.index_tier.name is TierName.DRAM
        assert h.data_tier.name is TierName.FLASH

    def test_three_tier_with_pcm(self):
        h = MemoryHierarchy(pcm=Pcm())
        assert h.has_pcm
        assert h.index_tier.name is TierName.PCM

    def test_missing_tier_raises(self):
        h = MemoryHierarchy()
        with pytest.raises(KeyError):
            h.tier(TierName.PCM)

    def test_latency_ordering(self):
        """DRAM < PCM < NAND for small reads — the premise of Figure 3."""
        dram, pcm, flash = Dram(), Pcm(), NandFlash()
        n = 64
        assert (
            dram.read(n).latency_s
            < pcm.read(n).latency_s
            < flash.read_pages(1).latency_s
        )

    def test_pcm_nonvolatile_dram_not(self):
        assert Dram().volatile
        assert not Pcm().volatile
        assert not NandFlash().volatile


class TestAllocation:
    def test_allocate_and_release(self):
        h = MemoryHierarchy()
        tier = h.tier(TierName.DRAM)
        free = tier.free_bytes
        tier.allocate(10 * MB)
        assert tier.free_bytes == free - 10 * MB
        tier.release(10 * MB)
        assert tier.free_bytes == free

    def test_over_allocate(self):
        h = MemoryHierarchy()
        tier = h.tier(TierName.DRAM)
        with pytest.raises(MemoryError):
            tier.allocate(tier.device.capacity_bytes + 1)

    def test_over_release(self):
        h = MemoryHierarchy()
        with pytest.raises(ValueError):
            h.tier(TierName.DRAM).release(1)

    def test_negative_allocate(self):
        h = MemoryHierarchy()
        with pytest.raises(ValueError):
            h.tier(TierName.DRAM).allocate(-1)


class TestBootIndexLoad:
    def test_pcm_makes_boot_instant(self):
        """Section 3.3: with PCM, indexes are available at boot without
        streaming gigabytes from flash."""
        index_bytes = 512 * MB
        without = MemoryHierarchy().boot_index_load(index_bytes)
        with_pcm = MemoryHierarchy(pcm=Pcm()).boot_index_load(index_bytes)
        assert with_pcm.latency_s < without.latency_s / 1000

    def test_boot_load_scales_with_index(self):
        h = MemoryHierarchy()
        small = h.boot_index_load(1 * MB)
        big = h.boot_index_load(100 * MB)
        assert big.latency_s > small.latency_s

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            MemoryHierarchy().boot_index_load(-1)
