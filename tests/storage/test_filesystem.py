"""Tests for the flash filesystem layer."""

import pytest

from repro.storage.filesystem import FilesystemError, FlashFilesystem
from repro.storage.flash import FlashGeometry, NandFlash

PAGE = 4096


@pytest.fixture
def fs():
    flash = NandFlash(FlashGeometry(page_bytes=PAGE, pages_per_block=8, total_blocks=16))
    return FlashFilesystem(flash)


class TestNamespace:
    def test_create_and_exists(self, fs):
        fs.create("a.txt", 100)
        assert fs.exists("a.txt")
        assert not fs.exists("b.txt")

    def test_duplicate_create_rejected(self, fs):
        fs.create("a", 0)
        with pytest.raises(FilesystemError):
            fs.create("a", 0)

    def test_list_files_sorted(self, fs):
        fs.create("b")
        fs.create("a")
        assert fs.list_files() == ["a", "b"]

    def test_missing_file_errors(self, fs):
        with pytest.raises(FilesystemError):
            fs.read("nope")
        with pytest.raises(FilesystemError):
            fs.delete("nope")

    def test_stat(self, fs):
        fs.create("a", 100)
        st = fs.stat("a")
        assert st.size_bytes == 100
        assert st.pages_allocated == 1
        assert st.allocated_bytes == PAGE


class TestAllocation:
    def test_page_rounding(self, fs):
        fs.create("tiny", 1)
        assert fs.file_allocated_bytes("tiny") == PAGE
        assert fs.fragmentation_bytes == PAGE - 1

    def test_append_grows_pages(self, fs):
        fs.create("f", 100)
        fs.append("f", PAGE)
        assert fs.file_size("f") == 100 + PAGE
        assert fs.stat("f").pages_allocated == 2

    def test_delete_releases_pages(self, fs):
        fs.create("f", 3 * PAGE)
        used = fs.pages_used
        fs.delete("f")
        assert fs.pages_used == used - 3

    def test_device_full(self, fs):
        total = fs.flash.geometry.total_pages * PAGE
        fs.create("big", total)
        with pytest.raises(FilesystemError):
            fs.create("more", 1)

    def test_truncate(self, fs):
        fs.create("f", 3 * PAGE)
        fs.truncate("f", 10)
        assert fs.file_size("f") == 10
        assert fs.stat("f").pages_allocated == 1

    def test_truncate_cannot_grow(self, fs):
        fs.create("f", 10)
        with pytest.raises(FilesystemError):
            fs.truncate("f", 100)


class TestReadCosts:
    def test_read_includes_open_overhead(self, fs):
        fs.create("f", 100)
        cost = fs.read("f", 0, 100)
        assert cost.latency_s >= fs.open_overhead_s

    def test_read_touches_covering_pages_only(self, fs):
        fs.create("f", 10 * PAGE)
        small = fs.read("f", 0, 10)
        spanning = fs.read("f", PAGE - 5, 10)  # crosses a page boundary
        big = fs.read("f", 0, 5 * PAGE)
        assert small.latency_s < big.latency_s
        assert spanning.latency_s > small.latency_s

    def test_read_out_of_bounds(self, fs):
        fs.create("f", 100)
        with pytest.raises(FilesystemError):
            fs.read("f", 50, 100)

    def test_read_to_end_default(self, fs):
        fs.create("f", 100)
        cost = fs.read("f", 40)
        assert cost.bytes_moved >= 0  # cost modelled, no error

    def test_zero_length_read(self, fs):
        fs.create("f", 100)
        cost = fs.read("f", 0, 0)
        assert cost.latency_s == pytest.approx(fs.open_overhead_s)


class TestAccounting:
    def test_logical_vs_allocated(self, fs):
        fs.create("a", 100)
        fs.create("b", PAGE + 1)
        assert fs.logical_bytes == 100 + PAGE + 1
        assert fs.bytes_used == 3 * PAGE
        assert fs.fragmentation_bytes == 3 * PAGE - (100 + PAGE + 1)

    def test_free_bytes(self, fs):
        before = fs.free_bytes
        fs.create("a", PAGE)
        assert fs.free_bytes == before - PAGE
