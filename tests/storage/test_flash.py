"""Tests for the NAND flash model."""

import pytest

from repro.storage.flash import FlashGeometry, NandFlash


class TestGeometry:
    def test_capacity(self):
        g = FlashGeometry(page_bytes=4096, pages_per_block=64, total_blocks=128)
        assert g.block_bytes == 4096 * 64
        assert g.total_pages == 64 * 128
        assert g.capacity_bytes == 4096 * 64 * 128

    def test_pages_for_rounds_up(self):
        g = FlashGeometry(page_bytes=4096)
        assert g.pages_for(0) == 0
        assert g.pages_for(1) == 1
        assert g.pages_for(4096) == 1
        assert g.pages_for(4097) == 2

    def test_paper_small_file_amplification(self):
        """A 500-byte search result stored alone occupies a whole
        allocation unit: ~4x/8x/16x its size for 2/4/8 KB units
        (Section 5.2.2)."""
        for unit in (2048, 4096, 8192):
            g = FlashGeometry(page_bytes=unit)
            occupied = g.pages_for(500) * g.page_bytes
            assert occupied == unit
            assert occupied / 500 == pytest.approx(unit / 500)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            FlashGeometry(page_bytes=0)
        with pytest.raises(ValueError):
            FlashGeometry(total_blocks=-1)

    def test_pages_for_negative(self):
        with pytest.raises(ValueError):
            FlashGeometry().pages_for(-1)


class TestNandOperations:
    def test_page_read_cost(self):
        flash = NandFlash(read_page_s=25e-6)
        one = flash.read_pages(1)
        assert one.latency_s >= 25e-6

    def test_read_scales_with_pages(self):
        flash = NandFlash()
        t1 = flash.read_pages(1).latency_s
        t10 = flash.read_pages(10).latency_s
        assert t10 == pytest.approx(10 * t1, rel=0.01)

    def test_program_slower_than_read(self):
        flash = NandFlash()
        assert flash.program_pages(1).latency_s > flash.read_pages(1).latency_s

    def test_erase_slowest(self):
        flash = NandFlash()
        assert (
            flash.erase_blocks(1).latency_s
            > flash.program_pages(1).latency_s
            > flash.read_pages(1).latency_s
        )

    def test_stats_tracked(self):
        flash = NandFlash()
        flash.read_pages(3)
        flash.program_pages(2)
        flash.erase_blocks(1)
        assert flash.stats.page_reads == 3
        assert flash.stats.page_programs == 2
        assert flash.stats.block_erases == 1

    def test_negative_counts_rejected(self):
        flash = NandFlash()
        with pytest.raises(ValueError):
            flash.read_pages(-1)
        with pytest.raises(ValueError):
            flash.erase_blocks(-2)

    def test_flash_read_energy_far_below_radio(self):
        """Serving from flash must be orders of magnitude cheaper than
        the ~5-10 J radio round trip (the premise of the paper)."""
        flash = NandFlash()
        result = flash.read_pages(10)  # a generous SERP fetch
        assert result.energy_j < 0.01
