"""Integration tests: every paper table/figure experiment runs and its
shape matches the paper (see EXPERIMENTS.md for the full comparison).

These are the repo's acceptance tests; they use the default-scale inputs
(built once per session) and a reduced user sample for the replay-based
figures.
"""

import numpy as np
import pytest

from repro.experiments import (
    ablations,
    cachedesign,
    characterization,
    hitrate,
    performance,
    scaling,
)

USERS_PER_CLASS = 40  # reduced sample for test runtime


class TestSection2:
    def test_table1_matches_paper(self):
        rows = scaling.table1()
        assert len(rows) == 9
        assert rows[0]["tech_nm"] == 32
        assert rows[-1]["tech_nm"] == 5

    def test_figure2_milestones(self):
        m = scaling.figure2_milestones()
        assert m["high_end_2018_gb"] == pytest.approx(1024.0)
        assert m["low_end_2018_gb"] == pytest.approx(16.0)
        assert m["low_end_final_gb"] == pytest.approx(256.0)

    def test_table2_paper_rows(self):
        rows = {name: count for name, _, count in scaling.table2()}
        assert rows["web_search"] == pytest.approx(270_000, rel=0.05)
        assert rows["mapping"] == pytest.approx(5_500_000, rel=0.05)
        assert rows["web_content"] == pytest.approx(17_500, rel=0.05)


class TestSection4:
    def test_figure4_shapes(self):
        f4 = characterization.figure4()
        assert f4["all"]["query_coverage_at_k60"] == pytest.approx(0.60, abs=0.01)
        assert f4["navigational"]["query_coverage_at_k60"] >= 0.85
        assert f4["non_navigational"]["query_coverage_at_k60"] <= 0.65
        assert (
            f4["featurephone"]["query_coverage_at_k60"]
            > f4["smartphone"]["query_coverage_at_k60"]
        )

    def test_figure4_results_fewer_than_queries(self):
        f4 = characterization.figure4()
        assert f4["all"]["results_for_60pct"] < f4["all"]["queries_for_60pct"]

    def test_figure5_shape(self):
        f5 = characterization.figure5()
        assert 0.50 <= f5["mean_repeat_rate"] <= 0.68
        assert f5["users_at_most_30pct_new"] >= 0.15
        assert f5["nav_median_new"] < f5["non_nav_median_new"]

    def test_table3_descending(self):
        triplets = characterization.table3(limit=20)
        volumes = [t.volume for t in triplets]
        assert all(b <= a for a, b in zip(volumes, volumes[1:]))

    def test_mobile_vs_desktop(self):
        contrast = characterization.mobile_vs_desktop()
        assert contrast["mobile_repeat_rate"] > contrast["desktop_repeat_rate"]
        assert (
            contrast["mobile_coverage_at_k60"]
            > contrast["desktop_coverage_at_k60"] + 0.2
        )


class TestSection5Design:
    def test_figure7_diminishing_returns(self):
        curve = cachedesign.figure7()
        ks = [k for k, _ in curve]
        coverage = dict(curve)
        # Doubling the cache near the knee buys only a few points.
        mid = ks[len(ks) // 2]
        doubled = min((k for k in ks if k >= 2 * mid), default=None)
        if doubled is not None:
            assert coverage[doubled] - coverage[mid] < 0.15

    def test_figure8_footprints_grow_with_coverage(self):
        rows = cachedesign.figure8()
        dram = [r["dram_bytes"] for r in rows]
        flash = [r["flash_bytes"] for r in rows]
        assert all(b >= a for a, b in zip(dram, dram[1:]))
        assert all(b >= a for a, b in zip(flash, flash[1:]))

    def test_figure8_paper_operating_point(self):
        """Paper: ~1 MB flash / ~200 KB DRAM at 55% coverage; under 1% of
        device resources.  Our scaled log gives the same order."""
        rows = {round(r["coverage"], 2): r for r in cachedesign.figure8()}
        op = rows[0.55]
        assert 100 * 1024 <= op["flash_bytes"] <= 2 * 1024 * 1024
        assert 10 * 1024 <= op["dram_bytes"] <= 300 * 1024

    def test_figure11_minimum_at_two(self):
        rows = cachedesign.figure11()
        by_width = {r["results_per_entry"]: r["footprint_bytes"] for r in rows}
        assert min(by_width, key=by_width.get) == 2

    def test_figure12_u_shape_and_32_file_tradeoff(self):
        rows = cachedesign.figure12()
        by_files = {r["n_files"]: r for r in rows}
        best_time = min(r["mean_fetch2_s"] for r in rows)
        # 1 file is far slower than the sweet spot (header parse).
        assert by_files[1]["mean_fetch2_s"] > 3 * best_time
        # 1024 files is slower again (directory scan) and fragments badly.
        assert by_files[1024]["mean_fetch2_s"] > by_files[64]["mean_fetch2_s"]
        assert (
            by_files[1024]["fragmentation_bytes"]
            > 10 * by_files[32]["fragmentation_bytes"]
        )
        # The paper's 32 files: within ~15% of the best time at far lower
        # fragmentation than the time-optimal point.
        assert by_files[32]["mean_fetch2_s"] <= 1.15 * best_time

    def test_shared_storage_saves_flash(self):
        savings = cachedesign.shared_storage_savings()
        assert savings["savings_factor"] > 1.1
        assert savings["unique_results"] < savings["pairs"]


class TestSection61Performance:
    def test_figure15_speedups(self):
        f15 = performance.figure15()
        assert f15["pocketsearch"]["mean_latency_s"] < 0.4
        assert f15["3g"]["latency_speedup"] == pytest.approx(16, rel=0.12)
        assert f15["edge"]["latency_speedup"] == pytest.approx(25, rel=0.12)
        assert f15["802.11g"]["latency_speedup"] == pytest.approx(7, rel=0.12)

    def test_figure15_energy_ratios(self):
        f15 = performance.figure15()
        assert f15["3g"]["energy_ratio"] == pytest.approx(23, rel=0.12)
        assert f15["edge"]["energy_ratio"] == pytest.approx(41, rel=0.12)
        assert f15["802.11g"]["energy_ratio"] == pytest.approx(11, rel=0.12)

    def test_table4_breakdown(self):
        t4 = performance.table4()
        assert t4["total"]["mean_s"] == pytest.approx(0.378, abs=0.02)
        assert t4["browser_rendering_s"]["share"] > 0.9
        assert t4["hash_table_lookup_s"]["mean_s"] == pytest.approx(10e-6)
        assert 0.002 < t4["fetch_search_results_s"]["mean_s"] < 0.015

    def test_table5_navigation(self):
        t5 = performance.table5()
        assert t5["lightweight"]["speedup_pct"] == pytest.approx(28.7, abs=4)
        assert t5["heavyweight"]["speedup_pct"] == pytest.approx(16.7, abs=3)
        assert (
            t5["lightweight"]["speedup_pct"] > t5["heavyweight"]["speedup_pct"]
        )

    def test_figure16_consecutive_queries(self):
        f16 = performance.figure16()
        ps, radio = f16["pocketsearch"], f16["radio"]
        # Paper: ~4 s vs ~40 s for 10 queries; one wakeup on the radio run.
        assert 3.0 <= ps["total_s"] <= 5.0
        assert 35.0 <= radio["total_s"] <= 50.0
        assert radio["wakeups"] == 1
        # Paper: ~1500 mW with the radio vs ~900 mW without.
        assert radio["mean_power_w"] == pytest.approx(1.5, abs=0.15)
        assert ps["mean_power_w"] < radio["mean_power_w"]


class TestSection62HitRates:
    def test_table6(self):
        t6 = hitrate.table6()
        assert t6["low"]["observed_share"] == pytest.approx(0.55, abs=0.08)
        assert t6["extreme"]["observed_share"] == pytest.approx(0.01, abs=0.02)

    def test_figure17_shape(self):
        f17 = hitrate.figure17(users_per_class=USERS_PER_CLASS)
        full = f17["full"]
        community = f17["community"]
        personal = f17["personalization"]
        # Paper: ~65% overall, rising with class volume.
        assert 0.60 <= full["overall"] <= 0.78
        assert full["extreme"] > full["low"]
        # Decomposition: each component below the union; community ~55%,
        # personalization ~56.5% in the paper.
        assert community["overall"] < full["overall"]
        assert personal["overall"] < full["overall"]
        assert 0.40 <= community["overall"] <= 0.65
        assert 0.50 <= personal["overall"] <= 0.70
        # Community-only hit rate rises with class volume.
        assert community["extreme"] > community["low"]

    def test_figure17_personalization_at_least_community(self):
        """Paper: per class, personalization >= community."""
        f17 = hitrate.figure17(users_per_class=USERS_PER_CLASS)
        for user_class in ("low", "medium", "high", "extreme"):
            assert (
                f17["personalization"][user_class]
                >= f17["community"][user_class] - 0.05
            )

    def test_figure18_community_warm_start(self):
        """Paper: in week 1 the community component beats the (cold)
        personalization component, and the full cache is already at its
        month-long hit rate."""
        f18 = hitrate.figure18(users_per_class=USERS_PER_CLASS)
        week1 = f18["week1"]
        month = f18["full_month"]
        for user_class in ("low", "medium"):
            assert (
                week1["community"][user_class]
                > week1["personalization"][user_class] - 0.03
            )
        full_week1 = np.nanmean(list(week1["full"].values()))
        full_month = np.nanmean(list(month["full"].values()))
        assert full_week1 == pytest.approx(full_month, abs=0.08)

    def test_figure18_personalization_warms_up(self):
        f18 = hitrate.figure18(users_per_class=USERS_PER_CLASS)
        for user_class in ("low", "medium", "high"):
            assert (
                f18["full_month"]["personalization"][user_class]
                >= f18["week1"]["personalization"][user_class] - 0.02
            )

    def test_figure19_breakdown(self):
        f19 = hitrate.figure19(users_per_class=USERS_PER_CLASS)
        overall = f19["overall"]
        assert overall["navigational"] + overall["non_navigational"] == pytest.approx(1.0)
        # Both categories contribute materially to the hits.
        assert 0.2 <= overall["navigational"] <= 0.8
        # Heavier users' hits skew no more navigational than light users'
        # (the paper: non-nav share grows for high/extreme classes; at our
        # sample size the gradient is flat-to-positive).
        assert (
            f19["extreme"]["non_navigational"]
            > f19["low"]["non_navigational"] - 0.06
        )


class TestDailyUpdates:
    def test_section622(self):
        result = hitrate.daily_updates(users_per_class=10)
        # Paper: +1.5 points (66% vs 65%); we accept a small band around 0.
        assert -0.02 <= result["improvement"] <= 0.06
        assert result["daily_update_hit_rate"] >= result["static_hit_rate"] - 0.02


class TestAblations:
    def test_baselines_ordering(self):
        rates = ablations.baseline_hit_rates(users_per_class=8)
        assert rates["pocketsearch"] > rates["lru"]
        assert rates["pocketsearch"] > rates["browser_substring"] + 0.2
        assert rates["no_cache"] == 0.0

    def test_ranking_lambda_sweep(self):
        sweep = ablations.ranking_lambda_sweep(
            lambdas=(0.0, 0.1), users_per_class=4
        )
        assert set(sweep) == {0.0, 0.1}
        for accuracy in sweep.values():
            assert 0 <= accuracy <= 1 or np.isnan(accuracy)

    def test_results_per_entry_cost(self):
        rows = ablations.results_per_entry_hit_cost()
        assert rows[1]["mean_chain_entries"] >= rows[2]["mean_chain_entries"]
