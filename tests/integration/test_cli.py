"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "fig17" in out

    def test_unknown_artifact(self, capsys):
        assert main(["nonsense"]) == 2
        assert "unknown artifact" in capsys.readouterr().err

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "flash" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "web_search" in capsys.readouterr().out

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        assert "2018" in capsys.readouterr().out

    def test_fig15(self, capsys):
        assert main(["fig15"]) == 0
        out = capsys.readouterr().out
        assert "pocketsearch" in out and "edge" in out

    def test_table4(self, capsys):
        assert main(["table4"]) == 0
        assert "browser_rendering_s" in capsys.readouterr().out

    def test_fig5_uses_default_log(self, capsys):
        assert main(["fig5"]) == 0
        assert "mean_repeat_rate" in capsys.readouterr().out

    def test_fig17_small(self, capsys):
        assert main(["fig17", "--users", "4"]) == 0
        out = capsys.readouterr().out
        assert "full" in out and "community" in out
