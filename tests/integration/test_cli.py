"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "fig17" in out

    def test_unknown_artifact(self, capsys):
        assert main(["nonsense"]) == 2
        assert "unknown artifact" in capsys.readouterr().err

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "flash" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "web_search" in capsys.readouterr().out

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        assert "2018" in capsys.readouterr().out

    def test_fig15(self, capsys):
        assert main(["fig15"]) == 0
        out = capsys.readouterr().out
        assert "pocketsearch" in out and "edge" in out

    def test_table4(self, capsys):
        assert main(["table4"]) == 0
        assert "browser_rendering_s" in capsys.readouterr().out

    def test_fig5_uses_default_log(self, capsys):
        assert main(["fig5"]) == 0
        assert "mean_repeat_rate" in capsys.readouterr().out

    def test_fig17_small(self, capsys):
        assert main(["fig17", "--users", "4"]) == 0
        out = capsys.readouterr().out
        assert "full" in out and "community" in out


class TestObservabilityCli:
    def test_trace_writes_jsonl(self, capsys, tmp_path):
        import json

        out = str(tmp_path / "trace.jsonl")
        assert main(["trace", "fig17", "--users", "2", "--trace-out", out]) == 0
        assert "wrote" in capsys.readouterr().out
        with open(out) as fh:
            lines = [json.loads(line) for line in fh if line.strip()]
        # The first line is the export's meta record; spans follow.
        meta, records = lines[0], lines[1:]
        assert meta["kind"] == "meta"
        assert meta["spans_dropped"] == 0
        assert meta["n_records"] == len(records)
        names = {r["name"] for r in records}
        assert "serve_query" in names
        assert "radio_state" in names
        # Nested spans: serve_query sub-steps point at their parent.
        parents = {r["span_id"] for r in records}
        assert any(
            r["parent_id"] in parents
            for r in records
            if r["name"] == "database_read"
        )

    def test_trace_restores_noop_tracer(self, tmp_path):
        from repro.obs.trace import NULL_TRACER, get_tracer

        out = str(tmp_path / "trace.jsonl")
        assert main(["trace", "table2", "--trace-out", out]) == 0
        assert get_tracer() is NULL_TRACER

    def test_profile_prints_breakdown(self, capsys):
        assert main(["profile", "fig17", "--users", "2"]) == 0
        out = capsys.readouterr().out
        assert "span-time breakdown" in out
        assert "serve_query" in out
        assert "self %" in out

    def test_manifest_out(self, capsys, tmp_path):
        import json

        path = str(tmp_path / "m.json")
        assert main(["table2", "--manifest-out", path]) == 0
        with open(path) as fh:
            manifest = json.load(fh)
        assert manifest["name"] == "table2"
        assert manifest["config"]["users"] == 40
        assert manifest["wall_time_s"] >= 0
