"""Tests for the PocketDevice assembler."""

import pytest

from repro.device import DEFAULT_BUDGET_SHARES, PocketDevice
from repro.pocketmaps.grid import Region

GB = 1024**3
MB = 1024**2


class TestPlan:
    def test_2018_low_end(self):
        spec = PocketDevice.plan(year=2018, tier="low")
        assert spec.nvm_bytes == 16 * GB
        assert spec.partition_bytes == int(1.6 * GB)
        assert sum(spec.budgets.values()) <= spec.partition_bytes + 5 * MB

    def test_high_end_bigger(self):
        low = PocketDevice.plan(year=2018, tier="low")
        high = PocketDevice.plan(year=2018, tier="high")
        assert high.nvm_bytes == 64 * low.nvm_bytes

    def test_custom_shares(self):
        spec = PocketDevice.plan(
            year=2018,
            budget_shares={
                "search": 0.2, "ads": 0.2, "web": 0.2, "maps": 0.2, "yellow": 0.2,
            },
        )
        values = list(spec.budgets.values())
        assert max(values) == min(values)

    def test_validation(self):
        with pytest.raises(ValueError):
            PocketDevice.plan(tier="mid")
        with pytest.raises(ValueError):
            PocketDevice.plan(budget_shares={"search": 1.0})
        with pytest.raises(ValueError):
            PocketDevice.plan(
                budget_shares={
                    "search": 0.9, "ads": 0.9, "web": 0.1, "maps": 0.1, "yellow": 0.1,
                }
            )


class TestBuild:
    def test_all_cloudlets_present(self, small_log):
        device = PocketDevice.build(year=2018, log=small_log)
        assert device.registry.names == ["ads", "maps", "search", "web", "yellow"]

    def test_search_path_works(self, small_log):
        device = PocketDevice.build(year=2018, log=small_log)
        # A community-cached query hits...
        query = next(iter(device.search.cache.query_registry.values()))
        result = device.search.measure_hit(query)
        assert result.outcome.hit
        # ...and ads ride along.
        ad = device.ads.serve(query, search_hit=True)
        assert ad.hit

    def test_web_and_maps_paths_work(self, small_log):
        device = PocketDevice.build(year=2018, log=small_log)
        miss = device.web.browse("www.somewhere.org", 100.0)
        assert not miss.hit
        assert device.web.browse("www.somewhere.org", 200.0).hit
        device.maps.prefetch_region(Region(0, 0, 3000, 3000))
        assert device.maps.serve_viewport(Region.viewport(1500, 1500)).hit

    def test_yellow_path_works(self, small_log):
        device = PocketDevice.build(year=2018, log=small_log)
        device.yellow.prefetch_region(Region(0, 0, 6000, 6000))
        outcome = device.yellow.search("coffee", 2000, 2000)
        assert outcome.hit

    def test_storage_report(self, small_log):
        device = PocketDevice.build(year=2018, log=small_log)
        device.maps.prefetch_region(Region(0, 0, 3000, 3000))
        report = device.storage_report()
        assert set(report) == set(DEFAULT_BUDGET_SHARES)
        assert report["maps"]["used_bytes"] > 0
        for row in report.values():
            assert 0 <= row["used_frac"] <= 1.0

    def test_build_without_content(self):
        device = PocketDevice.build(year=2018)
        assert device.search.cache.hashtable.n_pairs == 0
        # Personalization still learns.
        device.search.serve_query("brand new", "www.new.org")
        assert device.search.cache.lookup("brand new").hit
