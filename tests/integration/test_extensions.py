"""Integration tests for the extension systems (PocketWeb, PocketAds,
PCM boot, battery)."""

import pytest

from repro.experiments import extensions


class TestPocketWebReplay:
    def test_revisit_behaviour_yields_hits(self):
        result = extensions.pocketweb_replay(users=8)
        assert result["visits"] > 100
        # The paper's premise: most visits are revisits -> most hit.
        assert result["mean_hit_rate"] > 0.55
        assert result["radio_bytes_saved_frac"] > 0.5
        assert result["energy_ratio_vs_3g"] > 1.0


class TestAdsCoupling:
    def test_ads_follow_search_hits(self):
        result = extensions.ads_coupling(users=8)
        assert result["queries"] > 100
        assert 0.5 <= result["ads_served_given_hit"] <= 1.0
        assert result["ads_suppressed_frac"] == pytest.approx(
            1 - result["search_hit_rate"], abs=1e-9
        )


class TestPcmBoot:
    def test_pcm_removes_boot_penalty(self):
        rows = extensions.pcm_boot()
        for row in rows:
            assert row["with_pcm_s"] < 1e-3
            assert row["dram_only_s"] > row["with_pcm_s"]
        # DRAM-only boot cost grows linearly with the index.
        small, big = rows[0], rows[-1]
        growth = big["dram_only_s"] / small["dram_only_s"]
        size_growth = big["index_mb"] / small["index_mb"]
        assert growth == pytest.approx(size_growth, rel=0.2)


class TestMapsCommute:
    def test_corridor_prefetch_dominates(self):
        result = extensions.maps_commute(days=8)
        assert result["viewport_hit_rate"] > 0.7
        assert result["tile_hit_rate"] > 0.8
        assert result["radio_bytes_saved_frac"] > 0.7

    def test_store_within_budget(self):
        result = extensions.maps_commute(days=5, budget_mb=32)
        assert result["store_mb"] <= 32.0


class TestSuggestEffort:
    def test_suggestions_save_keystrokes(self):
        result = extensions.suggest_effort(users=4)
        assert result["hit_queries_tested"] > 50
        assert result["topped_before_full_query"] > 0.6
        assert 0 < result["mean_keystrokes_saved_frac"] < 1


class TestYellowPagesDay:
    def test_metro_prefetch_serves_most_searches(self):
        result = extensions.yellow_pages_day(searches=40)
        assert result["search_hit_rate"] > 0.6
        assert result["mean_results"] > 0
        assert result["store_mb"] <= 32.0


class TestLatencyVariability:
    def test_paper_band_and_determinism(self):
        result = extensions.latency_variability(n_requests=400)
        threeg = result["3g"]
        assert 3.0 <= threeg["p10"] <= 10.0
        assert threeg["p99"] > threeg["p50"] > threeg["p10"]
        assert result["pocketsearch"]["spread"] == 0.0


class TestServerLoadRelief:
    def test_two_thirds_eliminated(self):
        result = extensions.server_load_relief()
        assert 0.6 <= result["load_eliminated_frac"] <= 0.85
        assert result["server_queries"] < result["queries"]
        assert result["peak_hour_after"] < result["peak_hour_before"]


class TestBatteryLife:
    def test_queries_per_charge_ordering(self):
        result = extensions.battery_life()
        assert (
            result["pocketsearch"]["queries_per_charge"]
            > result["802.11g"]["queries_per_charge"]
            > result["3g"]["queries_per_charge"]
            > result["edge"]["queries_per_charge"]
        )

    def test_daily_share_small_for_pocketsearch(self):
        result = extensions.battery_life(queries_per_day=40)
        assert result["pocketsearch"]["daily_share_pct"] < 0.5
        assert result["3g"]["daily_share_pct"] > 1.0
