"""A stack-level property test: replaying arbitrary small worlds never
violates the cache's core invariants."""

from hypothesis import given, settings, strategies as st

from repro.logs.generator import GeneratorConfig, generate_logs
from repro.logs.popularity import CommunityModel
from repro.logs.users import PopulationConfig, UserPopulation
from repro.logs.vocabulary import Vocabulary, VocabularyConfig
from repro.pocketsearch.content import ContentPolicy, build_cache_content
from repro.pocketsearch.engine import PocketSearchEngine
from repro.sim.replay import CacheMode, make_cache


@given(
    seed=st.integers(min_value=0, max_value=500),
    coverage=st.floats(min_value=0.2, max_value=0.7),
)
@settings(max_examples=10, deadline=None)
def test_replay_invariants(seed, coverage):
    community = CommunityModel(
        Vocabulary.build(VocabularyConfig(n_nav_topics=60, n_non_nav_topics=80))
    )
    population = UserPopulation.build(PopulationConfig(n_users=12, seed=seed))
    log = generate_logs(
        community, population, GeneratorConfig(months=1, seed=seed)
    )
    content = build_cache_content(
        log.month(0), ContentPolicy(target_coverage=coverage)
    )
    cache = make_cache(content, CacheMode.FULL)
    engine = PocketSearchEngine(cache)
    pairs_before = cache.hashtable.n_pairs
    hits = misses = 0
    for i in range(min(log.n_events, 300)):
        query = log.query_string(int(log.query_keys[i]))
        url = log.result_url(int(log.result_keys[i]))
        outcome = engine.serve_query(query, url)
        hits += int(outcome.outcome.hit)
        misses += int(not outcome.outcome.hit)
        # Invariant: a served query is always cached afterwards.
        assert cache.hashtable.contains(query)
        # Invariant: every hit is faster than every possible miss.
        if outcome.outcome.hit:
            assert outcome.outcome.latency_s < 1.0
        else:
            assert outcome.outcome.latency_s > 3.0
    # Personalization only grows the cache.
    assert cache.hashtable.n_pairs >= pairs_before
    # Counters agree with what we observed.
    assert cache.hits == hits
    assert cache.misses == misses
    # Every cached pair's result is fetchable from the database.
    for query in cache.query_registry.values():
        for result_hash, _score, _ in cache.hashtable.slots_for(query):
            assert cache.database.contains(result_hash)
