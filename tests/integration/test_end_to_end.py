"""End-to-end scenario tests across the whole stack."""

import pytest

from repro.core.registry import CloudletRegistry
from repro.logs.schema import MONTH_SECONDS
from repro.pocketsearch.content import ContentPolicy, build_cache_content
from repro.pocketsearch.engine import PocketSearchEngine
from repro.pocketsearch.manager import CacheUpdateServer
from repro.sim.metrics import MetricsCollector
from repro.sim.replay import CacheMode, make_cache, select_replay_users


class TestPocketSearchLifecycle:
    """Build from logs -> serve a user month -> nightly update -> serve."""

    def test_full_lifecycle(self, small_log):
        content = build_cache_content(
            small_log.month(0), ContentPolicy(target_coverage=0.5)
        )
        cache = make_cache(content, CacheMode.FULL)
        engine = PocketSearchEngine(cache)

        selected = select_replay_users(small_log, 1, 2)
        uid = next(uids[0] for uids in selected.values() if uids)
        stream = small_log.for_user(uid).month(1)

        metrics = MetricsCollector()
        half = stream.n_events // 2
        for i in range(half):
            result = engine.serve_query(
                stream.query_string(int(stream.query_keys[i])),
                stream.result_url(int(stream.result_keys[i])),
            )
            metrics.record(result.outcome)

        # Nightly refresh against the latest window.
        server = CacheUpdateServer(policy=ContentPolicy(target_coverage=0.5))
        window = small_log.window(0.5 * MONTH_SECONDS, 1.5 * MONTH_SECONDS)
        patch = server.refresh(cache, window)
        assert patch.bytes_downloaded > 0

        for i in range(half, stream.n_events):
            result = engine.serve_query(
                stream.query_string(int(stream.query_keys[i])),
                stream.result_url(int(stream.result_keys[i])),
            )
            metrics.record(result.outcome)

        assert metrics.count == stream.n_events
        assert 0 < metrics.hit_rate <= 1
        # Hits are served an order of magnitude faster than misses.
        hits = [o.latency_s for o in metrics.outcomes if o.hit]
        misses = [o.latency_s for o in metrics.outcomes if not o.hit]
        if hits and misses:
            assert min(misses) > 5 * max(hits)

    def test_update_preserves_user_hits(self, small_log):
        """Pairs the user accessed survive the refresh (Section 5.4)."""
        content = build_cache_content(
            small_log.month(0), ContentPolicy(max_pairs=100)
        )
        cache = make_cache(content, CacheMode.FULL)
        engine = PocketSearchEngine(cache)
        engine.serve_query("my own thing", "www.myownthing.org")
        server = CacheUpdateServer(policy=ContentPolicy(max_pairs=50))
        server.refresh(cache, small_log.month(1))
        assert cache.lookup("my own thing").hit


class TestMultiCloudletDevice:
    """Section 7: search + ads cloudlets coexisting under the registry."""

    def test_search_cloudlet_in_registry(self, small_log):
        from repro.core.cloudlet import Cloudlet

        class SearchCloudlet(Cloudlet):
            def __init__(self, engine):
                super().__init__("search", 10 * 1024 * 1024)
                self.engine = engine

            def lookup_local(self, key):
                lookup = self.engine.cache.lookup(key)
                return lookup.results if lookup.hit else None

            def store_local(self, key, value, nbytes):
                self.engine.cache.record_click(key, value)

            def evict(self, nbytes):
                return nbytes

            def local_cost(self, key):
                return (0.378, 0.47)

            def remote_cost(self, key):
                return self.engine.radio_only_cost()

        content = build_cache_content(
            small_log.month(0), ContentPolicy(max_pairs=100)
        )
        cache = make_cache(content, CacheMode.FULL)
        search = SearchCloudlet(PocketSearchEngine(cache))
        registry = CloudletRegistry(total_budget_bytes=100 * 1024 * 1024)
        registry.register(search, index_bytes=cache.dram_bytes)

        cached_query = content.entries[0].query
        outcome = registry.cloudlet("search").serve(cached_query)
        assert outcome.hit
        missed = registry.cloudlet("search").serve("definitely not cached")
        assert not missed.hit
        assert missed.latency_s > outcome.latency_s
