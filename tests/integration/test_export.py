"""Tests for the figure CSV exporter."""

import csv
import os

import pytest

from repro.experiments import export


class TestExport:
    def test_fast_exporters_write_valid_csv(self, tmp_path):
        paths = export.export_all(
            str(tmp_path), only=["fig5", "fig7", "fig8", "fig11", "fig15"]
        )
        assert set(paths) == {"fig5", "fig7", "fig8", "fig11", "fig15"}
        for path in paths.values():
            assert os.path.exists(path)
            with open(path) as handle:
                rows = list(csv.reader(handle))
            assert len(rows) >= 2  # header + data
            width = len(rows[0])
            assert all(len(r) == width for r in rows)

    def test_fig5_cdf_monotone(self, tmp_path):
        path = export.export_fig5(str(tmp_path))
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        fractions = [float(r["user_fraction"]) for r in rows]
        assert all(b >= a for a, b in zip(fractions, fractions[1:]))

    def test_fig16_trace_covers_burst(self, tmp_path):
        path = export.export_fig16(str(tmp_path), samples=50)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 50
        powers = [float(r["device_power_w"]) for r in rows]
        assert max(powers) > 1.4  # the 3G plateau
        assert min(powers) >= 0.9  # base power floor

    def test_selective_export(self, tmp_path):
        paths = export.export_all(str(tmp_path), only=["fig7"])
        assert list(paths) == ["fig7"]
