"""Integration tests for the Section 6.2 replay harness."""

import pytest

from repro.logs.schema import MONTH_SECONDS, UserClass
from repro.pocketsearch.content import ContentPolicy, build_cache_content
from repro.pocketsearch.engine import PocketSearchEngine
from repro.sim.replay import (
    CacheMode,
    ReplayConfig,
    make_cache,
    replay_user,
    run_replay,
    select_replay_users,
)


@pytest.fixture(scope="module")
def small_replay(request):
    small_log = request.getfixturevalue("small_log")
    return run_replay(
        small_log,
        ReplayConfig(users_per_class=8),
        modes=CacheMode.ALL,
    )


class TestUserSelection:
    def test_selection_respects_floor(self, small_log):
        selected = select_replay_users(small_log, month=1, users_per_class=5)
        volumes = small_log.user_monthly_volumes(month=1)
        for user_class, uids in selected.items():
            for uid in uids:
                assert volumes[uid] >= 20

    def test_selection_capped(self, small_log):
        selected = select_replay_users(small_log, month=1, users_per_class=3)
        assert all(len(uids) <= 3 for uids in selected.values())

    def test_selection_deterministic(self, small_log):
        a = select_replay_users(small_log, 1, 5, seed=1)
        b = select_replay_users(small_log, 1, 5, seed=1)
        assert a == b


class TestCacheModes:
    def test_community_only_never_learns(self, small_log):
        content = build_cache_content(
            small_log.month(0), ContentPolicy(max_pairs=100)
        )
        cache = make_cache(content, CacheMode.COMMUNITY_ONLY)
        assert not cache.personalization_enabled
        cache.record_click("new", "www.new.com")
        assert not cache.lookup("new").hit

    def test_personalization_only_starts_empty(self, small_log):
        content = build_cache_content(
            small_log.month(0), ContentPolicy(max_pairs=100)
        )
        cache = make_cache(content, CacheMode.PERSONALIZATION_ONLY)
        assert cache.hashtable.n_pairs == 0

    def test_full_mode_has_both(self, small_log):
        content = build_cache_content(
            small_log.month(0), ContentPolicy(max_pairs=100)
        )
        cache = make_cache(content, CacheMode.FULL)
        assert cache.personalization_enabled
        assert cache.hashtable.n_pairs > 0


class TestReplayResults:
    def test_all_modes_present(self, small_replay):
        assert set(small_replay) == set(CacheMode.ALL)

    def test_full_dominates_components(self, small_replay):
        """The union cache can only beat either component (Figure 17)."""
        full = small_replay[CacheMode.FULL].overall_hit_rate()
        community = small_replay[CacheMode.COMMUNITY_ONLY].overall_hit_rate()
        personal = small_replay[
            CacheMode.PERSONALIZATION_ONLY
        ].overall_hit_rate()
        assert full >= community - 0.02
        assert full >= personal - 0.02

    def test_hit_rates_in_unit_interval(self, small_replay):
        for result in small_replay.values():
            for user in result.users:
                assert 0 <= user.metrics.hit_rate <= 1

    def test_by_class_reporting(self, small_replay):
        by_class = small_replay[CacheMode.FULL].hit_rate_by_class()
        assert set(by_class) == set(UserClass)

    def test_windowed_reporting(self, small_replay):
        result = small_replay[CacheMode.FULL]
        t0 = MONTH_SECONDS
        week1 = result.hit_rate_by_class_windowed(t0, t0 + 7 * 24 * 3600)
        assert set(week1) == set(UserClass)

    def test_by_class_agrees_with_full_window(self, small_replay):
        """Both by-class reports share one bucketing helper: over the whole
        replay month (every query in window) they must agree exactly, and
        per-class means must be reproducible from the raw user metrics."""
        import math

        result = small_replay[CacheMode.FULL]
        by_class = result.hit_rate_by_class()
        windowed = result.hit_rate_by_class_windowed(0, float("inf"))
        for user_class in UserClass:
            expected = [
                u.metrics.hit_rate
                for u in result.users
                if u.user_class == user_class
            ]
            if not expected:
                assert math.isnan(by_class[user_class])
                assert math.isnan(windowed[user_class])
                continue
            mean = sum(expected) / len(expected)
            assert by_class[user_class] == pytest.approx(mean, abs=1e-12)
            assert windowed[user_class] == pytest.approx(
                by_class[user_class], abs=1e-12
            )

    def test_navigational_breakdown_sums_to_one(self, small_replay):
        breakdown = small_replay[CacheMode.FULL].navigational_breakdown()
        for split in breakdown.values():
            total = split["navigational"] + split["non_navigational"]
            assert total == pytest.approx(1.0) or total == 0.0


class TestReplayUser:
    def test_replays_whole_month(self, small_log):
        content = build_cache_content(
            small_log.month(0), ContentPolicy(max_pairs=200)
        )
        selected = select_replay_users(small_log, 1, 1)
        uid = next(uids[0] for uids in selected.values() if uids)
        engine = PocketSearchEngine(make_cache(content, CacheMode.FULL))
        metrics = replay_user(
            engine, small_log, uid, MONTH_SECONDS, 2 * MONTH_SECONDS
        )
        expected = small_log.for_user(uid).month(1).n_events
        assert metrics.count == expected

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ReplayConfig(users_per_class=0)
        with pytest.raises(ValueError):
            ReplayConfig(build_month=1, replay_month=1)


class TestBoundedReplay:
    """Satellite check: bounded-memory replay matches the exact path."""

    def test_bounded_aggregates_match_exact(self, small_log):
        users = select_replay_users(small_log, 1, 4, seed=5)
        exact = run_replay(
            small_log,
            ReplayConfig(users_per_class=4),
            modes=[CacheMode.FULL],
            selected_users=users,
        )[CacheMode.FULL]
        bounded = run_replay(
            small_log,
            ReplayConfig(users_per_class=4, bounded_metrics=True),
            modes=[CacheMode.FULL],
            selected_users=users,
        )[CacheMode.FULL]
        assert bounded.overall_hit_rate() == pytest.approx(
            exact.overall_hit_rate()
        )
        exact_by_class = exact.hit_rate_by_class()
        for user_class, rate in bounded.hit_rate_by_class().items():
            expected = exact_by_class[user_class]
            if expected == expected:  # skip empty-class nan buckets
                assert rate == pytest.approx(expected)
        exact_nav = exact.navigational_breakdown()
        for user_class, split in bounded.navigational_breakdown().items():
            assert split == pytest.approx(exact_nav[user_class])
        for u_exact, u_bounded in zip(exact.users, bounded.users):
            assert u_bounded.metrics.outcomes == []
            assert u_bounded.metrics.count == u_exact.metrics.count
            assert u_bounded.metrics.mean_latency_s == pytest.approx(
                u_exact.metrics.mean_latency_s
            )

    def test_bounded_windowed_reporting_matches(self, small_log):
        users = select_replay_users(small_log, 1, 4, seed=5)
        kwargs = dict(modes=[CacheMode.FULL], selected_users=users)
        exact = run_replay(
            small_log, ReplayConfig(users_per_class=4), **kwargs
        )[CacheMode.FULL]
        bounded = run_replay(
            small_log,
            ReplayConfig(users_per_class=4, bounded_metrics=True),
            **kwargs,
        )[CacheMode.FULL]
        t0 = MONTH_SECONDS  # day-aligned window: exact in bounded mode
        lo, hi = t0, t0 + 7 * 24 * 3600
        expected = exact.hit_rate_by_class_windowed(lo, hi)
        observed = bounded.hit_rate_by_class_windowed(lo, hi)
        for user_class in UserClass:
            e, o = expected[user_class], observed[user_class]
            if e == e:
                assert o == pytest.approx(e)
