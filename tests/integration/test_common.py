"""Tests for experiment-support utilities."""

import pytest

from repro.experiments.common import (
    default_content,
    default_log,
    format_table,
)


class TestFormatTable:
    def test_alignment(self):
        text = format_table([["a", 1], ["longer", 22]], ["col", "n"])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_empty_rows(self):
        text = format_table([], ["a", "b"])
        assert "a" in text and "b" in text

    def test_values_stringified(self):
        text = format_table([[1.5, None]], ["x", "y"])
        assert "1.5" in text and "None" in text


class TestMemoization:
    def test_default_log_cached(self):
        assert default_log() is default_log()

    def test_default_content_cached(self):
        assert default_content() is default_content()

    def test_content_covers_operating_point(self):
        content = default_content()
        assert content.coverage == pytest.approx(0.55, abs=0.02)
