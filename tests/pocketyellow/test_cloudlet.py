"""Tests for the yellow-pages cloudlet."""

import pytest

from repro.pocketmaps.grid import Region
from repro.pocketyellow.cloudlet import YellowPagesCloudlet
from repro.pocketyellow.directory import BUSINESS_TILE_BYTES

MB = 1024**2


def make_yp(budget_mb=16):
    return YellowPagesCloudlet(budget_bytes=budget_mb * MB)


class TestPrefetch:
    def test_prefetch_skips_empty_tiles(self):
        yp = make_yp()
        region = Region(0, 0, 6000, 6000)
        stored = yp.prefetch_region(region)
        non_empty = sum(
            1 for t in region.tiles() if yp.directory.tile_bytes(t) > 0
        )
        assert stored == non_empty
        assert yp.bytes_stored == stored * BUSINESS_TILE_BYTES

    def test_budget_enforced(self):
        yp = YellowPagesCloudlet(budget_bytes=5 * BUSINESS_TILE_BYTES)
        yp.prefetch_region(Region(0, 0, 10_000, 10_000))
        assert yp.bytes_stored <= 5 * BUSINESS_TILE_BYTES

    def test_validation(self):
        with pytest.raises(ValueError):
            YellowPagesCloudlet(budget_bytes=0)


class TestSearch:
    def test_prefetched_search_is_local(self):
        yp = make_yp()
        yp.prefetch_region(Region(0, 0, 8000, 8000))
        outcome = yp.search("restaurant", 2000, 2000)
        assert outcome.hit
        assert outcome.bytes_over_radio == 0
        assert outcome.latency_s < 1.0

    def test_cold_search_uses_radio_and_learns(self):
        yp = make_yp()
        first = yp.search("coffee", 2000, 2000)
        assert not first.hit
        assert first.latency_s > 2.0
        second = yp.search("coffee", 2000, 2000)
        assert second.hit

    def test_results_filtered_by_category(self):
        yp = make_yp()
        yp.prefetch_region(Region(0, 0, 8000, 8000))
        outcome = yp.search("restaurant", 1000, 1000, radius_m=3000)
        assert all(b.category == "restaurant" for b in outcome.businesses)
        assert outcome.businesses  # downtown has restaurants

    def test_results_same_hit_or_miss(self):
        """The radio path returns the same businesses, just slower."""
        cold = make_yp()
        miss = cold.search("bank", 1500, 1500)
        warm = make_yp()
        warm.prefetch_region(Region(0, 0, 4000, 4000))
        hit = warm.search("bank", 1500, 1500)
        assert {b.business_id for b in miss.businesses} == {
            b.business_id for b in hit.businesses
        }

    def test_hit_rate(self):
        yp = make_yp()
        yp.prefetch_region(Region(0, 0, 8000, 8000))
        yp.search("coffee", 2000, 2000)  # hit
        yp.search("coffee", 90_000, 90_000)  # miss (if any tiles there)
        assert 0 <= yp.search_hit_rate <= 1

    def test_radius_validation(self):
        with pytest.raises(ValueError):
            make_yp().search("coffee", 0, 0, radius_m=0)
