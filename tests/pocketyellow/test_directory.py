"""Tests for the synthetic business directory."""

import pytest

from repro.pocketmaps.grid import TileId
from repro.pocketyellow.directory import (
    BUSINESS_TILE_BYTES,
    CATEGORIES,
    US_BUSINESS_COUNT,
    BusinessDirectory,
    national_directory_bytes,
)

GB = 1024**3


class TestNationalArithmetic:
    def test_paper_100gb_claim(self):
        """Section 7: 23 million businesses ~ approximately 100 GB."""
        total = national_directory_bytes()
        assert 90 * GB <= total <= 120 * GB

    def test_validation(self):
        with pytest.raises(ValueError):
            national_directory_bytes(businesses=-1)


class TestDirectory:
    def test_deterministic(self):
        directory = BusinessDirectory()
        tile = TileId(10, 20)
        assert directory.businesses_at(tile) == directory.businesses_at(tile)

    def test_downtown_denser_than_periphery(self):
        directory = BusinessDirectory()
        downtown = sum(
            directory.density_at(TileId(x, y)) for x in range(4) for y in range(4)
        )
        periphery = sum(
            directory.density_at(TileId(x, y))
            for x in range(40, 44)
            for y in range(40, 44)
        )
        assert downtown > periphery

    def test_categories_valid(self):
        directory = BusinessDirectory()
        for business in directory.businesses_at(TileId(1, 1)):
            assert business.category in CATEGORIES

    def test_tile_bytes(self):
        directory = BusinessDirectory()
        dense = TileId(0, 0)
        assert directory.tile_bytes(dense) in (0, BUSINESS_TILE_BYTES)

    def test_mean_density_scales(self):
        sparse = BusinessDirectory(mean_density=0.5)
        dense = BusinessDirectory(mean_density=8.0)
        tiles = [TileId(x, y) for x in range(10) for y in range(10)]
        assert sum(dense.density_at(t) for t in tiles) > sum(
            sparse.density_at(t) for t in tiles
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            BusinessDirectory(mean_density=0)
