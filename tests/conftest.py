"""Shared fixtures.

Unit tests use a small, fast synthetic universe; integration tests that
need the calibrated default scale build it once per session through
``repro.experiments.common``.
"""

import pytest

from repro.logs.generator import GeneratorConfig, generate_logs
from repro.logs.popularity import CommunityModel
from repro.logs.users import PopulationConfig, UserPopulation
from repro.logs.vocabulary import Vocabulary, VocabularyConfig
from repro.storage.filesystem import FlashFilesystem
from repro.storage.flash import FlashGeometry, NandFlash


SMALL_VOCAB = VocabularyConfig(n_nav_topics=300, n_non_nav_topics=400, seed=7)


@pytest.fixture(scope="session")
def small_vocabulary():
    return Vocabulary.build(SMALL_VOCAB)


@pytest.fixture(scope="session")
def small_community(small_vocabulary):
    return CommunityModel(small_vocabulary)


@pytest.fixture(scope="session")
def small_population():
    return UserPopulation.build(PopulationConfig(n_users=150, seed=11))


@pytest.fixture(scope="session")
def small_log(small_community, small_population):
    return generate_logs(
        community=small_community,
        population=small_population,
        config=GeneratorConfig(months=2, seed=23),
    )


@pytest.fixture
def flash():
    return NandFlash(FlashGeometry(page_bytes=4096, pages_per_block=64, total_blocks=256))


@pytest.fixture
def filesystem(flash):
    return FlashFilesystem(flash)
