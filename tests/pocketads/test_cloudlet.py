"""Tests for the ads cloudlet."""

import pytest

from repro.pocketads import AdsCloudlet
from repro.pocketsearch.cache import PocketSearchCache
from repro.pocketsearch.content import CacheContent, CacheEntry

KB = 1024


def make_content(n=5):
    return CacheContent(
        entries=[
            CacheEntry(f"query{i}", f"www.site{i}.com", 100 - i, 0.5, False)
            for i in range(n)
        ],
        total_log_volume=1000,
    )


def make_ads(n=5, budget_kb=100):
    cache = PocketSearchCache()
    content = make_content(n)
    cache.load_community(content)
    ads = AdsCloudlet(cache, budget_bytes=budget_kb * KB)
    ads.load_from_content(content)
    return ads


class TestContentLoading:
    def test_ads_attached_to_cached_queries(self):
        ads = make_ads(5)
        assert ads.n_queries_with_ads == 5
        assert ads.bytes_stored == 5 * 5 * KB

    def test_budget_respected(self):
        ads = make_ads(n=50, budget_kb=30)  # room for 6 banners
        assert ads.bytes_stored <= 30 * KB
        assert ads.n_queries_with_ads <= 6

    def test_idempotent_load(self):
        ads = make_ads(3)
        before = ads.bytes_stored
        ads.load_from_content(make_content(3))
        assert ads.bytes_stored == before

    def test_validation(self):
        cache = PocketSearchCache()
        with pytest.raises(ValueError):
            AdsCloudlet(cache, budget_bytes=0)
        ads = AdsCloudlet(cache)
        with pytest.raises(ValueError):
            ads.load_from_content(make_content(1), ads_per_query=0)


class TestServing:
    def test_ad_served_on_search_hit(self):
        ads = make_ads()
        outcome = ads.serve("query0", search_hit=True)
        assert outcome.hit
        assert len(outcome.served) == 1
        assert outcome.latency_s > 0

    def test_suppressed_on_search_miss(self):
        """Section 7: no point hitting the ad cache when search missed."""
        ads = make_ads()
        outcome = ads.serve("query0", search_hit=False)
        assert not outcome.hit
        assert outcome.served == []
        assert outcome.latency_s == 0.0
        assert ads.suppressed == 1

    def test_unknown_query_serves_nothing(self):
        ads = make_ads()
        outcome = ads.serve("never seen", search_hit=True)
        assert not outcome.hit


class TestCoordinatedEviction:
    def test_evict_query_frees_bytes(self):
        ads = make_ads()
        freed = ads.evict_query("query0")
        assert freed == 5 * KB
        assert not ads.serve("query0", search_hit=True).hit

    def test_evict_unknown_is_zero(self):
        ads = make_ads()
        assert ads.evict_query("never seen") == 0

    def test_group_members(self):
        ads = make_ads()
        members = ads.group_members("query1")
        assert len(members) == 1
        assert members[0][1] == 5 * KB
