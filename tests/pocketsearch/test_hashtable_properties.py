"""Property-based tests for the query hash table."""

from hypothesis import given, settings, strategies as st

from repro.pocketsearch.hashtable import QueryHashTable

queries = st.text(alphabet="abcdefg ", min_size=1, max_size=8)
results = st.integers(min_value=0, max_value=30)
scores = st.floats(min_value=0, max_value=10, allow_nan=False)


@given(
    ops=st.lists(st.tuples(queries, results, scores), max_size=60),
    width=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=60, deadline=None)
def test_table_matches_reference_dict(ops, width):
    """The hash table behaves like a dict of {query: {result: max score}}."""
    table = QueryHashTable(results_per_entry=width)
    reference = {}
    for query, result, score in ops:
        table.insert(query, result, score)
        bucket = reference.setdefault(query, {})
        bucket[result] = max(bucket.get(result, 0.0), score)
    for query, bucket in reference.items():
        looked = table.lookup(query)
        assert looked is not None
        assert dict(looked) == bucket
        # Ranked descending by score.
        ranked = [s for _, s in looked]
        assert all(b <= a for a, b in zip(ranked, ranked[1:]))
    assert table.n_pairs == sum(len(b) for b in reference.values())


@given(
    ops=st.lists(st.tuples(queries, results, scores), min_size=1, max_size=40),
    removals=st.lists(st.tuples(queries, results), max_size=20),
)
@settings(max_examples=60, deadline=None)
def test_remove_is_consistent(ops, removals):
    table = QueryHashTable(results_per_entry=2)
    reference = {}
    for query, result, score in ops:
        table.insert(query, result, score)
        bucket = reference.setdefault(query, {})
        bucket[result] = max(bucket.get(result, 0.0), score)
    for query, result in removals:
        existed = result in reference.get(query, {})
        assert table.remove(query, result) == existed
        if existed:
            del reference[query][result]
    for query, bucket in reference.items():
        looked = table.lookup(query)
        assert dict(looked or []) == bucket


@given(ops=st.lists(st.tuples(queries, results, scores), max_size=50))
@settings(max_examples=60, deadline=None)
def test_footprint_accounts_every_pair(ops):
    """Entries are exactly the slots needed: ceil(results/width) per query."""
    table = QueryHashTable(results_per_entry=2)
    reference = {}
    for query, result, score in ops:
        table.insert(query, result, score)
        reference.setdefault(query, set()).add(result)
    expected_entries = sum(-(-len(r) // 2) for r in reference.values())
    assert table.n_entries == expected_entries
