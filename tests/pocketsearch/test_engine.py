"""Tests for the PocketSearch service path (Table 4, Figure 15)."""

import pytest

from repro.pocketsearch.cache import PocketSearchCache
from repro.pocketsearch.content import CacheContent, CacheEntry
from repro.pocketsearch.engine import PocketSearchEngine
from repro.radio.models import EDGE, THREE_G
from repro.sim.metrics import ServiceSource


def engine_with(entries):
    cache = PocketSearchCache()
    cache.load_community(CacheContent(entries=entries, total_log_volume=100))
    return PocketSearchEngine(cache)


@pytest.fixture
def engine():
    return engine_with(
        [
            CacheEntry("youtube", "www.youtube.com", 10, 0.9, True),
            CacheEntry("news", "www.cnn.com", 5, 0.8, False),
        ]
    )


class TestHitPath:
    def test_hit_served_from_cache(self, engine):
        result = engine.serve_query("youtube", "www.youtube.com", navigational=True)
        assert result.outcome.hit
        assert result.outcome.source is ServiceSource.CACHE

    def test_hit_under_400ms(self, engine):
        """Paper: cached queries answered within ~400 ms."""
        result = engine.serve_query("youtube", "www.youtube.com")
        assert result.outcome.latency_s < 0.4

    def test_breakdown_dominated_by_rendering(self, engine):
        """Table 4: rendering is ~97% of a hit's response time."""
        result = engine.measure_hit("youtube")
        share = (
            result.breakdown["browser_rendering_s"] / result.outcome.latency_s
        )
        assert share > 0.9

    def test_lookup_is_microseconds(self, engine):
        result = engine.measure_hit("youtube")
        assert result.breakdown["hash_table_lookup_s"] == pytest.approx(10e-6)

    def test_measure_hit_does_not_perturb_state(self, engine):
        before = engine.cache.hashtable.slots_for("youtube")
        engine.measure_hit("youtube")
        assert engine.cache.hashtable.slots_for("youtube") == before

    def test_measure_hit_unknown_raises(self, engine):
        with pytest.raises(KeyError):
            engine.measure_hit("not cached")


class TestMissPath:
    def test_miss_uses_radio(self, engine):
        result = engine.serve_query("obscure", "www.obscure.org")
        assert not result.outcome.hit
        assert result.outcome.source is ServiceSource.RADIO_3G
        assert result.outcome.latency_s > 3.0

    def test_miss_penalty_is_10us(self, engine):
        """The failed lookup adds only ~10 us to the radio path."""
        result = engine.serve_query("obscure2", "www.obscure2.org")
        assert result.breakdown["hash_table_lookup_s"] == pytest.approx(10e-6)

    def test_miss_learns_for_next_time(self, engine):
        engine.serve_query("obscure3", "www.obscure3.org")
        repeat = engine.serve_query("obscure3", "www.obscure3.org")
        assert repeat.outcome.hit

    def test_edge_slower_than_3g(self):
        slow = engine_with([])
        slow.radio = EDGE
        fast = engine_with([])
        miss_edge = slow.serve_query("q", "www.x.com")
        miss_3g = fast.serve_query("q", "www.x.com")
        assert miss_edge.outcome.latency_s > miss_3g.outcome.latency_s
        assert miss_edge.outcome.source is ServiceSource.RADIO_EDGE


class TestEnergy:
    def test_hit_energy_far_below_miss(self, engine):
        hit = engine.serve_query("youtube", "www.youtube.com")
        miss = engine.serve_query("fresh", "www.fresh.org")
        assert miss.outcome.energy_j > 10 * hit.outcome.energy_j

    def test_radio_only_cost_matches_miss(self, engine):
        latency, energy = engine.radio_only_cost(THREE_G)
        miss = engine.serve_query("another", "www.another.org")
        assert miss.outcome.latency_s == pytest.approx(latency, rel=0.01)
        assert miss.outcome.energy_j == pytest.approx(energy, rel=0.01)
