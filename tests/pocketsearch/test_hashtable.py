"""Tests for the query hash table (Figure 10)."""

import pytest

from repro.pocketsearch.hashtable import (
    DEFAULT_RESULTS_PER_ENTRY,
    QueryHashTable,
    entry_bytes,
    hash64,
)


class TestHash64:
    def test_deterministic(self):
        assert hash64("youtube") == hash64("youtube")

    def test_salt_changes_hash(self):
        assert hash64("youtube", 0) != hash64("youtube", 1)

    def test_64_bit_range(self):
        assert 0 <= hash64("anything") < 2**64


class TestInsertLookup:
    def test_miss_returns_none(self):
        table = QueryHashTable()
        assert table.lookup("nope") is None

    def test_insert_and_lookup(self):
        table = QueryHashTable()
        table.insert("q", 111, 0.7)
        assert table.lookup("q") == [(111, 0.7)]

    def test_results_sorted_by_score(self):
        table = QueryHashTable()
        table.insert("q", 1, 0.2)
        table.insert("q", 2, 0.8)
        table.insert("q", 3, 0.5)
        results = table.lookup("q")
        assert [r for r, _ in results] == [2, 3, 1]

    def test_duplicate_insert_keeps_max_score(self):
        """The Section 5.4 conflict rule: maximum score wins."""
        table = QueryHashTable()
        table.insert("q", 1, 0.3)
        table.insert("q", 1, 0.9)
        table.insert("q", 1, 0.1)
        assert table.lookup("q") == [(1, 0.9)]
        assert table.n_pairs == 1

    def test_chaining_beyond_capacity(self):
        """A query with >2 results spawns chained entries (Fig 10)."""
        table = QueryHashTable(results_per_entry=2)
        for i in range(5):
            table.insert("michael jackson", i, 0.1 * (i + 1))
        assert table.n_entries == 3  # ceil(5/2)
        assert len(table.lookup("michael jackson")) == 5

    def test_contains(self):
        table = QueryHashTable()
        table.insert("q", 1, 0.5)
        assert table.contains("q")
        assert not table.contains("other")

    def test_negative_score_rejected(self):
        table = QueryHashTable()
        with pytest.raises(ValueError):
            table.insert("q", 1, -0.1)

    def test_lookup_counter(self):
        table = QueryHashTable()
        table.lookup("a")
        table.lookup("b")
        assert table.total_lookups == 2


class TestScoresAndFlags:
    def test_set_score(self):
        table = QueryHashTable()
        table.insert("q", 1, 0.5)
        table.set_score("q", 1, 1.5)
        assert table.lookup("q") == [(1, 1.5)]

    def test_set_score_missing_raises(self):
        table = QueryHashTable()
        with pytest.raises(KeyError):
            table.set_score("q", 1, 0.5)

    def test_mark_accessed(self):
        table = QueryHashTable()
        table.insert("q", 1, 0.5)
        table.mark_accessed("q", 1)
        assert table.slots_for("q") == [(1, 0.5, True)]

    def test_flags_word(self):
        table = QueryHashTable()
        table.insert("q", 1, 0.5, accessed=False)
        table.insert("q", 2, 0.4, accessed=True)
        entry = next(table.entries())
        assert entry.flags_word() == 0b10

    def test_insert_preserves_accessed_flag(self):
        table = QueryHashTable()
        table.insert("q", 1, 0.5, accessed=True)
        table.insert("q", 1, 0.9, accessed=False)
        assert table.slots_for("q") == [(1, 0.9, True)]


class TestRemove:
    def test_remove_existing(self):
        table = QueryHashTable()
        table.insert("q", 1, 0.5)
        assert table.remove("q", 1)
        assert table.lookup("q") is None
        assert not table.contains("q")

    def test_remove_missing(self):
        table = QueryHashTable()
        table.insert("q", 1, 0.5)
        assert not table.remove("q", 2)
        assert not table.remove("other", 1)

    def test_remove_compacts_chain(self):
        table = QueryHashTable(results_per_entry=2)
        for i in range(5):
            table.insert("q", i, 0.1 * (5 - i))
        table.remove("q", 0)
        results = table.lookup("q")
        assert len(results) == 4
        assert table.n_entries == 2  # 4 slots over width-2 entries

    def test_remove_then_reinsert(self):
        table = QueryHashTable()
        table.insert("q", 1, 0.5)
        table.remove("q", 1)
        table.insert("q", 2, 0.4)
        assert table.lookup("q") == [(2, 0.4)]


class TestFootprint:
    def test_entry_bytes_formula(self):
        assert entry_bytes(2) == 24 + 8 + 2 * 12 + 8

    def test_entry_bytes_validation(self):
        with pytest.raises(ValueError):
            entry_bytes(0)

    def test_footprint_counts_entries(self):
        table = QueryHashTable(results_per_entry=2)
        table.insert("a", 1, 0.5)
        table.insert("b", 2, 0.5)
        assert table.footprint_bytes == 2 * entry_bytes(2)

    def test_default_width_is_two(self):
        assert DEFAULT_RESULTS_PER_ENTRY == 2
        assert QueryHashTable().results_per_entry == 2

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            QueryHashTable(results_per_entry=0)
