"""Tests for the flash result database (Figure 13)."""

import pytest

from repro.pocketsearch.database import (
    DEFAULT_N_FILES,
    HEADER_ENTRY_BYTES,
    ResultDatabase,
)
from repro.pocketsearch.hashtable import hash64
from repro.storage.filesystem import FlashFilesystem
from repro.storage.flash import NandFlash


@pytest.fixture
def database():
    return ResultDatabase(FlashFilesystem(NandFlash()), n_files=8)


class TestConstruction:
    def test_creates_files(self, database):
        assert len(database.filesystem.list_files()) == 8

    def test_default_is_32_files(self):
        db = ResultDatabase(FlashFilesystem(NandFlash()))
        assert db.n_files == DEFAULT_N_FILES == 32

    def test_invalid_file_count(self):
        with pytest.raises(ValueError):
            ResultDatabase(FlashFilesystem(NandFlash()), n_files=0)


class TestAddResult:
    def test_add_and_lookup(self, database):
        stored = database.add_result("www.youtube.com", 500)
        assert database.contains(stored.result_hash)
        assert database.lookup(stored.result_hash) is stored
        assert stored.result_hash == hash64("www.youtube.com")

    def test_idempotent_per_url(self, database):
        a = database.add_result("www.x.com", 500)
        b = database.add_result("www.x.com", 500)
        assert a is b
        assert database.n_results == 1

    def test_file_chosen_by_hash(self, database):
        stored = database.add_result("www.x.com", 500)
        assert stored.file_index == stored.result_hash % 8

    def test_logical_bytes_include_header(self, database):
        database.add_result("www.x.com", 500)
        assert database.logical_bytes == 500 + HEADER_ENTRY_BYTES

    def test_invalid_record_size(self, database):
        with pytest.raises(ValueError):
            database.add_result("www.x.com", 0)


class TestFetch:
    def test_fetch_returns_cost(self, database):
        stored = database.add_result("www.x.com", 500)
        fetch = database.fetch(stored.result_hash)
        assert fetch.stored is stored
        assert fetch.latency_s > 0
        assert fetch.energy_j > 0

    def test_fetch_missing_raises(self, database):
        with pytest.raises(KeyError):
            database.fetch(12345)

    def test_fetch_slower_with_more_entries_per_file(self):
        """Header parse time grows with results per file (Figure 12's
        left side)."""
        few_files = ResultDatabase(FlashFilesystem(NandFlash()), n_files=1)
        many_files = ResultDatabase(FlashFilesystem(NandFlash()), n_files=64)
        for i in range(256):
            few_files.add_result(f"www.site{i}.com", 500)
            many_files.add_result(f"www.site{i}.com", 500)
        target = hash64("www.site0.com")
        assert (
            few_files.fetch(target).latency_s
            > many_files.fetch(target).latency_s
        )

    def test_huge_file_count_pays_directory_scan(self):
        """Beyond the sweet spot, directory scanning dominates (the right
        side of the Figure 12 U-curve)."""
        mid = ResultDatabase(FlashFilesystem(NandFlash()), n_files=64)
        huge = ResultDatabase(FlashFilesystem(NandFlash()), n_files=4096)
        for i in range(64):
            mid.add_result(f"www.site{i}.com", 500)
            huge.add_result(f"www.site{i}.com", 500)
        target = hash64("www.site0.com")
        assert huge.fetch(target).latency_s > mid.fetch(target).latency_s


class TestFragmentation:
    def test_more_files_fragment_more(self):
        small = ResultDatabase(FlashFilesystem(NandFlash()), n_files=2)
        large = ResultDatabase(FlashFilesystem(NandFlash()), n_files=256)
        for i in range(300):
            small.add_result(f"www.site{i}.com", 500)
            large.add_result(f"www.site{i}.com", 500)
        assert large.fragmentation_bytes > small.fragmentation_bytes

    def test_fragmentation_non_negative(self, database):
        database.add_result("www.x.com", 500)
        assert database.fragmentation_bytes >= 0

    def test_file_stats(self, database):
        database.add_result("www.x.com", 500)
        stats = database.file_stats()
        assert len(stats) == 8
        assert sum(s["entries"] for s in stats) == 1
