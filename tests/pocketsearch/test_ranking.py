"""Tests for personalized ranking (Equations 1-2)."""

import math

import pytest

from repro.pocketsearch.hashtable import QueryHashTable
from repro.pocketsearch.ranking import PersonalizedRanker


@pytest.fixture
def table():
    t = QueryHashTable()
    t.insert("q", 1, 0.6)
    t.insert("q", 2, 0.4)
    return t


class TestEquations:
    def test_clicked_score_plus_one(self, table):
        """Equation (1): S1 = S1 + 1."""
        PersonalizedRanker(decay_lambda=0.1).record_click(table, "q", 1)
        scores = dict(table.lookup("q"))
        assert scores[1] == pytest.approx(1.6)

    def test_unclicked_score_decays(self, table):
        """Equation (2): S2 = S2 * exp(-lambda)."""
        PersonalizedRanker(decay_lambda=0.1).record_click(table, "q", 1)
        scores = dict(table.lookup("q"))
        assert scores[2] == pytest.approx(0.4 * math.exp(-0.1))

    def test_click_after_miss_inserts_with_score_one(self, table):
        """Section 5.3: a miss-click creates a new pair with score 1."""
        ranker = PersonalizedRanker()
        ranker.record_click(table, "new query", 99)
        assert table.lookup("new query") == [(99, 1.0)]
        assert table.slots_for("new query") == [(99, 1.0, True)]

    def test_click_marks_accessed(self, table):
        PersonalizedRanker().record_click(table, "q", 1)
        slots = dict((h, a) for h, _, a in table.slots_for("q"))
        assert slots[1] is True
        assert slots[2] is False

    def test_new_result_for_cached_query(self, table):
        """Clicking an uncached result of a cached query adds it."""
        PersonalizedRanker().record_click(table, "q", 3)
        scores = dict(table.lookup("q"))
        assert scores[3] == 1.0
        assert len(scores) == 3

    def test_freshness_beats_stale_frequency(self, table):
        """The paper's example: recent clicks outrank older ones."""
        ranker = PersonalizedRanker(decay_lambda=0.2)
        for _ in range(5):
            ranker.record_click(table, "q", 1)
        for _ in range(8):
            ranker.record_click(table, "q", 2)
        results = table.lookup("q")
        assert results[0][0] == 2

    def test_repeated_clicks_dominate(self, table):
        ranker = PersonalizedRanker()
        for _ in range(3):
            ranker.record_click(table, "q", 2)
        assert table.lookup("q")[0][0] == 2


class TestDecayHelpers:
    def test_closed_form(self):
        ranker = PersonalizedRanker(decay_lambda=0.3)
        assert ranker.decayed_score(2.0, 4) == pytest.approx(
            2.0 * math.exp(-1.2)
        )

    def test_zero_lambda_preserves(self):
        ranker = PersonalizedRanker(decay_lambda=0.0)
        assert ranker.decayed_score(1.5, 100) == 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            PersonalizedRanker(decay_lambda=-0.1)
        with pytest.raises(ValueError):
            PersonalizedRanker().decayed_score(1.0, -1)
