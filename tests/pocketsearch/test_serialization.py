"""Tests for the hash-table wire format (Figure 14's exchange)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.pocketsearch.hashtable import QueryHashTable


def loaded_table(width=2):
    table = QueryHashTable(results_per_entry=width)
    table.insert("youtube", 111, 0.9, accessed=True)
    table.insert("youtube", 222, 0.4)
    table.insert("michael jackson", 1, 0.5)
    table.insert("michael jackson", 2, 0.3)
    table.insert("michael jackson", 3, 0.2)  # chains
    return table


class TestRoundTrip:
    @staticmethod
    def assert_slots_equal(a, b):
        """Compare slot lists; scores travel as f32 on the wire."""
        assert len(a) == len(b)
        for left, right in zip(a, b):
            assert left[0] == right[0]
            assert left[1] == pytest.approx(right[1], rel=1e-6)
            if len(left) > 2:
                assert left[2] == right[2]

    def test_lookup_preserved(self):
        table = loaded_table()
        restored = QueryHashTable.deserialize(table.serialize())
        self.assert_slots_equal(
            restored.lookup("youtube"), table.lookup("youtube")
        )
        self.assert_slots_equal(
            restored.lookup("michael jackson"), table.lookup("michael jackson")
        )

    def test_flags_preserved(self):
        table = loaded_table()
        restored = QueryHashTable.deserialize(table.serialize())
        self.assert_slots_equal(
            restored.slots_for("youtube"), table.slots_for("youtube")
        )

    def test_width_preserved(self):
        table = loaded_table(width=3)
        restored = QueryHashTable.deserialize(table.serialize())
        assert restored.results_per_entry == 3

    def test_empty_table(self):
        restored = QueryHashTable.deserialize(QueryHashTable().serialize())
        assert restored.n_entries == 0

    def test_blob_size_tracks_contents(self):
        small = loaded_table().serialize()
        big_table = loaded_table()
        for i in range(100):
            big_table.insert(f"q{i}", i, 0.5)
        assert len(big_table.serialize()) > len(small)

    def test_wire_smaller_than_modelled_footprint(self):
        """The wire format carries no bucket overhead, so the exchange is
        cheaper than the in-memory footprint."""
        table = loaded_table()
        assert len(table.serialize()) < table.footprint_bytes


class TestMalformedBlobs:
    def test_bad_magic(self):
        with pytest.raises(ValueError):
            QueryHashTable.deserialize(b"XXXX" + b"\x00" * 16)

    def test_truncated_header(self):
        with pytest.raises(ValueError):
            QueryHashTable.deserialize(b"PS")

    def test_truncated_body(self):
        blob = loaded_table().serialize()
        with pytest.raises(ValueError):
            QueryHashTable.deserialize(blob[:-4])

    def test_trailing_garbage(self):
        blob = loaded_table().serialize()
        with pytest.raises(ValueError):
            QueryHashTable.deserialize(blob + b"!!")


queries = st.text(alphabet="abcde ", min_size=1, max_size=6)


@given(
    ops=st.lists(
        st.tuples(
            queries,
            st.integers(0, 20),
            st.floats(min_value=0, max_value=4, allow_nan=False, width=32),
            st.booleans(),
        ),
        max_size=40,
    )
)
@settings(max_examples=60, deadline=None)
def test_roundtrip_property(ops):
    table = QueryHashTable()
    seen = set()
    for query, result, score, accessed in ops:
        table.insert(query, result, score, accessed=accessed)
        seen.add(query)
    restored = QueryHashTable.deserialize(table.serialize())
    assert restored.n_pairs == table.n_pairs
    for query in seen:
        TestRoundTrip.assert_slots_equal(
            restored.slots_for(query), table.slots_for(query)
        )
