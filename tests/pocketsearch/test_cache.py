"""Tests for the PocketSearch cache composition."""

import pytest

from repro.pocketsearch.cache import PocketSearchCache
from repro.pocketsearch.content import CacheContent, CacheEntry
from repro.pocketsearch.hashtable import hash64


def content(entries):
    return CacheContent(entries=entries, total_log_volume=1000)


def entry(query, url, volume=10, score=0.5):
    return CacheEntry(
        query=query, url=url, volume=volume, score=score, navigational=False
    )


@pytest.fixture
def loaded_cache():
    cache = PocketSearchCache()
    cache.load_community(
        content([entry("youtube", "www.youtube.com"), entry("news", "www.cnn.com")])
    )
    return cache


class TestCommunityLoad:
    def test_hit_after_load(self, loaded_cache):
        lookup = loaded_cache.lookup("youtube")
        assert lookup.hit
        assert lookup.results[0][0] == hash64("www.youtube.com")

    def test_miss_for_unknown(self, loaded_cache):
        assert not loaded_cache.lookup("unknown").hit

    def test_results_stored_once(self):
        cache = PocketSearchCache()
        cache.load_community(
            content(
                [entry("cnn", "www.cnn.com"), entry("news", "www.cnn.com")]
            )
        )
        assert cache.database.n_results == 1

    def test_registry_tracks_queries(self, loaded_cache):
        assert set(loaded_cache.query_registry.values()) == {"youtube", "news"}


class TestPersonalization:
    def test_miss_then_hit(self, loaded_cache):
        assert not loaded_cache.lookup("obscure").hit
        loaded_cache.record_click("obscure", "www.obscure.org")
        assert loaded_cache.lookup("obscure").hit

    def test_click_stores_result(self, loaded_cache):
        loaded_cache.record_click("obscure", "www.obscure.org")
        assert loaded_cache.database.contains(hash64("www.obscure.org"))

    def test_disabled_personalization_never_learns(self):
        cache = PocketSearchCache(personalization_enabled=False)
        cache.lookup("q")
        cache.record_click("q", "www.x.com")
        assert not cache.lookup("q").hit

    def test_click_reranks(self, loaded_cache):
        loaded_cache.record_click("youtube", "www.youtube.com/login")
        results = loaded_cache.lookup("youtube").results
        assert results[0][0] == hash64("www.youtube.com/login")


class TestCounters:
    def test_hit_rate(self, loaded_cache):
        loaded_cache.lookup("youtube")
        loaded_cache.lookup("youtube")
        loaded_cache.lookup("nope")
        assert loaded_cache.hit_rate == pytest.approx(2 / 3)

    def test_reset(self, loaded_cache):
        loaded_cache.lookup("youtube")
        loaded_cache.reset_counters()
        assert loaded_cache.hit_rate == 0.0

    def test_footprints_positive(self, loaded_cache):
        assert loaded_cache.dram_bytes > 0
        assert loaded_cache.flash_bytes > 0


class TestFromContent:
    def test_builder(self):
        cache = PocketSearchCache.from_content(
            content([entry("a", "www.a.com")]), results_per_entry=4
        )
        assert cache.hashtable.results_per_entry == 4
        assert cache.lookup("a").hit
