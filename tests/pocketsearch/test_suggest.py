"""Tests for the auto-suggest prefix index (Figure 1)."""

import pytest

from repro.pocketsearch.cache import PocketSearchCache
from repro.pocketsearch.content import CacheContent, CacheEntry
from repro.pocketsearch.engine import PocketSearchEngine
from repro.pocketsearch.hashtable import hash64
from repro.pocketsearch.suggest import SuggestIndex


def make_cache():
    cache = PocketSearchCache()
    cache.load_community(
        CacheContent(
            entries=[
                CacheEntry("youtube", "www.youtube.com", 100, 0.9, True),
                CacheEntry("young money", "www.youngmoney.com", 10, 0.3, False),
                CacheEntry("yosemite", "www.nps.gov/yose", 5, 0.5, False),
                CacheEntry("news", "www.cnn.com", 50, 0.8, False),
            ],
            total_log_volume=1000,
        )
    )
    return cache


class TestCompletion:
    def test_prefix_match(self):
        index = SuggestIndex(make_cache())
        suggestions = index.complete("yo")
        assert {s.query for s in suggestions} == {
            "youtube",
            "young money",
            "yosemite",
        }

    def test_ranked_by_score(self):
        index = SuggestIndex(make_cache())
        suggestions = index.complete("yo")
        scores = [s.score for s in suggestions]
        assert scores == sorted(scores, reverse=True)
        assert suggestions[0].query == "youtube"

    def test_top_k(self):
        index = SuggestIndex(make_cache())
        assert len(index.complete("yo", k=2)) == 2

    def test_no_match(self):
        index = SuggestIndex(make_cache())
        assert index.complete("zzz") == []

    def test_empty_prefix(self):
        index = SuggestIndex(make_cache())
        assert index.complete("") == []
        assert index.complete("   ") == []

    def test_case_insensitive(self):
        index = SuggestIndex(make_cache())
        assert index.complete("YO")[0].query == "youtube"

    def test_k_validation(self):
        index = SuggestIndex(make_cache())
        with pytest.raises(ValueError):
            index.complete("yo", k=0)

    def test_top_result_hash(self):
        index = SuggestIndex(make_cache())
        top = index.complete("youtube")[0]
        assert top.top_result_hash == hash64("www.youtube.com")


class TestFreshness:
    def test_personalization_updates_suggestions(self):
        cache = make_cache()
        index = SuggestIndex(cache)
        assert index.complete("yog") == []
        cache.record_click("yoga", "www.yoga.org")
        assert index.complete("yog")[0].query == "yoga"

    def test_click_reranks_suggestions(self):
        cache = make_cache()
        index = SuggestIndex(cache)
        for _ in range(3):
            cache.record_click("yosemite", "www.nps.gov/yose")
        assert index.complete("yo")[0].query == "yosemite"


class TestEngineIntegration:
    def test_engine_suggest(self):
        engine = PocketSearchEngine(make_cache())
        suggestions, latency = engine.suggest("yo", k=3)
        assert suggestions[0].query == "youtube"
        assert latency < 1e-3  # microseconds, not radio seconds


class TestUpdateFreshness:
    """A server update that swaps N queries for N different ones keeps
    the registry the same *size*; only the mutation version reveals the
    change.  Regression for the stale-suggest bug."""

    def _swap_content(self):
        # Same cardinality as make_cache()'s community load: 4 in, 4 out.
        return CacheContent(
            entries=[
                CacheEntry("zebra", "www.zebra.org", 100, 0.9, False),
                CacheEntry("zelda", "www.zelda.com", 50, 0.8, False),
                CacheEntry("zen garden", "www.zen.org", 20, 0.6, False),
                CacheEntry("zeppelin", "www.ledzeppelin.com", 10, 0.5, False),
            ],
            total_log_volume=1000,
        )

    def test_registry_version_bumps_on_swap(self):
        from repro.pocketsearch.manager import CacheUpdateServer

        cache = make_cache()
        before = cache.query_registry.version
        patch = CacheUpdateServer().refresh_with_content(
            cache, self._swap_content()
        )
        assert cache.query_registry.version > before
        assert patch.queries_pruned == 4  # all old queries unaccessed
        assert len(cache.query_registry) == 4  # same size, new content

    def test_suggest_fresh_after_equal_size_swap(self):
        from repro.pocketsearch.manager import CacheUpdateServer

        engine = PocketSearchEngine(make_cache())
        suggestions, _ = engine.suggest("yo")
        assert suggestions, "community content should suggest before update"
        CacheUpdateServer().refresh_with_content(
            engine.cache, self._swap_content()
        )
        stale, _ = engine.suggest("yo")
        assert stale == []  # old queries are gone, not served stale
        fresh, _ = engine.suggest("ze")
        assert {s.query for s in fresh} == {
            "zebra",
            "zelda",
            "zen garden",
            "zeppelin",
        }

    def test_index_refresh_detects_swap_directly(self):
        from repro.pocketsearch.manager import CacheUpdateServer

        cache = make_cache()
        index = SuggestIndex(cache)
        assert index.complete("youtube")
        CacheUpdateServer().refresh_with_content(cache, self._swap_content())
        index.refresh()
        assert index.complete("youtube") == []
        assert index.complete("zebra")[0].query == "zebra"

    def test_accessed_query_survives_swap_and_stays_suggested(self):
        from repro.pocketsearch.manager import CacheUpdateServer

        engine = PocketSearchEngine(make_cache())
        engine.cache.record_click("youtube", "www.youtube.com")
        CacheUpdateServer().refresh_with_content(
            engine.cache, self._swap_content()
        )
        kept, _ = engine.suggest("youtube")
        assert kept and kept[0].query == "youtube"
