"""Tests for cache content generation (Section 5.1)."""

import pytest

from repro.pocketsearch.content import (
    CacheEntry,
    ContentPolicy,
    build_cache_content,
    build_cache_content_from_model,
    coverage_curve,
    triplets_from_log,
)


class TestPolicyValidation:
    def test_requires_some_threshold(self):
        with pytest.raises(ValueError):
            ContentPolicy()

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ContentPolicy(saturation_volume=0)
        with pytest.raises(ValueError):
            ContentPolicy(target_coverage=1.5)


class TestTriplets:
    def test_sorted_by_volume(self, small_log):
        triplets = triplets_from_log(small_log.month(0))
        volumes = [t.volume for t in triplets]
        assert all(b <= a for a, b in zip(volumes, volumes[1:]))

    def test_volumes_sum_to_events(self, small_log):
        month = small_log.month(0)
        triplets = triplets_from_log(month)
        assert sum(t.volume for t in triplets) == month.n_events

    def test_empty_log(self, small_log):
        assert triplets_from_log(small_log.window(1e12, 2e12)) == []


class TestSelectionWalk:
    def test_target_coverage(self, small_log):
        content = build_cache_content(
            small_log.month(0), ContentPolicy(target_coverage=0.5)
        )
        assert content.coverage == pytest.approx(0.5, abs=0.02)

    def test_max_pairs(self, small_log):
        content = build_cache_content(
            small_log.month(0), ContentPolicy(max_pairs=50)
        )
        assert content.n_pairs == 50

    def test_saturation_threshold(self, small_log):
        month = small_log.month(0)
        content = build_cache_content(
            month, ContentPolicy(saturation_volume=0.001)
        )
        floor = 0.001 * month.n_events
        assert all(e.volume >= floor for e in content.entries)

    def test_flash_budget_respected(self, small_log):
        budget = 50_000
        content = build_cache_content(
            small_log.month(0), ContentPolicy(max_flash_bytes=budget)
        )
        assert content.flash_bytes <= budget

    def test_dram_budget_respected(self, small_log):
        content = build_cache_content(
            small_log.month(0), ContentPolicy(max_dram_bytes=4000)
        )
        assert content.approx_dram_bytes <= 4000

    def test_entries_descending_volume(self, small_log):
        content = build_cache_content(
            small_log.month(0), ContentPolicy(max_pairs=200)
        )
        volumes = [e.volume for e in content.entries]
        assert all(b <= a for a, b in zip(volumes, volumes[1:]))

    def test_scores_normalized_per_query(self, small_log):
        content = build_cache_content(
            small_log.month(0), ContentPolicy(target_coverage=0.5)
        )
        assert all(0 < e.score <= 1 for e in content.entries)

    def test_empty_log(self, small_log):
        content = build_cache_content(
            small_log.window(1e12, 2e12), ContentPolicy(max_pairs=10)
        )
        assert content.n_pairs == 0
        assert content.coverage == 0.0


class TestContentAccounting:
    def test_shared_flash_smaller_than_unshared(self, small_log):
        content = build_cache_content(
            small_log.month(0), ContentPolicy(target_coverage=0.5)
        )
        assert content.flash_bytes <= content.flash_bytes_unshared

    def test_unique_counts(self, small_log):
        content = build_cache_content(
            small_log.month(0), ContentPolicy(max_pairs=100)
        )
        assert content.n_unique_queries <= content.n_pairs
        assert content.n_unique_results <= content.n_pairs


class TestModelContent:
    def test_matches_policy(self, small_community):
        content = build_cache_content_from_model(
            small_community, ContentPolicy(target_coverage=0.4)
        )
        assert content.coverage == pytest.approx(0.4, abs=0.02)

    def test_scores_in_range(self, small_community):
        content = build_cache_content_from_model(
            small_community, ContentPolicy(max_pairs=300)
        )
        assert all(0 < e.score <= 1 for e in content.entries)

    def test_includes_multi_result_queries(self, small_community):
        content = build_cache_content_from_model(
            small_community, ContentPolicy(target_coverage=0.55)
        )
        assert content.n_unique_queries < content.n_pairs


class TestCoverageCurve:
    def test_monotone(self, small_log):
        curve = coverage_curve(small_log.month(0), [1, 10, 100, 1000])
        values = [v for _, v in curve]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_zero_and_overflow(self, small_log):
        month = small_log.month(0)
        curve = dict(coverage_curve(month, [0, 10**9]))
        assert curve[0] == 0.0
        assert curve[10**9] == pytest.approx(1.0)
