"""Tests for the cache update protocol (Section 5.4)."""

import pytest

from repro.pocketsearch.cache import PocketSearchCache
from repro.pocketsearch.content import CacheContent, CacheEntry, ContentPolicy
from repro.pocketsearch.hashtable import hash64
from repro.pocketsearch.manager import CacheUpdateServer


def content(entries):
    return CacheContent(entries=entries, total_log_volume=1000)


def entry(query, url, volume=10, score=0.5):
    return CacheEntry(
        query=query, url=url, volume=volume, score=score, navigational=False
    )


@pytest.fixture
def cache():
    c = PocketSearchCache()
    c.load_community(
        content(
            [
                entry("youtube", "www.youtube.com", score=0.9),
                entry("oldnews", "www.oldnews.com", score=0.5),
            ]
        )
    )
    return c


class TestRefresh:
    def test_unaccessed_pairs_dropped_unless_still_popular(self, cache):
        """Community pairs the user never touched are pruned, then only
        re-added if the fresh popular set still contains them."""
        server = CacheUpdateServer()
        fresh = content([entry("youtube", "www.youtube.com", score=0.8)])
        patch = server.refresh_with_content(cache, fresh)
        assert cache.lookup("youtube").hit
        assert not cache.lookup("oldnews").hit
        assert patch.pairs_removed == 2

    def test_accessed_pairs_retained(self, cache):
        cache.record_click("oldnews", "www.oldnews.com")
        server = CacheUpdateServer()
        fresh = content([entry("youtube", "www.youtube.com")])
        server.refresh_with_content(cache, fresh)
        assert cache.lookup("oldnews").hit

    def test_low_score_accessed_pairs_dropped(self, cache):
        cache.record_click("oldnews", "www.oldnews.com")
        # Decay the pair's score below the retention threshold.
        cache.hashtable.set_score("oldnews", hash64("www.oldnews.com"), 0.01)
        server = CacheUpdateServer(retention_min_score=0.05)
        server.refresh_with_content(cache, content([]))
        assert not cache.lookup("oldnews").hit

    def test_conflict_keeps_max_score(self, cache):
        cache.record_click("youtube", "www.youtube.com")  # score 0.9 + 1
        server = CacheUpdateServer()
        fresh = content([entry("youtube", "www.youtube.com", score=0.3)])
        server.refresh_with_content(cache, fresh)
        scores = dict(cache.lookup("youtube").results)
        assert scores[hash64("www.youtube.com")] == pytest.approx(1.9)

    def test_patch_accounting(self, cache):
        server = CacheUpdateServer()
        fresh = content(
            [
                entry("youtube", "www.youtube.com"),
                entry("brand new", "www.brandnew.com"),
            ]
        )
        patch = server.refresh_with_content(cache, fresh)
        assert patch.results_added == 1  # only the brand-new URL
        assert patch.bytes_uploaded > 0
        assert patch.bytes_downloaded > 0
        assert sum(patch.patch_files.values()) > 0

    def test_update_exchange_small(self, cache):
        """The paper: the update exchange is well under ~1.5 MB."""
        server = CacheUpdateServer()
        fresh = content([entry(f"q{i}", f"www.s{i}.com") for i in range(500)])
        patch = server.refresh_with_content(cache, fresh)
        assert patch.bytes_uploaded + patch.bytes_downloaded < 1.5 * 1024 * 1024

    def test_refresh_from_log(self, small_log):
        """End-to-end: refresh mines a real log window."""
        cache = PocketSearchCache()
        server = CacheUpdateServer(policy=ContentPolicy(max_pairs=50))
        patch = server.refresh(cache, small_log.month(0))
        assert patch.pairs_added == 50
        assert cache.hashtable.n_pairs == 50

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheUpdateServer(retention_min_score=-1)


class TestRefreshEdgeCases:
    """refresh_with_content boundary behaviour: empty fresh logs, whole-
    cache evictions, and updates landing mid-session."""

    def test_empty_fresh_log_drops_unaccessed_community(self, cache, small_log):
        """Mining an empty log window yields empty content; the round
        must still run (prune + GC), not crash or ship garbage."""
        server = CacheUpdateServer()
        empty = small_log.window(1e15, 1e15 + 1)
        assert empty.n_events == 0
        patch = server.refresh(cache, empty)
        assert patch.pairs_added == 0
        assert patch.results_added == 0
        assert patch.pairs_removed == 2  # both community pairs, unaccessed
        assert not cache.lookup("youtube").hit
        assert cache.hashtable.n_pairs == 0
        assert len(cache.query_registry) == 0

    def test_empty_fresh_log_keeps_accessed_entries(self, cache, small_log):
        cache.record_click("youtube", "www.youtube.com")
        server = CacheUpdateServer()
        patch = server.refresh(cache, small_log.window(1e15, 1e15 + 1))
        assert cache.lookup("youtube").hit
        assert patch.pairs_removed == 1  # only the untouched pair

    def test_full_community_eviction(self, cache):
        """A patch whose fresh set is disjoint from the old one evicts
        the entire community cache and frees its database records."""
        server = CacheUpdateServer()
        fresh = content(
            [entry("alpha", "www.alpha.com"), entry("beta", "www.beta.com")]
        )
        patch = server.refresh_with_content(cache, fresh)
        assert patch.pairs_removed == 2
        assert patch.pairs_added == 2
        assert patch.results_removed == 2
        assert patch.queries_pruned == 2
        assert not cache.lookup("youtube").hit
        assert not cache.lookup("oldnews").hit
        assert cache.lookup("alpha").hit
        assert cache.lookup("beta").hit
        from repro.pocketsearch.hashtable import hash64 as h64

        assert not cache.database.contains(h64("www.youtube.com"))
        assert cache.database.contains(h64("www.alpha.com"))

    def test_mid_session_update_preserves_personalization(self, cache):
        """An update applied between queries must not lose the pairs the
        user's own clicks created (personalization survives refresh)."""
        from repro.pocketsearch.engine import PocketSearchEngine

        engine = PocketSearchEngine(cache)
        # Session first half: a personal query, cached by the click.
        miss = engine.serve_query("my bank", "www.mybank.example")
        assert not miss.outcome.hit
        assert engine.serve_query("my bank", "www.mybank.example").outcome.hit

        server = CacheUpdateServer()
        fresh = content([entry("alpha", "www.alpha.com")])
        patch = server.refresh_with_content(cache, fresh)
        assert patch.pairs_removed >= 2  # community pairs went away

        # Session second half: the personal entry still hits, and the
        # fresh community entry is live.
        assert engine.serve_query("my bank", "www.mybank.example").outcome.hit
        assert cache.lookup("alpha").hit
        assert hash64("my bank") in cache.query_registry

    def test_mid_session_update_then_decay_eviction(self, cache):
        """Personal entries survive refreshes only while their score
        stays above retention — the paper's 3-month drop rule."""
        from repro.pocketsearch.engine import PocketSearchEngine

        engine = PocketSearchEngine(cache)
        engine.serve_query("my bank", "www.mybank.example")
        server = CacheUpdateServer(retention_min_score=0.05)
        server.refresh_with_content(cache, content([]))
        assert cache.lookup("my bank").hit
        cache.hashtable.set_score("my bank", hash64("www.mybank.example"), 0.01)
        server.refresh_with_content(cache, content([]))
        assert not cache.lookup("my bank").hit
        assert hash64("my bank") not in cache.query_registry
