"""Tests for the cache update protocol (Section 5.4)."""

import pytest

from repro.pocketsearch.cache import PocketSearchCache
from repro.pocketsearch.content import CacheContent, CacheEntry, ContentPolicy
from repro.pocketsearch.hashtable import hash64
from repro.pocketsearch.manager import CacheUpdateServer


def content(entries):
    return CacheContent(entries=entries, total_log_volume=1000)


def entry(query, url, volume=10, score=0.5):
    return CacheEntry(
        query=query, url=url, volume=volume, score=score, navigational=False
    )


@pytest.fixture
def cache():
    c = PocketSearchCache()
    c.load_community(
        content(
            [
                entry("youtube", "www.youtube.com", score=0.9),
                entry("oldnews", "www.oldnews.com", score=0.5),
            ]
        )
    )
    return c


class TestRefresh:
    def test_unaccessed_pairs_dropped_unless_still_popular(self, cache):
        """Community pairs the user never touched are pruned, then only
        re-added if the fresh popular set still contains them."""
        server = CacheUpdateServer()
        fresh = content([entry("youtube", "www.youtube.com", score=0.8)])
        patch = server.refresh_with_content(cache, fresh)
        assert cache.lookup("youtube").hit
        assert not cache.lookup("oldnews").hit
        assert patch.pairs_removed == 2

    def test_accessed_pairs_retained(self, cache):
        cache.record_click("oldnews", "www.oldnews.com")
        server = CacheUpdateServer()
        fresh = content([entry("youtube", "www.youtube.com")])
        server.refresh_with_content(cache, fresh)
        assert cache.lookup("oldnews").hit

    def test_low_score_accessed_pairs_dropped(self, cache):
        cache.record_click("oldnews", "www.oldnews.com")
        # Decay the pair's score below the retention threshold.
        cache.hashtable.set_score("oldnews", hash64("www.oldnews.com"), 0.01)
        server = CacheUpdateServer(retention_min_score=0.05)
        server.refresh_with_content(cache, content([]))
        assert not cache.lookup("oldnews").hit

    def test_conflict_keeps_max_score(self, cache):
        cache.record_click("youtube", "www.youtube.com")  # score 0.9 + 1
        server = CacheUpdateServer()
        fresh = content([entry("youtube", "www.youtube.com", score=0.3)])
        server.refresh_with_content(cache, fresh)
        scores = dict(cache.lookup("youtube").results)
        assert scores[hash64("www.youtube.com")] == pytest.approx(1.9)

    def test_patch_accounting(self, cache):
        server = CacheUpdateServer()
        fresh = content(
            [
                entry("youtube", "www.youtube.com"),
                entry("brand new", "www.brandnew.com"),
            ]
        )
        patch = server.refresh_with_content(cache, fresh)
        assert patch.results_added == 1  # only the brand-new URL
        assert patch.bytes_uploaded > 0
        assert patch.bytes_downloaded > 0
        assert sum(patch.patch_files.values()) > 0

    def test_update_exchange_small(self, cache):
        """The paper: the update exchange is well under ~1.5 MB."""
        server = CacheUpdateServer()
        fresh = content([entry(f"q{i}", f"www.s{i}.com") for i in range(500)])
        patch = server.refresh_with_content(cache, fresh)
        assert patch.bytes_uploaded + patch.bytes_downloaded < 1.5 * 1024 * 1024

    def test_refresh_from_log(self, small_log):
        """End-to-end: refresh mines a real log window."""
        cache = PocketSearchCache()
        server = CacheUpdateServer(policy=ContentPolicy(max_pairs=50))
        patch = server.refresh(cache, small_log.month(0))
        assert patch.pairs_added == 50
        assert cache.hashtable.n_pairs == 50

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheUpdateServer(retention_min_score=-1)
