"""Tests for the Table 1 technology roadmap."""

import pytest

from repro.nvmscaling.trends import (
    TECHNOLOGY_ROADMAP,
    TrendPoint,
    roadmap_years,
    trend_for_year,
)


class TestRoadmapData:
    def test_covers_2010_through_2026(self):
        assert roadmap_years()[0] == 2010
        assert roadmap_years()[-1] == 2026

    def test_two_year_steps(self):
        years = roadmap_years()
        assert all(b - a == 2 for a, b in zip(years, years[1:]))

    def test_flash_dominates_until_2016(self):
        for point in TECHNOLOGY_ROADMAP:
            if point.year <= 2016:
                assert point.technology == "flash"

    def test_other_nvm_from_2018(self):
        for point in TECHNOLOGY_ROADMAP:
            if point.year >= 2018:
                assert point.technology == "other-nvm"

    def test_feature_size_never_increases(self):
        sizes = [p.feature_nm for p in TECHNOLOGY_ROADMAP]
        assert all(b <= a for a, b in zip(sizes, sizes[1:]))

    def test_feature_size_stops_at_5nm(self):
        assert TECHNOLOGY_ROADMAP[-1].feature_nm == 5

    def test_scaling_factor_monotone(self):
        factors = [p.scaling_factor for p in TECHNOLOGY_ROADMAP]
        assert all(b >= a for a, b in zip(factors, factors[1:]))

    def test_paper_2010_baseline(self):
        base = TECHNOLOGY_ROADMAP[0]
        assert base.feature_nm == 32
        assert base.chip_stack == 4
        assert base.cell_layers == 1
        assert base.bits_per_cell == 2

    def test_bits_per_cell_peaks_then_declines(self):
        bits = [p.bits_per_cell for p in TECHNOLOGY_ROADMAP]
        assert max(bits) == 3  # the 2012 TLC peak
        assert bits[-1] == 1  # SLC at tiny feature sizes

    def test_scaling_stall_at_transition(self):
        """2016 -> 2018: the flash-to-new-NVM transition stalls scaling."""
        p2016 = trend_for_year(2016)
        p2018 = trend_for_year(2018)
        assert p2016.scaling_factor == p2018.scaling_factor


class TestTrendForYear:
    def test_exact_year(self):
        assert trend_for_year(2014).feature_nm == 16

    def test_between_years_uses_prior_column(self):
        assert trend_for_year(2015).year == 2014

    def test_beyond_roadmap_uses_last_column(self):
        assert trend_for_year(2030).year == 2026

    def test_before_2010_raises(self):
        with pytest.raises(ValueError):
            trend_for_year(2008)


class TestMultipliers:
    def test_baseline_capacity_multiplier_is_one(self):
        assert TECHNOLOGY_ROADMAP[0].capacity_multiplier == 1.0

    def test_package_multiplier_includes_stack(self):
        p = TrendPoint(2020, "other-nvm", 8, 16, 8, 4, 1)
        assert p.package_multiplier == pytest.approx(
            p.capacity_multiplier * 2.0
        )

    def test_multiplier_grows_over_time(self):
        mults = [p.package_multiplier for p in TECHNOLOGY_ROADMAP]
        assert all(b >= a for a, b in zip(mults, mults[1:]))
