"""Tests for the Table 2 item-capacity arithmetic."""

import pytest

from repro.nvmscaling.capacity import (
    CLOUDLET_ITEM_SIZES,
    TABLE2_BUDGET_BYTES,
    items_storable,
    table2_rows,
)

GB = 1024**3


class TestBudget:
    def test_budget_is_25_6_gb(self):
        assert TABLE2_BUDGET_BYTES == pytest.approx(25.6 * GB)


class TestItemsStorable:
    def test_paper_web_search_row(self):
        """~270,000 search result pages fit in the budget."""
        n = items_storable(CLOUDLET_ITEM_SIZES["web_search"].item_bytes)
        assert 260_000 <= n <= 280_000

    def test_paper_map_tiles_row(self):
        """~5.5 million 5 KB map tiles fit."""
        n = items_storable(CLOUDLET_ITEM_SIZES["mapping"].item_bytes)
        assert 5_200_000 <= n <= 5_600_000

    def test_paper_web_content_row(self):
        """~17,500 full web pages fit."""
        n = items_storable(CLOUDLET_ITEM_SIZES["web_content"].item_bytes)
        assert 17_000 <= n <= 18_000

    def test_web_content_exceeds_user_needs(self):
        """90% of users visit < 1000 URLs; 17x fewer than storable pages."""
        n = items_storable(CLOUDLET_ITEM_SIZES["web_content"].item_bytes)
        assert n > 17 * 1000

    def test_zero_budget(self):
        assert items_storable(1024, 0) == 0

    def test_item_larger_than_budget(self):
        assert items_storable(100, 99) == 0

    def test_invalid_item_size(self):
        with pytest.raises(ValueError):
            items_storable(0)
        with pytest.raises(ValueError):
            items_storable(-5)

    def test_negative_budget(self):
        with pytest.raises(ValueError):
            items_storable(100, -1)


class TestTable2:
    def test_has_all_five_cloudlets(self):
        rows = table2_rows()
        assert {r[0] for r in rows} == {
            "web_search",
            "mobile_ads",
            "yellow_business",
            "web_content",
            "mapping",
        }

    def test_rows_consistent_with_items_storable(self):
        for name, item_bytes, count in table2_rows():
            assert count == items_storable(item_bytes)

    def test_ads_and_tiles_share_item_size(self):
        rows = {r[0]: r for r in table2_rows()}
        assert rows["mobile_ads"][1] == rows["mapping"][1]
        assert rows["mobile_ads"][2] == rows["mapping"][2]
