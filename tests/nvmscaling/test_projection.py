"""Tests for the Figure 2 capacity projections."""

import pytest

from repro.nvmscaling.projection import (
    GB,
    TB,
    HIGH_END_2010_BYTES,
    LOW_END_RATIO,
    CapacityProjection,
    ScalingScenario,
    figure2_series,
    project_capacity,
    project_capacity_series,
)


class TestProjection:
    def test_2010_baseline_is_32gb(self):
        p = project_capacity(2010)
        assert p.high_end_bytes == HIGH_END_2010_BYTES == 32 * GB

    def test_paper_headline_1tb_by_2018(self):
        """The paper: high-end phones may reach 1 TB as early as 2018."""
        p = project_capacity(2018, ScalingScenario.ALL_TECHNIQUES)
        assert p.high_end_bytes == pytest.approx(1 * TB)

    def test_paper_low_end_16gb_in_2018(self):
        p = project_capacity(2018)
        assert p.low_end_gb == pytest.approx(16.0)

    def test_paper_low_end_reaches_256gb(self):
        series = project_capacity_series(ScalingScenario.ALL_TECHNIQUES)
        assert series[-1].low_end_gb == pytest.approx(256.0)

    def test_low_end_ratio_is_64(self):
        p = project_capacity(2020)
        assert p.high_end_bytes / p.low_end_bytes == LOW_END_RATIO

    def test_scenarios_are_ordered(self):
        """Stacking and layering only add capacity on top of scaling."""
        year = 2022
        scaling = project_capacity(year, ScalingScenario.SCALING_ONLY)
        stacking = project_capacity(year, ScalingScenario.SCALING_STACKING)
        layers = project_capacity(year, ScalingScenario.SCALING_STACKING_LAYERS)
        assert (
            scaling.high_end_bytes
            <= stacking.high_end_bytes
            <= layers.high_end_bytes
        )

    def test_bits_per_cell_decline_reduces_late_projections(self):
        """Post-2020 the bits-per-cell lever works *against* capacity
        (SLC fallback), so ALL_TECHNIQUES trails the layers-only curve."""
        year = 2022
        layers = project_capacity(year, ScalingScenario.SCALING_STACKING_LAYERS)
        everything = project_capacity(year, ScalingScenario.ALL_TECHNIQUES)
        assert everything.high_end_bytes < layers.high_end_bytes

    def test_scaling_only_matches_factor(self):
        p = project_capacity(2014, ScalingScenario.SCALING_ONLY)
        assert p.high_end_bytes == HIGH_END_2010_BYTES * 4

    def test_series_has_all_roadmap_years(self):
        series = project_capacity_series()
        assert [p.year for p in series] == [
            2010, 2012, 2014, 2016, 2018, 2020, 2022, 2024, 2026,
        ]

    def test_figure2_has_all_scenarios(self):
        curves = figure2_series()
        assert set(curves) == {s.value for s in ScalingScenario}

    def test_all_projections_monotone_per_scenario(self):
        for scenario in ScalingScenario:
            series = project_capacity_series(scenario)
            values = [p.high_end_bytes for p in series]
            assert all(b >= a for a, b in zip(values, values[1:]))

    def test_gb_properties(self):
        p = CapacityProjection(2018, ScalingScenario.ALL_TECHNIQUES, 1 * TB)
        assert p.high_end_gb == 1024.0
        assert p.low_end_gb == 16.0
