"""Property-based tests on tile geometry."""

from hypothesis import given, settings, strategies as st

from repro.pocketmaps.grid import TILE_METERS, Region, TileId

coords = st.floats(min_value=-50_000, max_value=50_000)
spans = st.floats(min_value=1.0, max_value=5_000.0)


@given(x=coords, y=coords, w=spans, h=spans)
@settings(max_examples=80, deadline=None)
def test_region_tiles_cover_region_corners(x, y, w, h):
    """Every corner and the centre of a region lie on one of its tiles."""
    region = Region(x, y, w, h)
    tiles = set(region.tiles())
    for px, py in [
        (x, y),
        (x + w * 0.999, y),
        (x, y + h * 0.999),
        (x + w * 0.999, y + h * 0.999),
        (x + w / 2, y + h / 2),
    ]:
        assert TileId.for_position(px, py) in tiles


@given(x=coords, y=coords, w=spans, h=spans)
@settings(max_examples=80, deadline=None)
def test_tile_count_bounds(x, y, w, h):
    """Tile count is within one row/column of the area-derived bound."""
    region = Region(x, y, w, h)
    n = region.tile_count
    min_tiles = max(1, int(w // TILE_METERS) * int(h // TILE_METERS))
    max_tiles = (int(w // TILE_METERS) + 2) * (int(h // TILE_METERS) + 2)
    assert min_tiles <= n <= max_tiles


@given(x=coords, y=coords)
@settings(max_examples=60, deadline=None)
def test_position_tile_contains_position(x, y):
    tile = TileId.for_position(x, y)
    ox, oy = tile.origin_m
    assert ox <= x < ox + TILE_METERS
    assert oy <= y < oy + TILE_METERS
