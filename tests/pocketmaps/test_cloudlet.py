"""Tests for the map-tile cloudlet."""

import pytest

from repro.pocketmaps.cloudlet import MapCloudlet
from repro.pocketmaps.grid import TILE_BYTES, Region, TileId

MB = 1024**2


def make_maps(budget_mb=8):
    return MapCloudlet(budget_bytes=budget_mb * MB)


class TestStorage:
    def test_store_and_query(self):
        maps = make_maps()
        stored = maps.store_tiles([TileId(0, 0), TileId(1, 0)])
        assert stored == 2
        assert maps.has_tile(TileId(0, 0))
        assert maps.bytes_stored == 2 * TILE_BYTES

    def test_duplicate_tiles_skipped(self):
        maps = make_maps()
        maps.store_tiles([TileId(0, 0)])
        assert maps.store_tiles([TileId(0, 0)]) == 0

    def test_budget_enforced(self):
        maps = MapCloudlet(budget_bytes=10 * TILE_BYTES)
        stored = maps.store_tiles(Region(0, 0, 3000, 3000).tiles())
        assert stored == 10
        assert maps.bytes_stored <= 10 * TILE_BYTES

    def test_region_packing_avoids_fragmentation(self):
        """Tiles pack into region files instead of one file each, so
        flash waste stays below one page per region, not per tile."""
        maps = make_maps()
        maps.prefetch_region(Region(0, 0, 4800, 4800))  # 256 tiles, 1 region
        assert len(maps.filesystem.list_files()) == 1
        waste = maps.filesystem.fragmentation_bytes
        assert waste < maps.filesystem.flash.geometry.page_bytes

    def test_evict_region(self):
        maps = make_maps()
        region = Region(0, 0, 1500, 1500)
        maps.prefetch_region(region)
        freed = maps.evict_region(region)
        assert freed == region.tile_count
        assert maps.n_tiles == 0
        assert maps.filesystem.list_files() == []

    def test_validation(self):
        with pytest.raises(ValueError):
            MapCloudlet(budget_bytes=0)


class TestViewportService:
    def test_prefetched_viewport_hits(self):
        maps = make_maps()
        maps.prefetch_region(Region(0, 0, 6000, 6000))
        outcome = maps.serve_viewport(Region.viewport(3000, 3000))
        assert outcome.hit
        assert outcome.bytes_over_radio == 0
        assert outcome.latency_s < 1.0  # flash, not radio

    def test_cold_viewport_uses_radio_once(self):
        maps = make_maps()
        outcome = maps.serve_viewport(Region.viewport(3000, 3000))
        assert not outcome.hit
        assert outcome.bytes_over_radio == outcome.tiles_needed * TILE_BYTES
        assert outcome.latency_s > 2.0  # one radio wake for the batch

    def test_viewport_learns(self):
        maps = make_maps()
        view = Region.viewport(3000, 3000)
        maps.serve_viewport(view)
        second = maps.serve_viewport(view)
        assert second.hit

    def test_partial_hit(self):
        maps = make_maps()
        maps.prefetch_region(Region(0, 0, 3000, 3000))
        outcome = maps.serve_viewport(Region.viewport(2900, 2900, span_m=1200))
        assert 0 < outcome.tiles_hit < outcome.tiles_needed
        assert 0 < outcome.hit_fraction < 1

    def test_hit_rates(self):
        maps = make_maps()
        maps.prefetch_region(Region(0, 0, 6000, 6000))
        maps.serve_viewport(Region.viewport(3000, 3000))  # hit
        maps.serve_viewport(Region.viewport(50_000, 50_000))  # miss
        assert maps.viewport_hit_rate == pytest.approx(0.5)
        assert 0 < maps.tile_hit_rate < 1

    def test_batched_fetch_cheaper_than_per_tile(self):
        """One radio wake for the whole viewport, not one per tile."""
        maps = make_maps()
        outcome = maps.serve_viewport(Region.viewport(0, 0))
        per_tile_floor = outcome.tiles_needed * maps.radio.wakeup_s
        assert outcome.latency_s < per_tile_floor
