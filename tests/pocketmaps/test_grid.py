"""Tests for tile-grid geometry and Table 2 arithmetic."""

import pytest

from repro.pocketmaps.grid import (
    STATE_AREAS_KM2,
    TILE_BYTES,
    TILE_METERS,
    Region,
    TileId,
    area_km2_for_tiles,
    states_coverable,
    tiles_for_area_km2,
)

GB = 1024**3


class TestTileId:
    def test_for_position(self):
        assert TileId.for_position(0, 0) == TileId(0, 0)
        assert TileId.for_position(299.9, 299.9) == TileId(0, 0)
        assert TileId.for_position(300.0, 0) == TileId(1, 0)
        assert TileId.for_position(-1.0, -1.0) == TileId(-1, -1)

    def test_origin(self):
        assert TileId(2, 3).origin_m == (600.0, 900.0)


class TestRegion:
    def test_tile_count_matches_iteration(self):
        region = Region(0, 0, 1000, 700)
        assert region.tile_count == len(list(region.tiles()))

    def test_exact_tile_region(self):
        region = Region(0, 0, 3 * TILE_METERS, 2 * TILE_METERS)
        assert region.tile_count == 6

    def test_partial_tiles_rounded_up(self):
        region = Region(10, 10, TILE_METERS, TILE_METERS)  # straddles
        assert region.tile_count == 4

    def test_storage_bytes(self):
        region = Region(0, 0, TILE_METERS, TILE_METERS)
        assert region.storage_bytes == TILE_BYTES

    def test_viewport(self):
        view = Region.viewport(1000, 1000, span_m=600)
        assert view.width_m == 600
        assert TileId.for_position(1000, 1000) in set(view.tiles())

    def test_validation(self):
        with pytest.raises(ValueError):
            Region(0, 0, 0, 100)
        with pytest.raises(ValueError):
            Region.viewport(0, 0, span_m=0)


class TestTable2Arithmetic:
    def test_paper_5_5m_tiles_cover_a_state(self):
        """Table 2 / Section 7: 5.5 million tiles at 300x300 m cover the
        area of a whole US state."""
        coverage = area_km2_for_tiles(5_500_000)
        assert coverage >= STATE_AREAS_KM2["california"]
        assert coverage == pytest.approx(495_000, rel=0.01)

    def test_tiles_for_area_roundtrip(self):
        n = tiles_for_area_km2(1000.0)
        assert area_km2_for_tiles(n) >= 1000.0
        assert area_km2_for_tiles(n - 1) < 1000.0

    def test_25_6gb_budget_covers_states(self):
        budget = int(25.6 * GB)
        covered = states_coverable(budget)
        assert "california" in covered
        assert "washington" in covered

    def test_small_budget_covers_small_state_only(self):
        budget = 1 * GB  # ~210k tiles -> ~19k km^2
        covered = states_coverable(budget)
        assert "rhode island" in covered
        assert "texas" not in covered

    def test_validation(self):
        with pytest.raises(ValueError):
            tiles_for_area_km2(-1)
        with pytest.raises(ValueError):
            area_km2_for_tiles(-1)
        with pytest.raises(ValueError):
            states_coverable(-1)
