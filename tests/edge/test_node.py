"""EdgeNode: strict LRU slice semantics and bounded delta buffering."""

import pytest

from repro.edge.node import EdgeNode


class TestLRUSlice:
    def test_miss_then_hit(self):
        node = EdgeNode(0)
        assert not node.lookup("a")
        node.admit("a")
        assert node.lookup("a")
        assert node.hits == 1 and node.misses == 1
        assert node.hit_rate == 0.5

    def test_eviction_is_lru_order(self):
        node = EdgeNode(0, capacity=2)
        node.admit("a")
        node.admit("b")
        node.admit("c")  # evicts a
        assert "a" not in node
        assert "b" in node and "c" in node
        assert node.evictions == 1

    def test_hit_refreshes_recency(self):
        node = EdgeNode(0, capacity=2)
        node.admit("a")
        node.admit("b")
        node.lookup("a")  # a is now MRU
        node.admit("c")  # evicts b, not a
        assert "a" in node and "b" not in node

    def test_admit_existing_key_touches_without_insert(self):
        node = EdgeNode(0, capacity=2)
        node.admit("a")
        node.admit("b")
        node.admit("a")  # touch, not insert
        assert node.inserts == 2
        node.admit("c")  # evicts b (a was touched)
        assert "a" in node and "b" not in node

    def test_inclusion_property_small_slice_subset_of_large(self):
        """LRU is a stack algorithm: after any access sequence, the
        C-capacity slice's contents are a subset of the C'-capacity
        slice's for C' > C — the basis of the monotone hit-rate sweep."""
        keys = [f"k{i % 7}" for i in range(100)] + [f"x{i}" for i in range(20)]
        small, large = EdgeNode(0, capacity=4), EdgeNode(1, capacity=16)
        for key in keys:
            for node in (small, large):
                if not node.lookup(key):
                    node.admit(key)
        assert {k for k in small._slice} <= {k for k in large._slice}

    def test_unbounded_never_evicts(self):
        node = EdgeNode(0, capacity=None)
        for i in range(1000):
            node.admit(f"k{i}")
        assert node.size == 1000 and node.evictions == 0

    def test_seed_slice_sets_recency_from_order(self):
        node = EdgeNode(0, capacity=2)
        node.seed_slice(["cold", "warm", "hot"])  # ascending score
        assert "hot" in node and "warm" in node and "cold" not in node

    def test_validation(self):
        with pytest.raises(ValueError):
            EdgeNode(0, capacity=0)
        with pytest.raises(ValueError):
            EdgeNode(0, max_pending_deltas=0)


class TestDeltas:
    def test_accumulates_counts(self):
        node = EdgeNode(0)
        for _ in range(3):
            node.record_delta("a")
        node.record_delta("b")
        assert node.pending_deltas == 2
        assert node.take_deltas() == [("a", 3), ("b", 1)]
        assert node.pending_deltas == 0

    def test_take_orders_hottest_first_ties_by_key(self):
        node = EdgeNode(0)
        for key in ("c", "b", "a", "b"):
            node.record_delta(key)
        assert node.take_deltas() == [("b", 2), ("a", 1), ("c", 1)]

    def test_take_respects_limit(self):
        node = EdgeNode(0)
        for key in ("a", "b", "c"):
            node.record_delta(key)
        first = node.take_deltas(2)
        assert len(first) == 2
        assert node.pending_deltas == 1

    def test_overflow_drops_new_keys_keeps_known_mass(self):
        node = EdgeNode(0, max_pending_deltas=2)
        node.record_delta("a")
        node.record_delta("b")
        node.record_delta("c")  # dropped — buffer full
        node.record_delta("a")  # known key still accumulates
        assert node.delta_overflow == 1
        assert node.take_deltas() == [("a", 2), ("b", 1)]

    def test_flush_jitter_deterministic_per_node(self):
        assert EdgeNode(3, seed=11).flush_jitter == EdgeNode(3, seed=11).flush_jitter
        assert EdgeNode(3, seed=11).flush_jitter != EdgeNode(4, seed=11).flush_jitter
        assert 0.0 <= EdgeNode(3).flush_jitter < 1.0

    def test_stats_shape(self):
        node = EdgeNode(2, capacity=8)
        node.admit("a")
        node.lookup("a")
        node.record_delta("a")
        stats = node.stats()
        assert stats["node_id"] == 2
        assert stats["size"] == 1
        assert stats["hits"] == 1
        assert stats["pending_deltas"] == 1
