"""EdgeTier: the peer-fetch protocol under both clocks.

Every async test runs under the deterministic virtual clock
(``run_simulated``) *and* a stock wall-clock asyncio loop — the tier
only speaks ``loop.time()`` / ``asyncio.sleep``, so both must agree on
all accounting.
"""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edge.evaluate import capacity_sweep, evaluate_stream, hit_rates_monotone
from repro.edge.tier import EDGE_SHED_REASON, EdgeTier, EdgeTopology
from repro.obs.trace import TraceContext
from repro.serve.vclock import run_simulated

#: (loop-runner, scale) pairs: virtual seconds are free, wall seconds
#: are real — the wall variant scales modelled time down to ~0.
CLOCKS = [
    pytest.param(run_simulated, 1.0, id="virtual"),
    pytest.param(asyncio.run, 0.0, id="wall"),
]

RADIO = (1.0, 2.0, 3.0)


class TestFetchProtocol:
    @pytest.mark.parametrize("runner,scale", CLOCKS)
    def test_edge_hit_serves_from_slice(self, runner, scale):
        async def scenario():
            tier = EdgeTier(EdgeTopology(n_nodes=2))
            tier.seed_from_scores([("warm key", 1.0)])
            loop = asyncio.get_event_loop()
            trace = TraceContext(1, loop.time())
            result = await tier.fetch(
                "warm key", device_id=5, radio_s=6.0, scale=scale,
                trace=trace, radio_energy=RADIO,
            )
            return tier, trace, result

        tier, trace, result = runner(scenario())
        assert result.tier == "edge" and not result.shed
        assert result.node_id == tier.ring.owner("warm key")
        k = tier.topology.edge_energy_scale
        assert result.share == (RADIO[0] * k, RADIO[1] * k, RADIO[2] * k)
        assert result.timeline_j == pytest.approx(sum(RADIO) * k)
        marked = [name for name, _ in trace.marks]
        assert "edge_hop" in marked and "edge_serve" in marked
        assert trace.annotations["edge_hit"] is True
        assert tier.community_hits == 1 and tier.community_misses == 0

    @pytest.mark.parametrize("runner,scale", CLOCKS)
    def test_edge_miss_fetches_origin_and_admits(self, runner, scale):
        async def scenario():
            tier = EdgeTier(EdgeTopology(n_nodes=2))
            loop = asyncio.get_event_loop()
            trace = TraceContext(1, loop.time())
            result = await tier.fetch(
                "cold key", device_id=5, radio_s=6.0, scale=scale,
                trace=trace, radio_energy=RADIO,
            )
            return tier, trace, result

        tier, trace, result = runner(scenario())
        assert result.tier == "origin" and not result.shared
        assert result.share == RADIO
        assert result.timeline_j == pytest.approx(sum(RADIO))
        marked = [name for name, _ in trace.marks]
        assert "edge_hop" in marked and "batch_wait" in marked
        assert "edge_serve" not in marked
        assert trace.annotations["edge_hit"] is False
        # the fetched key is now community-cached at the owning node
        assert "cold key" in tier.nodes[result.node_id]
        assert tier.community_hit_rate == 0.0
        assert tier.origin_fetches == 1

    def test_virtual_clock_times_the_hops(self):
        """Under the virtual clock the hop timings are exact model
        seconds: rtt for the hop, rtt + service for a hit."""
        topology = EdgeTopology(n_nodes=1)

        async def scenario():
            tier = EdgeTier(topology)
            tier.seed_from_scores([("k", 1.0)])
            loop = asyncio.get_event_loop()
            trace = TraceContext(1, loop.time())
            t0 = loop.time()
            await tier.fetch("k", 0, radio_s=6.0, scale=1.0, trace=trace)
            return loop.time() - t0, trace

        elapsed, trace = run_simulated(scenario())
        assert elapsed == pytest.approx(
            topology.edge_rtt_s + topology.edge_service_s
        )
        got = trace.breakdown()
        assert got["edge_hop"] == pytest.approx(topology.edge_rtt_s)
        assert got["edge_serve"] == pytest.approx(topology.edge_service_s)

    def test_concurrent_identical_misses_share_one_origin_fetch(self):
        async def scenario():
            tier = EdgeTier(EdgeTopology(n_nodes=1))
            results = await asyncio.gather(
                tier.fetch("same", 0, radio_s=6.0, scale=1.0, radio_energy=RADIO),
                tier.fetch("same", 1, radio_s=6.0, scale=1.0, radio_energy=RADIO),
            )
            return tier, results

        tier, results = run_simulated(scenario())
        assert sorted(r.shared for r in results) == [False, True]
        assert tier.origin_fetches == 1
        assert tier.origin_piggybacked == 1
        # the energy split is conservative: shares sum to one full fetch
        total = sum(sum(r.share) for r in results)
        assert total == pytest.approx(sum(RADIO))

    def test_inflight_bound_sheds_with_edge_reason(self):
        async def scenario():
            tier = EdgeTier(EdgeTopology(n_nodes=1, node_max_inflight=1))
            results = await asyncio.gather(
                *(tier.fetch(f"k{i}", i, radio_s=6.0, scale=1.0) for i in range(3))
            )
            return tier, results

        tier, results = run_simulated(scenario())
        shed = [r for r in results if r.shed]
        assert len(shed) == 2
        assert all(r.reason == EDGE_SHED_REASON for r in shed)
        assert tier.sheds == 2
        assert tier.nodes[0].sheds == 2
        # the admitted request completed normally
        assert [r.tier for r in results if not r.shed] == ["origin"]

    def test_deterministic_across_runs(self):
        def run_once():
            async def scenario():
                tier = EdgeTier(EdgeTopology(n_nodes=4, node_capacity=3))
                for i in range(30):
                    await tier.fetch(f"k{i % 9}", i % 5, radio_s=2.0, scale=1.0)
                tier.flush_all()
                return tier.stats()

            return run_simulated(scenario())

        assert run_once() == run_once()

    def test_home_routing_uses_device_region(self):
        async def scenario():
            tier = EdgeTier(
                EdgeTopology(n_nodes=4, routing="home", placement_skew=0.0)
            )
            result = await tier.fetch("k", device_id=42, radio_s=1.0, scale=1.0)
            return tier, result

        tier, result = run_simulated(scenario())
        assert result.node_id == tier.device_region(42) % 4
        # memoized placement is stable
        assert tier.device_region(42) == tier.device_region(42)


class TestOfflineEvaluator:
    EVENTS = [
        (float(i), i % 3, f"k{i % 5}") for i in range(40)
    ]

    def test_evaluate_matches_manual_replay(self):
        topology = EdgeTopology(n_nodes=2)
        result = evaluate_stream(self.EVENTS, topology, node_capacity=None)
        # 5 distinct keys miss once each, every later probe hits
        assert result.community_misses == 5
        assert result.community_hits == len(self.EVENTS) - 5
        assert result.events == len(self.EVENTS)

    def test_warm_keys_preload_hits(self):
        topology = EdgeTopology(n_nodes=2)
        warm = [(f"k{i}", float(i)) for i in range(5)]
        result = evaluate_stream(
            self.EVENTS, topology, node_capacity=None, warm_keys=warm
        )
        assert result.community_misses == 0
        assert result.community_hit_rate == 1.0

    def test_capacity_sweep_sorts_and_is_monotone(self):
        topology = EdgeTopology(n_nodes=2)
        results = capacity_sweep(self.EVENTS, topology, [None, 1, 4, 2])
        assert [r.node_capacity for r in results] == [1, 2, 4, None]
        assert hit_rates_monotone(results)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=9),  # device
                st.integers(min_value=0, max_value=19),  # key index
            ),
            min_size=0,
            max_size=120,
        ),
        st.sampled_from(["key", "home"]),
    )
    def test_hit_rate_monotone_for_any_stream(self, accesses, routing):
        """The LRU inclusion property makes the capacity sweep monotone
        for *every* access stream and both routing modes — not just the
        benchmark's."""
        events = [
            (float(i), device, f"k{key}")
            for i, (device, key) in enumerate(accesses)
        ]
        topology = EdgeTopology(n_nodes=3, routing=routing)
        results = capacity_sweep(events, topology, [1, 2, 4, 8, None])
        assert hit_rates_monotone(results), [
            (r.node_capacity, r.community_hit_rate) for r in results
        ]
