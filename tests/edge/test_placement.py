"""Placement helper: deterministic, order-invariant, skew-shaped."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edge.placement import (
    assign_device_region,
    assign_device_regions,
    region_weights,
)

device_id_sets = st.lists(
    st.integers(min_value=0, max_value=100_000),
    min_size=1,
    max_size=50,
    unique=True,
)


class TestRegionWeights:
    def test_uniform_at_zero_skew(self):
        weights = region_weights(8, 0.0)
        assert weights == pytest.approx(np.full(8, 1 / 8))

    def test_normalized_and_decreasing_under_skew(self):
        weights = region_weights(8, 1.5)
        assert weights.sum() == pytest.approx(1.0)
        assert all(a > b for a, b in zip(weights, weights[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            region_weights(0)
        with pytest.raises(ValueError):
            region_weights(4, skew=-0.1)


class TestAssignment:
    @settings(max_examples=30, deadline=None)
    @given(
        device_id_sets,
        st.integers(min_value=1, max_value=16),
        st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
    )
    def test_order_invariant_and_in_range(self, device_ids, n_regions, skew):
        forward = assign_device_regions(device_ids, n_regions, skew=skew)
        backward = assign_device_regions(
            list(reversed(device_ids)), n_regions, skew=skew
        )
        assert forward == backward
        assert all(0 <= r < n_regions for r in forward.values())

    @settings(max_examples=30, deadline=None)
    @given(device_id_sets, st.integers(min_value=1, max_value=16))
    def test_subset_stable_under_fleet_growth(self, device_ids, n_regions):
        """Adding devices never moves existing ones."""
        whole = assign_device_regions(device_ids, n_regions)
        half = assign_device_regions(device_ids[: len(device_ids) // 2 + 1], n_regions)
        for device_id, region in half.items():
            assert whole[device_id] == region

    def test_deterministic_across_calls(self):
        ids = list(range(200))
        assert assign_device_regions(ids, 8, skew=1.0) == assign_device_regions(
            ids, 8, skew=1.0
        )

    def test_seed_changes_assignment(self):
        ids = list(range(200))
        a = assign_device_regions(ids, 8, seed=7)
        b = assign_device_regions(ids, 8, seed=8)
        assert a != b

    def test_skew_concentrates_mass_on_first_regions(self):
        ids = list(range(2000))
        uniform = assign_device_regions(ids, 8, skew=0.0)
        skewed = assign_device_regions(ids, 8, skew=2.0)

        def share_of_region0(mapping):
            return sum(1 for r in mapping.values() if r == 0) / len(mapping)

        assert share_of_region0(uniform) == pytest.approx(1 / 8, abs=0.05)
        assert share_of_region0(skewed) > 2 * share_of_region0(uniform)

    def test_single_region_is_constant(self):
        assert set(assign_device_regions(range(50), 1).values()) == {0}

    def test_scalar_matches_batch(self):
        for device_id in (0, 17, 9999):
            assert (
                assign_device_region(device_id, 6, skew=0.5)
                == assign_device_regions([device_id], 6, skew=0.5)[device_id]
            )
