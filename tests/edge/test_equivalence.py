"""Differential tests: the edge-fronted serve path vs the offline replay.

The tier's core guarantee mirrors the serve layer's own: cloudlet hops
shape loop-clock sojourns, trace marks, and attributed radio energy —
never the device outcome model.  So a 1-node, unbounded-capacity edge
tier must reproduce the single-device ``serve_replay`` community
accounting *exactly* (identical per-query outcome streams, aggregates
within 1e-9, bit-identical bounded reservoirs), and any topology must
keep per-hop breakdowns re-summing to the end-to-end totals.
"""

import pytest

from repro.edge.tier import EDGE_SHED_REASON, EdgeTopology
from repro.serve import LoadGenConfig, ServeConfig, run_loadtest, serve_replay
from repro.sim.replay import CacheMode, ReplayConfig, run_replay

TOLERANCE = 1e-9

CONFIG = ReplayConfig(users_per_class=2, seed=97)

#: The equivalence configuration from the issue: one node, no capacity
#: bound, no inflight bound.
ONE_NODE = EdgeTopology(n_nodes=1, node_capacity=None)


def _assert_equivalent(offline, served):
    assert len(offline.users) == len(served.users)
    for a, b in zip(offline.users, served.users):
        assert a.user_id == b.user_id
        assert a.metrics.count == b.metrics.count
        assert a.metrics.hits == b.metrics.hits
        assert a.metrics.total_latency_s == pytest.approx(
            b.metrics.total_latency_s, abs=TOLERANCE
        )
        assert a.metrics.total_energy_j == pytest.approx(
            b.metrics.total_energy_j, abs=TOLERANCE
        )


class TestOneNodeEquivalence:
    @pytest.mark.parametrize("mode", CacheMode.ALL)
    def test_outcome_streams_identical(self, small_log, mode):
        """Per-query outcome records are *equal*, not merely close —
        the tier never rewrites a QueryOutcome."""
        offline = run_replay(small_log, CONFIG, modes=(mode,))[mode]
        results, reports = serve_replay(
            small_log, CONFIG, modes=(mode,), edge_topology=ONE_NODE
        )
        assert reports[mode].shed == 0
        _assert_equivalent(offline, results[mode])
        for a, b in zip(offline.users, results[mode].users):
            assert a.metrics.outcomes == b.metrics.outcomes

    def test_matches_plain_serve_replay(self, small_log):
        """The edge-fronted run and the edgeless run agree on every
        model number; only serve-layer sojourn/marks differ."""
        mode = CacheMode.FULL
        plain = serve_replay(small_log, CONFIG, modes=(mode,))[0][mode]
        edged = serve_replay(
            small_log, CONFIG, modes=(mode,), edge_topology=ONE_NODE
        )[0][mode]
        _assert_equivalent(plain, edged)
        for a, b in zip(plain.users, edged.users):
            assert a.metrics.outcomes == b.metrics.outcomes

    def test_bounded_reservoirs_bit_identical(self, small_log):
        """Bounded-mode collectors fold the same outcomes in the same
        order with the same per-user seeds, so reservoir percentiles
        are bit-identical through the edge tier too."""
        config = ReplayConfig(users_per_class=2, seed=97, bounded_metrics=True)
        mode = CacheMode.FULL
        offline = run_replay(small_log, config, modes=(mode,))[mode]
        served = serve_replay(
            small_log, config, modes=(mode,), edge_topology=ONE_NODE
        )[0][mode]
        for a, b in zip(offline.users, served.users):
            assert a.metrics.count == b.metrics.count
            assert a.metrics.hits == b.metrics.hits
            for q in (50, 95, 99):
                assert a.metrics.latency_percentile(
                    q
                ) == b.metrics.latency_percentile(q)

    def test_percentiles_match_exactly(self, small_log):
        mode = CacheMode.FULL
        offline = run_replay(small_log, CONFIG, modes=(mode,))[mode]
        served = serve_replay(
            small_log, CONFIG, modes=(mode,), edge_topology=ONE_NODE
        )[0][mode]
        for a, b in zip(offline.users, served.users):
            for q in (50, 90, 99):
                pa, pb = (
                    a.metrics.latency_percentile(q),
                    b.metrics.latency_percentile(q),
                )
                assert pa == pb or (pa != pa and pb != pb)  # nan == nan


class TestMultiNode:
    def test_eight_nodes_same_outcome_accounting(self, small_log):
        """Sharding the community across 8 nodes still never touches
        the device outcome model."""
        mode = CacheMode.FULL
        offline = run_replay(small_log, CONFIG, modes=(mode,))[mode]
        results, reports = serve_replay(
            small_log, CONFIG, modes=(mode,),
            edge_topology=EdgeTopology(n_nodes=8),
        )
        assert reports[mode].shed == 0
        _assert_equivalent(offline, results[mode])

    @pytest.mark.parametrize("n_nodes", [1, 8])
    def test_hop_breakdowns_resum_to_totals(self, small_log, n_nodes):
        """Per-tier latency and energy partitions re-sum to each
        response's end-to-end sojourn/joules within 1e-9."""
        mode = CacheMode.FULL
        _, reports = serve_replay(
            small_log, CONFIG, modes=(mode,),
            edge_topology=EdgeTopology(n_nodes=n_nodes),
        )
        report = reports[mode]
        assert report.edge is not None
        assert report.hop_resum_error_s <= TOLERANCE
        assert report.hop_resum_error_j <= TOLERANCE
        assert report.edge_hop_p99_s > 0

    def test_report_carries_edge_stats(self, small_log):
        mode = CacheMode.FULL
        _, reports = serve_replay(
            small_log, CONFIG, modes=(mode,),
            edge_topology=EdgeTopology(n_nodes=4),
        )
        edge = reports[mode].edge
        assert edge["n_nodes"] == 4
        probes = edge["community_hits"] + edge["community_misses"]
        # every device miss consults the tier exactly once
        assert probes == reports[mode].misses
        assert (
            edge["origin_fetches"] + edge["origin_piggybacked"]
            == edge["community_misses"]
        )
        # end-of-run settlement propagated every delta
        assert all(n["pending_deltas"] == 0 for n in edge["nodes"])
        assert edge["origin"]["distinct_keys"] > 0
        metrics = reports[mode].to_metrics()
        assert metrics["community_hit_rate"] == edge["community_hit_rate"]

    def test_edge_report_deterministic(self, small_log):
        mode = CacheMode.FULL
        kwargs = dict(modes=(mode,), edge_topology=EdgeTopology(n_nodes=4))
        a = serve_replay(small_log, CONFIG, **kwargs)[1][mode]
        b = serve_replay(small_log, CONFIG, **kwargs)[1][mode]
        assert a.edge == b.edge
        assert a.to_metrics() == b.to_metrics()


class TestEdgeShedding:
    def test_overloaded_cloudlet_sheds_with_distinct_reason(self, small_log):
        """Saturating a tiny per-node inflight bound sheds mid-flight
        with the edge-specific reason, and the accounting still
        conserves every request."""
        report, workload = run_loadtest(
            small_log,
            LoadGenConfig(
                duration_s=600.0, rate_multiplier=2000.0, seed=7, max_devices=4
            ),
            ServeConfig(queue_depth=64, max_inflight=4096),
            edge_topology=EdgeTopology(n_nodes=1, node_max_inflight=1),
        )
        assert report.completed + report.shed == report.requests
        assert report.shed_reasons.get(EDGE_SHED_REASON, 0) > 0
        assert report.edge["sheds"] == report.shed_reasons[EDGE_SHED_REASON]

    def test_unbounded_edge_sheds_nothing_extra(self, small_log):
        report, workload = run_loadtest(
            small_log,
            LoadGenConfig(duration_s=600.0, rate_multiplier=2.0, seed=7),
            ServeConfig(queue_depth=64, max_inflight=4096),
            edge_topology=EdgeTopology(n_nodes=2),
        )
        assert report.shed == 0
        assert report.completed == workload.n_requests
        assert report.edge["sheds"] == 0
