"""Hypothesis property suite for the consistent-hash ownership ring.

The three properties the edge tier leans on: balanced ownership within
tolerance, minimal key movement on membership change, and invariance to
node insertion order.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edge.ring import ConsistentHashRing, DEFAULT_VNODES

#: A fixed sample of keys shaped like real query keys.
KEYS = [f"query {i}" for i in range(2000)]

node_sets = st.lists(
    st.integers(min_value=0, max_value=63), min_size=1, max_size=12, unique=True
)


class TestBasics:
    def test_empty_ring_rejects_lookup(self):
        with pytest.raises(ValueError):
            ConsistentHashRing().owner("q")

    def test_vnodes_validated(self):
        with pytest.raises(ValueError):
            ConsistentHashRing([0], vnodes=0)

    def test_duplicate_add_and_missing_remove_rejected(self):
        ring = ConsistentHashRing([0, 1])
        with pytest.raises(ValueError):
            ring.add_node(0)
        with pytest.raises(ValueError):
            ring.remove_node(5)

    def test_single_node_owns_everything(self):
        ring = ConsistentHashRing([3])
        assert all(ring.owner(k) == 3 for k in KEYS[:100])

    def test_nodes_listing_sorted(self):
        ring = ConsistentHashRing([5, 1, 3])
        assert ring.nodes == (1, 3, 5)
        assert len(ring) == 3

    def test_ownership_covers_all_nodes(self):
        ring = ConsistentHashRing(range(4))
        counts = ring.ownership(KEYS)
        assert set(counts) == {0, 1, 2, 3}
        assert sum(counts.values()) == len(KEYS)


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(node_sets)
    def test_ownership_deterministic_and_permutation_invariant(self, nodes):
        """The ring is a pure function of the node *set* — insertion
        order can never change ownership."""
        forward = ConsistentHashRing(nodes)
        backward = ConsistentHashRing(list(reversed(nodes)))
        sample = KEYS[:300]
        assert [forward.owner(k) for k in sample] == [
            backward.owner(k) for k in sample
        ]

    @settings(max_examples=25, deadline=None)
    @given(node_sets)
    def test_incremental_equals_batch_construction(self, nodes):
        batch = ConsistentHashRing(nodes)
        incremental = ConsistentHashRing()
        for node_id in nodes:
            incremental.add_node(node_id)
        assert incremental.nodes == batch.nodes
        sample = KEYS[:300]
        assert [incremental.owner(k) for k in sample] == [
            batch.owner(k) for k in sample
        ]

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=2, max_value=12))
    def test_balanced_ownership_within_tolerance(self, n_nodes):
        """With DEFAULT_VNODES virtual points, every node's share of a
        2000-key sample stays within a constant factor of fair."""
        ring = ConsistentHashRing(range(n_nodes), vnodes=DEFAULT_VNODES)
        counts = ring.ownership(KEYS)
        fair = len(KEYS) / n_nodes
        for node_id, count in counts.items():
            assert count > 0.35 * fair, (node_id, counts)
            assert count < 2.2 * fair, (node_id, counts)

    @settings(max_examples=25, deadline=None)
    @given(node_sets, st.integers(min_value=64, max_value=127))
    def test_adding_a_node_moves_keys_only_to_it(self, nodes, new_node):
        """Minimal movement: keys either keep their owner or move to the
        new node — never between surviving nodes."""
        ring = ConsistentHashRing(nodes)
        before = {k: ring.owner(k) for k in KEYS[:500]}
        ring.add_node(new_node)
        moved = 0
        for key, old in before.items():
            now = ring.owner(key)
            if now != old:
                assert now == new_node, (key, old, now)
                moved += 1
        # The newcomer takes roughly 1/(n+1); generous upper bound.
        assert moved <= len(before) * 0.8

    @settings(max_examples=25, deadline=None)
    @given(node_sets.filter(lambda ns: len(ns) >= 2))
    def test_removing_a_node_moves_only_its_keys(self, nodes):
        ring = ConsistentHashRing(nodes)
        victim = nodes[0]
        before = {k: ring.owner(k) for k in KEYS[:500]}
        ring.remove_node(victim)
        for key, old in before.items():
            now = ring.owner(key)
            if old == victim:
                assert now != victim
            else:
                assert now == old, (key, old, now)

    @settings(max_examples=25, deadline=None)
    @given(node_sets.filter(lambda ns: len(ns) >= 2))
    def test_remove_then_readd_round_trips(self, nodes):
        ring = ConsistentHashRing(nodes)
        sample = KEYS[:200]
        before = [ring.owner(k) for k in sample]
        ring.remove_node(nodes[-1])
        ring.add_node(nodes[-1])
        assert [ring.owner(k) for k in sample] == before
