"""Popularity propagation: merge accounting and UpdatePatch pricing."""

import pytest

from repro.edge.node import EdgeNode
from repro.edge.propagation import DELTA_BYTES, OriginCoordinator
from repro.edge.tier import EdgeTier, EdgeTopology
from repro.pocketsearch.content import DEFAULT_RECORD_BYTES


class TestOriginCoordinator:
    def test_apply_merges_and_prices_upload(self):
        origin = OriginCoordinator()
        patch = origin.apply_deltas(0, [("a", 3), ("b", 1)])
        assert patch.bytes_uploaded == 2 * DELTA_BYTES
        assert patch.pairs_added == 2
        patch = origin.apply_deltas(1, [("a", 2), ("c", 1)])
        assert patch.pairs_added == 1  # only c is new
        assert origin.popularity == {"a": 5, "b": 1, "c": 1}
        assert origin.flushes == 2
        assert origin.deltas_merged == 4
        assert origin.bytes_uploaded == 4 * DELTA_BYTES

    def test_nonpositive_delta_rejected(self):
        with pytest.raises(ValueError):
            OriginCoordinator().apply_deltas(0, [("a", 0)])

    def test_top_keys_hottest_first_ties_by_key(self):
        origin = OriginCoordinator()
        origin.apply_deltas(0, [("b", 2), ("a", 2), ("c", 5)])
        assert origin.top_keys(2) == ["c", "a"]
        assert origin.top_keys(10) == ["c", "a", "b"]

    def test_refresh_patch_priced_per_record(self):
        origin = OriginCoordinator()
        patch = origin.refresh_patch(7)
        assert patch.bytes_downloaded == 7 * DEFAULT_RECORD_BYTES
        assert patch.results_added == 7
        assert origin.refreshes == 1
        assert origin.bytes_downloaded == 7 * DEFAULT_RECORD_BYTES


class TestTierPropagation:
    def test_flush_all_settles_every_pending_delta(self):
        tier = EdgeTier(EdgeTopology(n_nodes=3, propagation_batch=2))
        for i in range(10):
            node = tier.nodes[i % 3]
            node.record_delta(f"k{i}")
            node.record_delta(f"k{i}")
        tier.flush_all()
        assert all(n.pending_deltas == 0 for n in tier.nodes.values())
        assert sum(tier.origin.popularity.values()) == 20
        assert tier.origin.stats()["distinct_keys"] == 10
        # batch bound respected: 10 deltas over batches of <= 2
        assert tier.origin.flushes >= 5

    def test_flush_all_deterministic(self):
        def build():
            tier = EdgeTier(EdgeTopology(n_nodes=2))
            for i in range(9):
                tier.nodes[i % 2].record_delta(f"k{i % 4}")
            tier.flush_all()
            return tier.origin.popularity, tier.origin.stats()

        assert build() == build()

    def test_refresh_from_origin_key_routing_respects_ownership(self):
        tier = EdgeTier(EdgeTopology(n_nodes=2, routing="key"))
        tier.nodes[0].record_delta("hot")
        for _ in range(5):
            tier.nodes[1].record_delta("hotter")
        tier.flush_all()
        patch = tier.refresh_from_origin(per_node=4)
        assert patch.bytes_downloaded == patch.results_added * DEFAULT_RECORD_BYTES
        for node_id, node in tier.nodes.items():
            for key in ("hot", "hotter"):
                if key in node:
                    assert tier.ring.owner(key) == node_id

    def test_refresh_from_origin_home_routing_replicates(self):
        tier = EdgeTier(EdgeTopology(n_nodes=2, routing="home"))
        for _ in range(3):
            tier.nodes[0].record_delta("popular")
        tier.flush_all()
        tier.refresh_from_origin(per_node=1)
        assert all("popular" in node for node in tier.nodes.values())

    def test_refresh_validates_per_node(self):
        with pytest.raises(ValueError):
            EdgeTier(EdgeTopology()).refresh_from_origin(0)

    def test_event_driven_flush_uses_jittered_deadline(self):
        """First traffic arms the deadline; deltas flush only after it
        passes — no background task involved."""
        tier = EdgeTier(EdgeTopology(n_nodes=1, propagation_interval_s=100.0))
        node = tier.nodes[0]
        node.record_delta("a")
        tier._maybe_flush(node, now=0.0)  # arms the deadline
        assert node.next_flush_at is not None
        assert 50.0 <= node.next_flush_at <= 150.0
        tier._maybe_flush(node, now=node.next_flush_at - 1.0)
        assert node.pending_deltas == 1  # not due yet
        tier._maybe_flush(node, now=node.next_flush_at + 1.0)
        assert node.pending_deltas == 0
        assert tier.origin.flushes == 1
