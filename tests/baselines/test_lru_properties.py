"""Property-based tests: the LRU cache against a reference model."""

from collections import OrderedDict

from hypothesis import given, settings, strategies as st

from repro.baselines.lru import LruQueryCache

ops = st.lists(
    st.tuples(st.sampled_from(["lookup", "insert"]), st.integers(0, 12)),
    max_size=80,
)


@given(ops=ops, capacity=st.integers(min_value=1, max_value=6))
@settings(max_examples=80, deadline=None)
def test_lru_matches_reference(ops, capacity):
    cache = LruQueryCache(capacity=capacity)
    reference: "OrderedDict[int, int]" = OrderedDict()
    for op, key in ops:
        if op == "lookup":
            got = cache.lookup(key)
            if key in reference:
                reference.move_to_end(key)
                assert got == reference[key]
            else:
                assert got is None
        else:
            cache.insert(key, key * 10)
            if key in reference:
                reference.move_to_end(key)
                reference[key] = key * 10
            else:
                if len(reference) >= capacity:
                    reference.popitem(last=False)
                reference[key] = key * 10
        assert len(cache) == len(reference)
        assert len(cache) <= capacity
    for key in reference:
        assert key in cache
