"""Tests for the comparator systems."""

import pytest

from repro.baselines.browser_cache import BrowserUrlCache
from repro.baselines.lru import LruQueryCache
from repro.baselines.nocache import NoCacheBaseline
from repro.radio.models import EDGE, THREE_G


class TestNoCache:
    def test_every_query_pays_radio(self):
        baseline = NoCacheBaseline()
        latency, energy = baseline.serve_query("anything")
        assert latency > 3.0
        assert energy > 5.0
        assert baseline.hit_rate == 0.0

    def test_edge_slower(self):
        edge = NoCacheBaseline(radio=EDGE)
        threeg = NoCacheBaseline(radio=THREE_G)
        assert edge.serve_query("q")[0] > threeg.serve_query("q")[0]

    def test_counts_queries(self):
        baseline = NoCacheBaseline()
        baseline.serve_query("a")
        baseline.serve_query("b")
        assert baseline.queries == 2


class TestLru:
    def test_hit_after_insert(self):
        lru = LruQueryCache(capacity=2)
        lru.insert("a", 1)
        assert lru.lookup("a") == 1
        assert lru.hit_rate == 1.0

    def test_eviction_order(self):
        lru = LruQueryCache(capacity=2)
        lru.insert("a", 1)
        lru.insert("b", 2)
        lru.lookup("a")  # refresh a
        lru.insert("c", 3)  # evicts b
        assert "a" in lru
        assert "b" not in lru
        assert lru.evictions == 1

    def test_reinsert_updates_value(self):
        lru = LruQueryCache(capacity=2)
        lru.insert("a", 1)
        lru.insert("a", 2)
        assert lru.lookup("a") == 2
        assert len(lru) == 1

    def test_capacity_respected(self):
        lru = LruQueryCache(capacity=3)
        for i in range(10):
            lru.insert(f"q{i}", i)
        assert len(lru) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            LruQueryCache(capacity=0)


class TestBrowserUrlCache:
    def test_navigational_match(self):
        cache = BrowserUrlCache()
        cache.visit("www.youtube.com")
        assert cache.lookup("youtube") == "www.youtube.com"

    def test_misspelling_misses(self):
        """The technique only serves true substring matches — the gap
        PocketSearch closes (Section 8)."""
        cache = BrowserUrlCache()
        cache.visit("www.youtube.com")
        assert cache.lookup("yotube") is None

    def test_non_navigational_misses(self):
        cache = BrowserUrlCache()
        cache.visit("www.imdb.com/name/nm0001391")
        assert cache.lookup("michael jackson") is None

    def test_spaces_stripped(self):
        cache = BrowserUrlCache()
        cache.visit("www.bankofamerica.com")
        assert cache.lookup("bank of america") == "www.bankofamerica.com"

    def test_capacity_fifo(self):
        cache = BrowserUrlCache(capacity=2)
        cache.visit("www.a.com")
        cache.visit("www.b.com")
        cache.visit("www.c.com")
        assert len(cache) == 2
        assert cache.lookup("a") is None  # wait: 'a' matches www... careful

    def test_duplicate_visits_not_duplicated(self):
        cache = BrowserUrlCache()
        cache.visit("www.a.com")
        cache.visit("www.a.com")
        assert len(cache) == 1

    def test_empty_query(self):
        cache = BrowserUrlCache()
        cache.visit("www.a.com")
        assert cache.lookup("   ") is None

    def test_validation(self):
        with pytest.raises(ValueError):
            BrowserUrlCache(capacity=0)
