"""REP010 positive fixture: transitively nondeterministic entry points."""

import os

from repro.core.helpers import fanout, merge_weights


def run_step(state):
    return state + fanout()  # fires: -> indirect -> stamp -> time.time()


def load_mode():
    return os.environ.get("REPRO_MODE", "strict")  # fires: ambient env


def rank(weights):
    return merge_weights(weights)  # fires (warning): set-iteration order
