"""REP010 negative fixture: determinism threaded through explicitly."""

from repro.core.helpers import pure, seeded_draw


def run_step(state, seed):
    return pure(state) + seeded_draw(seed)


def doubled(x):
    return pure(pure(x))
