"""REP011 positive fixture: stale reads across awaits."""

import asyncio


class Cache:
    def __init__(self):
        self.entries = {}
        self.version = 0

    async def compute(self, key):
        await asyncio.sleep(0)
        return key

    async def get_or_fill(self, key):
        value = self.entries.get(key)
        if value is None:
            value = await self.compute(key)
            self.entries[key] = value  # fires: write from a stale read
        return value

    async def _advance(self):
        self.version = self.version + 1
        await asyncio.sleep(0)

    async def snapshot(self):
        before = self.version
        await self._advance()  # fires: awaited callee writes self.version
        return before
