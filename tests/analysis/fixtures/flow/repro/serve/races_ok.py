"""REP011 negative fixture: every pattern that must NOT fire.

Covers: one lock span over read+await+write, mutually exclusive
branches (the await lives in an arm that returns), owned slots (the
check-then-act closes before suspension), RMW counters, and
swap-before-await teardown.
"""

import asyncio


class Guarded:
    def __init__(self):
        self.lock = asyncio.Lock()
        self.entries = {}
        self.inflight = {}
        self.active = 0
        self.conn = None

    async def compute(self, key):
        await asyncio.sleep(0)
        return key

    async def locked_fill(self, key):
        async with self.lock:
            value = self.entries.get(key)
            if value is None:
                value = await self.compute(key)
                self.entries[key] = value
        return value

    async def single_flight(self, key):
        waiter = self.inflight.get(key)
        if waiter is not None:
            return await waiter
        self.inflight[key] = asyncio.get_event_loop().create_future()
        return None

    async def owned_slot(self, key):
        if self.inflight.get(key):
            return None
        self.inflight[key] = 1
        await self.compute(key)
        del self.inflight[key]

    async def gated(self):
        if self.active >= 4:
            return None
        self.active += 1
        await self.compute(0)
        self.active -= 1
        return 1

    async def close(self):
        conn, self.conn = self.conn, None
        if conn is not None:
            await conn.wait_closed()
