"""REP012 negative fixture: every coroutine is awaited or retained."""

import asyncio


async def refresh(key):
    await asyncio.sleep(0)
    return key


def make_refresh(key):
    return refresh(key)


async def direct(key):
    return await refresh(key)


async def chained(key):
    return await make_refresh(key)


async def gathered(keys):
    return await asyncio.gather(*(refresh(k) for k in keys))


async def retained(key, registry):
    task = asyncio.create_task(refresh(key))
    registry.add(task)
    return await task
