"""REP012 positive fixture: coroutines that escape unawaited."""

import asyncio


async def refresh(key):
    await asyncio.sleep(0)
    return key


def make_refresh(key):
    # A factory: returns a bare coroutine the caller must await.
    return refresh(key)


async def fire_and_forget(key):
    refresh(key)  # fires: discarded coroutine
    await asyncio.sleep(0)


async def parked(key):
    pending = make_refresh(key)  # fires: dead local, factory coroutine
    await asyncio.sleep(0)
    return None
