"""Flow fixtures: out-of-scope helpers the sim/serve fixtures call.

Lives in ``repro/core`` so REP010 sees calls from the entry packages
into this module as *boundary* call sites.
"""

import time

import numpy as np


def stamp():
    return time.time()


def indirect():
    return stamp()


def fanout():
    return indirect() + 1


def merge_weights(weights):
    total = 0.0
    for key in set(weights):
        total += weights[key]
    return total


def seeded_draw(seed):
    return np.random.default_rng(seed).random()


def pure(x):
    return x * 2
