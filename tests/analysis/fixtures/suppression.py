"""Suppression fixture: every finding here is inline-noqa'd except one.

The demo registry below genuinely wants shared mutable defaults (it is
a module-level singleton pattern used by a fixture), so each carries a
``# repro: noqa`` with the rule spelled out — except `leaky`, which is
the control that must still fire.
"""


def bracketed(acc=[]):  # repro: noqa[REP006] — fixture singleton
    return acc


def colon_form(acc=[]):  # repro: noqa: REP006 — ruff-shaped spelling
    return acc


def bare_directive(acc=[]):  # repro: noqa — suppresses every rule here
    return acc


def multi(acc={}):  # repro: noqa[REP001, REP006]
    return acc


def wrong_rule(acc=[]):  # repro: noqa[REP001] — wrong id: still fires
    return acc


def leaky(acc=[]):  # control: fires REP006
    return acc
