"""REP002 negative fixture: seeds flow explicitly, generators are passed."""

import random
import numpy as np


def make_rng(seed):
    return np.random.default_rng(seed)  # seeded: fine


def spawn(seed, user_id):
    seq = np.random.SeedSequence(seed, spawn_key=(7, user_id))
    return np.random.default_rng(seq)


def seeded_instance(seed):
    return random.Random(seed)  # seeded: fine


def draw(rng: np.random.Generator):
    return rng.random()  # instance method on a passed generator: fine


def keyword_seeded():
    return np.random.default_rng(seed=23)
