"""REP002 positive fixture: global/unseeded randomness."""

import random
import numpy as np
from random import shuffle


def draw():
    return random.random()  # fires: global stream


def pick(items):
    shuffle(items)  # fires: aliased global shuffle
    return items[0]


def legacy_normal():
    return np.random.normal(0.0, 1.0)  # fires: legacy numpy global


def unseeded_generator():
    return np.random.default_rng()  # fires: no seed


def unseeded_instance():
    return random.Random()  # fires: no seed


def entropy_backed():
    return random.SystemRandom()  # fires: never deterministic


def explicit_none_seed():
    return np.random.default_rng(None)  # fires: None = fresh OS entropy


def explicit_none_keyword():
    return random.Random(seed=None)  # fires: explicit None is unseeded
