"""REP006 positive fixture: shared mutable defaults."""

import collections


def accumulate(x, acc=[]):  # fires: list literal default
    acc.append(x)
    return acc


def index(key, table={}):  # fires: dict literal default
    return table.setdefault(key, len(table))


def group(pairs, by=collections.defaultdict(list)):  # fires: ctor default
    for k, v in pairs:
        by[k].append(v)
    return by


def dedupe(items, seen=set()):  # fires: keyword-only set default
    return [i for i in items if i not in seen]


def tail(*, history=list()):  # fires: kw-only list() default
    return history
