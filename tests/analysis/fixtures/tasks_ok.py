"""REP005 negative fixture: every spawned task is owned."""

import asyncio


async def worker():
    await asyncio.sleep(0)


class Owner:
    def __init__(self):
        self._task = None
        self._tasks = set()

    async def spawn(self):
        self._task = asyncio.create_task(worker())  # assigned: fine

    async def spawn_tracked(self):
        task = asyncio.create_task(worker())
        self._tasks.add(task)  # retained in a collection: fine
        task.add_done_callback(self._tasks.discard)

    async def spawn_awaited(self):
        await asyncio.create_task(worker())  # awaited directly: fine

    async def close(self):
        if self._task is not None:
            self._task.cancel()
            await asyncio.gather(self._task, return_exceptions=True)
