"""REP003 negative fixture: sorted first, or order-free consumption."""

weights = {1.25, 2.5, 3.125}


def total_sorted():
    return sum(sorted(weights))  # sorted before folding: fine


def count(items: set):
    n = 0
    hits = set(items)
    for _ in hits:
        n = n + 1  # plain rebinding, not AugAssign accumulation
    return n


def membership(needles, haystack):
    found = set()
    for n in needles:  # iterating a *list*, building a set: fine
        if n in haystack:
            found.add(n)
    return found


def fold_list(values: list):
    acc = 0.0
    for v in values:  # list order is the caller's contract: fine
        acc += v
    return acc
