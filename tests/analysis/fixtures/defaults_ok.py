"""REP006 negative fixture: immutable defaults, None-then-build."""


def accumulate(x, acc=None):
    acc = [] if acc is None else acc
    acc.append(x)
    return acc


def scale(values, factor=1.0, label="run", flags=()):  # immutables: fine
    return [v * factor for v in values]


def windowed(series, bounds=(0, 10)):  # tuple default: fine
    lo, hi = bounds
    return series[lo:hi]
