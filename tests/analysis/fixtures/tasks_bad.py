"""REP005 positive fixture: fire-and-forget task spawns."""

import asyncio


async def worker():
    await asyncio.sleep(0)


async def spawn_and_forget():
    asyncio.create_task(worker())  # fires: result discarded


async def loop_spawn():
    loop = asyncio.get_running_loop()
    loop.create_task(worker())  # fires: loop variant, result discarded


async def ensure_and_forget():
    asyncio.ensure_future(worker())  # fires: ensure_future variant
