"""REP001 negative fixture: virtual time and measurement-only timing."""

import time


class Clock:
    def __init__(self):
        self.now = 0.0

    def advance(self, dt):
        self.now += dt


def simulate(clock):
    clock.advance(0.25)
    return clock.now  # virtual time: fine


def measure():
    # perf_counter measures host duration (span timings, shard wall
    # times), never simulated time — deliberately allowed.
    t0 = time.perf_counter()
    return time.perf_counter() - t0
