"""REP008 positive fixture: sim/ (level 2) importing upward."""

from repro.serve.server import CloudletServer  # fires: serve is level 4
import repro.experiments.common  # fires: experiments is level 3

__all__ = ["CloudletServer", "repro"]
