"""REP008 negative fixture: downward and same-level imports are fine."""

from repro.logs.schema import QueryEvent  # level 1 < 2: fine
from repro.obs.registry import MetricsRegistry  # level 0 < 2: fine
from repro.pocketsearch.engine import SearchEngine  # level 2 == 2: fine
from repro.sim.clock import SimClock  # own package: fine
from . import metrics  # relative: intra-package by construction

__all__ = ["MetricsRegistry", "QueryEvent", "SearchEngine", "SimClock", "metrics"]
