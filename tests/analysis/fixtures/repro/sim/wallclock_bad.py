"""REP001 positive fixture: wall-clock reads in sim/ model code."""

import time
from datetime import datetime
from time import monotonic as mono


def stamp_event():
    return time.time()  # fires: wall clock in sim/


def label_run():
    return datetime.now().isoformat()  # fires: datetime.now in sim/


def tick():
    return mono()  # fires: aliased time.monotonic
