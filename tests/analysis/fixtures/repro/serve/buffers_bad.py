"""Positive fixture for REP009 (unbounded-buffer-append).

Three hot-path appends to unbounded instance buffers; cold-path appends
and bounded rings must stay silent.
"""

from collections import deque


class LeakyTelemetry:
    def __init__(self):
        self.events = []                # unbounded list
        self.spans = deque()            # unbounded deque
        self.ring = deque(maxlen=256)   # bounded: never flagged

    def on_response(self, t, response):
        self.events.append((t, response))   # REP009
        self.ring.append(t)                 # bounded, clean

    def record(self, span):
        self.spans.appendleft(span)         # REP009

    def snapshot(self):
        # Cold path: unbounded append outside a hot method is fine.
        self.events.append(None)
        return len(self.events)


class LeakyQueue:
    def __init__(self):
        self.backlog = list()

    def submit(self, item):
        self.backlog.append(item)           # REP009

    def drain_all(self):
        # "drain_all" is not a hot verb ("drain" is).
        self.backlog.append(None)
