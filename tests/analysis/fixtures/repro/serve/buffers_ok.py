"""Negative fixture for REP009 (unbounded-buffer-append).

Bounded rings, cold-path appends, non-``self`` targets and bounded
rebinds — all clean, for every rule.
"""

from collections import deque


class BoundedTelemetry:
    def __init__(self):
        self.ring = deque(maxlen=512)
        self.recent = deque((), 64)     # bounded via positional maxlen
        self.sink = []

    def on_response(self, t, response):
        self.ring.append((t, response))
        self.recent.append(t)

    def flush(self):
        # Cold path: appending to an unbounded buffer here is fine.
        self.sink.append(len(self.ring))


class ReboundSamples:
    def __init__(self):
        self.samples = []

    def configure(self, cap):
        # A bounded rebind anywhere clears the suspicion.
        self.samples = deque((), cap)

    def observe(self, x):
        self.samples.append(x)


class NotInstanceState:
    def on_event(self, bus):
        local = []
        local.append(bus)           # local, not instance state
        bus.queue.append(local)     # not rooted at ``self``
