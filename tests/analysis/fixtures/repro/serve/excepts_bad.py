"""REP007 positive fixture: swallowed exceptions on the serve path."""


def serve_one(backend, request):
    try:
        return backend.serve(request)
    except Exception:  # fires: broad catch without re-raise in serve/
        return None


def run_loop(step):
    try:
        step()
    except:  # noqa: E722 — fires REP007: bare except
        pass
