"""REP004 negative fixture: async-with discipline, async sleeps only."""

import asyncio
import time


class Session:
    def __init__(self):
        self.lock = asyncio.Lock()

    async def disciplined(self):
        async with self.lock:
            await asyncio.sleep(1.0)  # lock acquired via async with: fine

    async def acquire_release_no_await(self):
        # Manual acquire with no await while held: allowed (no
        # suspension point to leak across).
        await self.lock.acquire()
        self.lock.release()
        await asyncio.sleep(0)

    def sync_helper(self):
        time.sleep(0.001)  # sync function: blocking is the caller's problem


class Shards:
    def __init__(self):
        self.locks = {i: asyncio.Lock() for i in range(4)}

    async def disciplined_shard(self, key):
        async with self.locks[key]:
            await asyncio.sleep(1.0)  # async-with on a shard lock: fine

    async def shard_acquire_release_no_await(self, key):
        await self.locks[key].acquire()
        self.locks[key].release()
        await asyncio.sleep(0)


async def nested_sync_def():
    def inner():
        time.sleep(0.001)  # sync helper defined inside async fn: fine

    inner()
    await asyncio.sleep(0)
