"""REP007 negative fixture: specific catches, or record-then-reraise."""


class Overloaded(Exception):
    pass


def serve_one(backend, request, counters):
    try:
        return backend.serve(request)
    except Overloaded:  # specific type: fine
        counters["shed"] += 1
        raise


def observed(backend, request, counters):
    try:
        return backend.serve(request)
    except Exception:
        counters["errors"] += 1
        raise  # broad but re-raises after recording: fine
