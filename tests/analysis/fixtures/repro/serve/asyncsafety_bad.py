"""REP004 positive fixture: lock-across-await and blocking async code."""

import asyncio
import subprocess
import time


class Session:
    def __init__(self):
        self.lock = asyncio.Lock()

    async def manual_acquire(self):
        await self.lock.acquire()
        await asyncio.sleep(1.0)  # fires: await while self.lock held
        self.lock.release()

    async def sync_with(self):
        with self.lock:
            await asyncio.sleep(0)  # fires: await inside sync `with lock:`


class Shards:
    def __init__(self):
        self.locks = {i: asyncio.Lock() for i in range(4)}

    async def manual_acquire_shard(self, key):
        await self.locks[key].acquire()
        await asyncio.sleep(1.0)  # fires: await while self.locks[·] held
        self.locks[key].release()

    async def sync_with_shard(self, key):
        with self.locks[key]:
            await asyncio.sleep(0)  # fires: await inside sync with-shard


async def blocking_sleep():
    time.sleep(0.1)  # fires: blocks the loop in serve/


async def blocking_subprocess():
    subprocess.run(["true"])  # fires: blocks the loop in serve/
