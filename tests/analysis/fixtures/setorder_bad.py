"""REP003 positive fixture: ordered accumulation driven by set order."""

import math

weights = {1.25, 2.5, 3.125}


def total():
    return sum(weights)  # fires: float fold over a set


def total_fsum(values):
    return math.fsum(w for w in values & weights)  # fires: gen over set op


def accumulate(latencies: set):
    acc = 0.0
    bad = set(latencies)
    for lat in bad:
        acc += lat  # fires: += inside a set loop
    return acc


def collect(keys):
    out = []
    for key in {k.lower() for k in keys}:
        out.append(key)  # fires: list built in set-comp order
    return out
