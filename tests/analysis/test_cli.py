"""``repro lint`` CLI tests: exit codes, formats, baseline flow, stats,
manifest wiring, and dispatch through the top-level ``repro`` verb."""

from __future__ import annotations

import json
import subprocess

import pytest

from repro.analysis.cli import lint_main
from repro.cli import main as repro_main
from repro.obs.manifest import RunManifest

CLEAN = "def f(a=None):\n    return a\n"
DIRTY = "def f(a=[]):\n    return a\n\n\ndef g(b={}):\n    return b\n"
WARN_ONLY = "s = {1.0, 2.0}\ntotal = sum(s)\n"


@pytest.fixture
def tree(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "pkg").mkdir()
    return tmp_path


def write(tree, name, src):
    path = tree / "pkg" / name
    path.write_text(src)
    return str(path)


class TestExitCodes:
    def test_clean_exits_zero(self, tree, capsys):
        write(tree, "a.py", CLEAN)
        assert lint_main(["pkg"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_errors_exit_one(self, tree, capsys):
        write(tree, "a.py", DIRTY)
        assert lint_main(["pkg"]) == 1
        out = capsys.readouterr().out
        assert "REP006" in out and "2 error(s)" in out

    def test_warnings_pass_unless_strict(self, tree):
        write(tree, "a.py", WARN_ONLY)
        assert lint_main(["pkg"]) == 0
        assert lint_main(["pkg", "--strict"]) == 1

    def test_unknown_rule_is_usage_error(self, tree, capsys):
        write(tree, "a.py", CLEAN)
        assert lint_main(["pkg", "--select", "REP999"]) == 2
        assert "REP999" in capsys.readouterr().err

    def test_no_files_is_usage_error(self, tree, capsys):
        (tree / "empty").mkdir()
        assert lint_main(["empty"]) == 2
        assert "no python files" in capsys.readouterr().err

    def test_select_scopes_the_run(self, tree):
        write(tree, "a.py", DIRTY)
        assert lint_main(["pkg", "--select", "REP001"]) == 0
        assert lint_main(["pkg", "--select", "REP006"]) == 1
        assert lint_main(["pkg", "--ignore", "REP006"]) == 0


class TestJsonFormat:
    def test_json_document_shape(self, tree, capsys):
        write(tree, "a.py", DIRTY)
        assert lint_main(["pkg", "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["stats"]["errors"] == 2
        assert doc["stats"]["per_rule"] == {"REP006": 2}
        assert doc["exit_code"] == 1
        finding = doc["findings"][0]
        for key in ("rule", "severity", "path", "line", "message",
                    "snippet", "fingerprint"):
            assert key in finding

    def test_json_clean(self, tree, capsys):
        write(tree, "a.py", CLEAN)
        assert lint_main(["pkg", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["findings"] == [] and doc["exit_code"] == 0


class TestBaselineFlow:
    def test_write_baseline_then_clean(self, tree, capsys):
        write(tree, "a.py", DIRTY)
        assert lint_main(["pkg", "--write-baseline"]) == 0
        assert (tree / "LINT_baseline.json").exists()
        capsys.readouterr()
        assert lint_main(["pkg"]) == 0  # grandfathered
        assert "2 baselined" in capsys.readouterr().out

    def test_new_violation_still_fails(self, tree):
        path = write(tree, "a.py", DIRTY)
        assert lint_main(["pkg", "--write-baseline"]) == 0
        with open(path, "a") as fh:
            fh.write("\n\ndef h(c=set()):\n    return c\n")
        assert lint_main(["pkg"]) == 1

    def test_no_baseline_flag_ignores_file(self, tree):
        write(tree, "a.py", DIRTY)
        assert lint_main(["pkg", "--write-baseline"]) == 0
        assert lint_main(["pkg", "--no-baseline"]) == 1

    def test_stale_entries_are_reported(self, tree, capsys):
        path = write(tree, "a.py", DIRTY)
        assert lint_main(["pkg", "--write-baseline"]) == 0
        with open(path, "w") as fh:
            fh.write(CLEAN)
        capsys.readouterr()
        assert lint_main(["pkg"]) == 0
        assert "stale baseline entry" in capsys.readouterr().out

    def test_corrupt_baseline_is_usage_error(self, tree, capsys):
        write(tree, "a.py", CLEAN)
        (tree / "LINT_baseline.json").write_text("[1, 2, 3]\n")
        assert lint_main(["pkg"]) == 2


class TestStatsAndManifest:
    def test_stats_table(self, tree, capsys):
        write(tree, "a.py", DIRTY)
        write(tree, "b.py", WARN_ONLY)
        lint_main(["pkg", "--stats"])
        out = capsys.readouterr().out
        assert "lint stats" in out
        assert "REP006" in out and "no-mutable-defaults" in out
        assert "REP003" in out

    def test_manifest_metrics(self, tree, capsys):
        write(tree, "a.py", DIRTY)
        out_path = str(tree / "lint_manifest.json")
        lint_main(["pkg", "--manifest-out", out_path])
        manifest = RunManifest.read(out_path)
        assert manifest.name == "lint"
        assert manifest.metrics["lint.errors"] == 2
        assert manifest.metrics["lint.rule.REP006"] == 2
        assert manifest.metrics["lint.files"] == 1
        assert manifest.config["rules"][0] == "REP001"
        assert manifest.schema_version == 1

    def test_suppressed_counted_in_summary(self, tree, capsys):
        write(
            tree, "a.py",
            "def f(a=[]):  # repro: noqa[REP006]\n    return a\n",
        )
        assert lint_main(["pkg"]) == 0
        assert "1 suppressed inline" in capsys.readouterr().out


#: AST-clean, but REP011 fires once the flow layer runs.
FLOW_RACY = (
    "import asyncio\n\n\n"
    "class C:\n"
    "    async def fill(self, k):\n"
    "        v = self.d.get(k)\n"
    "        if v is None:\n"
    "            v = await asyncio.sleep(0)\n"
    "            self.d[k] = v\n"
    "        return v\n"
)


class TestFlowFlag:
    def test_flow_adds_whole_program_findings(self, tree, capsys):
        write(tree, "a.py", FLOW_RACY)
        assert lint_main(["pkg", "--no-flow-cache"]) == 0
        capsys.readouterr()
        assert lint_main(["pkg", "--flow", "--no-flow-cache"]) == 1
        assert "REP011" in capsys.readouterr().out

    def test_flow_rule_ids_accepted_by_select(self, tree):
        write(tree, "a.py", FLOW_RACY)
        assert lint_main(
            ["pkg", "--flow", "--no-flow-cache", "--select", "REP012"]
        ) == 0
        assert lint_main(
            ["pkg", "--flow", "--no-flow-cache", "--ignore", "REP011"]
        ) == 0

    def test_flow_stats_exposed_in_json(self, tree, capsys):
        write(tree, "a.py", FLOW_RACY)
        cache = str(tree / "flow_cache.json")
        lint_main(["pkg", "--flow", "--flow-cache", cache,
                   "--format", "json"])
        cold = json.loads(capsys.readouterr().out)["stats"]["flow"]
        assert cold["reanalyzed"] == cold["files"] == 1
        lint_main(["pkg", "--flow", "--flow-cache", cache,
                   "--format", "json"])
        warm = json.loads(capsys.readouterr().out)["stats"]["flow"]
        assert warm["reanalyzed"] == 0
        assert warm["summaries_reused"] == warm["files"]

    def test_flow_manifest_metrics(self, tree):
        write(tree, "a.py", FLOW_RACY)
        out_path = str(tree / "lint_manifest.json")
        lint_main(["pkg", "--flow", "--no-flow-cache",
                   "--manifest-out", out_path])
        manifest = RunManifest.read(out_path)
        assert manifest.metrics["lint.flow.files"] == 1
        assert manifest.metrics["lint.flow.reanalyzed"] == 1
        assert manifest.config["flow"] is True


class TestSarifFormat:
    def test_sarif_document_shape(self, tree, capsys):
        write(tree, "a.py", DIRTY)
        assert lint_main(["pkg", "--format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        [run] = doc["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert {r["ruleId"] for r in run["results"]} == {"REP006"}

    def test_sarif_includes_flow_rules_when_enabled(self, tree, capsys):
        write(tree, "a.py", FLOW_RACY)
        assert lint_main(
            ["pkg", "--flow", "--no-flow-cache", "--format", "sarif"]
        ) == 1
        doc = json.loads(capsys.readouterr().out)
        [run] = doc["runs"]
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert "REP011" in rule_ids
        assert {r["ruleId"] for r in run["results"]} == {"REP011"}

    def test_sarif_marks_baselined_as_suppressed(self, tree, capsys):
        write(tree, "a.py", DIRTY)
        assert lint_main(["pkg", "--write-baseline"]) == 0
        capsys.readouterr()
        assert lint_main(["pkg", "--format", "sarif"]) == 0
        doc = json.loads(capsys.readouterr().out)
        results = doc["runs"][0]["results"]
        assert results and all("suppressions" in r for r in results)


class TestChangedScope:
    @staticmethod
    def _git(*args):
        subprocess.run(
            ["git", "-c", "user.email=lint@test", "-c", "user.name=lint",
             *args],
            check=True, capture_output=True,
        )

    def _committed_tree(self, tree):
        self._git("init", "-q")
        self._git("add", "-A")
        self._git("commit", "-qm", "seed")

    def test_changed_narrows_to_edited_files(self, tree, capsys):
        write(tree, "a.py", DIRTY)
        write(tree, "b.py", CLEAN)
        self._committed_tree(tree)
        # Nothing changed: nothing linted, clean exit despite a.py.
        assert lint_main(["pkg", "--changed", "--no-flow-cache"]) == 0
        assert "no changed python files" in capsys.readouterr().out
        # Touch only the clean file: still clean.
        write(tree, "b.py", CLEAN + "\n# edited\n")
        assert lint_main(["pkg", "--changed", "--no-flow-cache"]) == 0
        # Touch the dirty file: its findings come back.
        write(tree, "a.py", DIRTY + "\n# edited\n")
        capsys.readouterr()
        assert lint_main(["pkg", "--changed", "--no-flow-cache"]) == 1
        assert "REP006" in capsys.readouterr().out

    def test_changed_includes_reverse_dependents(self, tree, capsys):
        # lib.py is imported by app.py; app.py carries the violation.
        # Editing *only* lib.py must still re-lint app.py.  A `repro`
        # directory so the summarizer assigns real dotted modules.
        root = tree / "repro"
        root.mkdir()
        (root / "lib.py").write_text("def helper():\n    return 1\n")
        (root / "app.py").write_text(
            "from repro.lib import helper\n\n\n"
            "def g(b={}):\n    return helper(), b\n"
        )
        self._committed_tree(tree)
        (root / "lib.py").write_text("def helper():\n    return 2\n")
        capsys.readouterr()
        assert lint_main(["repro", "--changed", "--no-flow-cache"]) == 1
        out = capsys.readouterr().out
        assert "app.py" in out and "REP006" in out

    def test_changed_sees_untracked_files(self, tree, capsys):
        write(tree, "a.py", CLEAN)
        self._committed_tree(tree)
        write(tree, "new.py", DIRTY)
        capsys.readouterr()
        assert lint_main(["pkg", "--changed", "--no-flow-cache"]) == 1
        assert "new.py" in capsys.readouterr().out


class TestTopLevelVerb:
    def test_repro_lint_dispatch(self, tree, capsys):
        write(tree, "a.py", DIRTY)
        assert repro_main(["lint", "pkg"]) == 1
        assert "REP006" in capsys.readouterr().out

    def test_repro_lint_help_smoke(self, capsys):
        with pytest.raises(SystemExit) as exc:
            repro_main(["lint", "--help"])
        assert exc.value.code == 0
        assert "determinism" in capsys.readouterr().out
