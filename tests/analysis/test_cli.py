"""``repro lint`` CLI tests: exit codes, formats, baseline flow, stats,
manifest wiring, and dispatch through the top-level ``repro`` verb."""

from __future__ import annotations

import json

import pytest

from repro.analysis.cli import lint_main
from repro.cli import main as repro_main
from repro.obs.manifest import RunManifest

CLEAN = "def f(a=None):\n    return a\n"
DIRTY = "def f(a=[]):\n    return a\n\n\ndef g(b={}):\n    return b\n"
WARN_ONLY = "s = {1.0, 2.0}\ntotal = sum(s)\n"


@pytest.fixture
def tree(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "pkg").mkdir()
    return tmp_path


def write(tree, name, src):
    path = tree / "pkg" / name
    path.write_text(src)
    return str(path)


class TestExitCodes:
    def test_clean_exits_zero(self, tree, capsys):
        write(tree, "a.py", CLEAN)
        assert lint_main(["pkg"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_errors_exit_one(self, tree, capsys):
        write(tree, "a.py", DIRTY)
        assert lint_main(["pkg"]) == 1
        out = capsys.readouterr().out
        assert "REP006" in out and "2 error(s)" in out

    def test_warnings_pass_unless_strict(self, tree):
        write(tree, "a.py", WARN_ONLY)
        assert lint_main(["pkg"]) == 0
        assert lint_main(["pkg", "--strict"]) == 1

    def test_unknown_rule_is_usage_error(self, tree, capsys):
        write(tree, "a.py", CLEAN)
        assert lint_main(["pkg", "--select", "REP999"]) == 2
        assert "REP999" in capsys.readouterr().err

    def test_no_files_is_usage_error(self, tree, capsys):
        (tree / "empty").mkdir()
        assert lint_main(["empty"]) == 2
        assert "no python files" in capsys.readouterr().err

    def test_select_scopes_the_run(self, tree):
        write(tree, "a.py", DIRTY)
        assert lint_main(["pkg", "--select", "REP001"]) == 0
        assert lint_main(["pkg", "--select", "REP006"]) == 1
        assert lint_main(["pkg", "--ignore", "REP006"]) == 0


class TestJsonFormat:
    def test_json_document_shape(self, tree, capsys):
        write(tree, "a.py", DIRTY)
        assert lint_main(["pkg", "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["stats"]["errors"] == 2
        assert doc["stats"]["per_rule"] == {"REP006": 2}
        assert doc["exit_code"] == 1
        finding = doc["findings"][0]
        for key in ("rule", "severity", "path", "line", "message",
                    "snippet", "fingerprint"):
            assert key in finding

    def test_json_clean(self, tree, capsys):
        write(tree, "a.py", CLEAN)
        assert lint_main(["pkg", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["findings"] == [] and doc["exit_code"] == 0


class TestBaselineFlow:
    def test_write_baseline_then_clean(self, tree, capsys):
        write(tree, "a.py", DIRTY)
        assert lint_main(["pkg", "--write-baseline"]) == 0
        assert (tree / "LINT_baseline.json").exists()
        capsys.readouterr()
        assert lint_main(["pkg"]) == 0  # grandfathered
        assert "2 baselined" in capsys.readouterr().out

    def test_new_violation_still_fails(self, tree):
        path = write(tree, "a.py", DIRTY)
        assert lint_main(["pkg", "--write-baseline"]) == 0
        with open(path, "a") as fh:
            fh.write("\n\ndef h(c=set()):\n    return c\n")
        assert lint_main(["pkg"]) == 1

    def test_no_baseline_flag_ignores_file(self, tree):
        write(tree, "a.py", DIRTY)
        assert lint_main(["pkg", "--write-baseline"]) == 0
        assert lint_main(["pkg", "--no-baseline"]) == 1

    def test_stale_entries_are_reported(self, tree, capsys):
        path = write(tree, "a.py", DIRTY)
        assert lint_main(["pkg", "--write-baseline"]) == 0
        with open(path, "w") as fh:
            fh.write(CLEAN)
        capsys.readouterr()
        assert lint_main(["pkg"]) == 0
        assert "stale baseline entry" in capsys.readouterr().out

    def test_corrupt_baseline_is_usage_error(self, tree, capsys):
        write(tree, "a.py", CLEAN)
        (tree / "LINT_baseline.json").write_text("[1, 2, 3]\n")
        assert lint_main(["pkg"]) == 2


class TestStatsAndManifest:
    def test_stats_table(self, tree, capsys):
        write(tree, "a.py", DIRTY)
        write(tree, "b.py", WARN_ONLY)
        lint_main(["pkg", "--stats"])
        out = capsys.readouterr().out
        assert "lint stats" in out
        assert "REP006" in out and "no-mutable-defaults" in out
        assert "REP003" in out

    def test_manifest_metrics(self, tree, capsys):
        write(tree, "a.py", DIRTY)
        out_path = str(tree / "lint_manifest.json")
        lint_main(["pkg", "--manifest-out", out_path])
        manifest = RunManifest.read(out_path)
        assert manifest.name == "lint"
        assert manifest.metrics["lint.errors"] == 2
        assert manifest.metrics["lint.rule.REP006"] == 2
        assert manifest.metrics["lint.files"] == 1
        assert manifest.config["rules"][0] == "REP001"
        assert manifest.schema_version == 1

    def test_suppressed_counted_in_summary(self, tree, capsys):
        write(
            tree, "a.py",
            "def f(a=[]):  # repro: noqa[REP006]\n    return a\n",
        )
        assert lint_main(["pkg"]) == 0
        assert "1 suppressed inline" in capsys.readouterr().out


class TestTopLevelVerb:
    def test_repro_lint_dispatch(self, tree, capsys):
        write(tree, "a.py", DIRTY)
        assert repro_main(["lint", "pkg"]) == 1
        assert "REP006" in capsys.readouterr().out

    def test_repro_lint_help_smoke(self, capsys):
        with pytest.raises(SystemExit) as exc:
            repro_main(["lint", "--help"])
        assert exc.value.code == 0
        assert "determinism" in capsys.readouterr().out
