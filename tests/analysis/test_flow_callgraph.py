"""Property-based tests for call-graph construction.

Invariants (hypothesis-generated programs):

* the node and edge sets are invariant under definition *reordering*
  within a module;
* an edge resolves identically under every import spelling of the same
  callee (``from m import f``, ``import m``, ``import m as alias``);
* cyclic and self-recursive call graphs never crash linking or the
  taint/factory fixpoints, and taint still reaches every function on a
  path to a source.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.flow.callgraph import build_program
from repro.analysis.flow.summaries import summarize_source
from repro.analysis.flow.taint import coroutine_factories, propagate_taint

NAMES = [f"fn{i}" for i in range(6)]

# caller -> callee pairs over a small closed universe of functions.
edge_sets = st.frozensets(
    st.tuples(st.sampled_from(NAMES), st.sampled_from(NAMES)),
    max_size=12,
)


def module_source(order, edges, tainted=frozenset()):
    lines = ["import time", ""]
    calls = {}
    for caller, callee in edges:
        calls.setdefault(caller, set()).add(callee)
    for name in order:
        lines.append(f"def {name}():")
        body = [f"    {c}()" for c in sorted(calls.get(name, ()))]
        if name in tainted:
            body.append("    return time.time()")
        lines.extend(body or ["    pass"])
        lines.append("")
    return "\n".join(lines)


def link(src, path="repro/core/mod.py"):
    return build_program([summarize_source(path, src, "digest")])


@given(edges=edge_sets, order=st.permutations(NAMES))
@settings(max_examples=60, deadline=None)
def test_nodes_and_edges_invariant_under_reordering(edges, order):
    base = link(module_source(NAMES, edges))
    shuffled = link(module_source(order, edges))
    assert base.graph.nodes() == shuffled.graph.nodes()
    assert base.graph.edges == shuffled.graph.edges
    assert base.graph.redges == shuffled.graph.redges


@given(
    edges=edge_sets,
    alias=st.sampled_from(["helpers", "h", "corehelpers"]),
    spelling=st.sampled_from(["from", "import", "alias"]),
)
@settings(max_examples=60, deadline=None)
def test_edges_stable_under_import_aliasing(edges, alias, spelling):
    lib = module_source(NAMES, edges)
    if spelling == "from":
        prelude = "from repro.core.helpers import fn0\n"
        call = "fn0()"
    elif spelling == "import":
        prelude = "import repro.core.helpers\n"
        call = "repro.core.helpers.fn0()"
    else:
        prelude = f"import repro.core.helpers as {alias}\n"
        call = f"{alias}.fn0()"
    client = f"{prelude}\n\ndef entry():\n    return {call}\n"
    program = build_program([
        summarize_source("repro/core/helpers.py", lib, "a"),
        summarize_source("repro/sim/client.py", client, "b"),
    ])
    assert "repro.core.helpers.fn0" in program.graph.callees(
        "repro.sim.client.entry"
    )


@given(edges=edge_sets)
@settings(max_examples=60, deadline=None)
def test_cycles_and_recursion_never_crash_fixpoints(edges):
    # Force at least one cycle and one self-recursion on top of the
    # random edges; fn0 is always a taint source.
    forced = set(edges) | {("fn1", "fn2"), ("fn2", "fn1"), ("fn3", "fn3")}
    program = link(module_source(NAMES, forced, tainted={"fn0"}))
    taint = propagate_taint(program)
    factories = coroutine_factories(program)
    qual = "repro.core.mod.fn0"
    assert qual in taint
    assert taint[qual].chain[-1] == qual
    assert factories == set()
    # Every caller with an edge path to fn0 is tainted too.
    reaches = {qual}
    changed = True
    while changed:
        changed = False
        for target in sorted(reaches):
            for caller in program.graph.callers(target):
                if caller not in reaches:
                    reaches.add(caller)
                    changed = True
    assert reaches <= set(taint)


def test_self_recursion_produces_no_edge():
    program = link("def loop():\n    return loop()\n")
    assert program.graph.nodes() == []


def test_method_resolution_through_base_class():
    src = (
        "class Base:\n"
        "    def tick(self):\n"
        "        return 0\n\n"
        "class Child(Base):\n"
        "    def run(self):\n"
        "        return self.tick()\n"
    )
    program = link(src)
    assert program.graph.callees("repro.core.mod.Child.run") == [
        "repro.core.mod.Base.tick"
    ]


def test_attribute_typed_receiver_resolves():
    src = (
        "class Engine:\n"
        "    def lookup(self, k):\n"
        "        return k\n\n"
        "class Server:\n"
        "    def __init__(self):\n"
        "        self.engine = Engine()\n\n"
        "    def handle(self, k):\n"
        "        return self.engine.lookup(k)\n"
    )
    program = link(src)
    assert program.graph.callees("repro.core.mod.Server.handle") == [
        "repro.core.mod.Engine.lookup"
    ]
