"""Flow-rule fixture tests: REP010/REP011/REP012 fire on their
positive fixtures with exact counts and stay silent on the negatives.

The fixtures live under ``tests/analysis/fixtures/flow/repro/`` so the
summarizer resolves them to real-looking ``repro.sim``/``repro.serve``
modules; the whole subtree is linked into one program per test run,
exactly like a real ``repro lint --flow`` invocation.
"""

from __future__ import annotations

import collections
from pathlib import Path

import pytest

from repro.analysis.engine import iter_python_files
from repro.analysis.findings import Severity
from repro.analysis.flow.engine import FlowEngine, FlowResult

FLOW_FIXTURES = Path(__file__).parent / "fixtures" / "flow"

#: (fixture relpath, rule id, expected finding count) — exact, so a
#: rule that starts over- or under-matching fails loudly.
POSITIVE = [
    ("repro/sim/driver.py", "REP010", 3),
    ("repro/serve/races.py", "REP011", 2),
    ("repro/serve/orphans.py", "REP012", 2),
]

#: Negative fixtures must be entirely clean under every flow rule.
NEGATIVE = [
    "repro/sim/driver_ok.py",
    "repro/serve/races_ok.py",
    "repro/serve/orphans_ok.py",
    "repro/core/helpers.py",  # out of REP010 scope: sources live here
]


@pytest.fixture(scope="module")
def result() -> FlowResult:
    files = [str(p) for p in iter_python_files([str(FLOW_FIXTURES)])]
    return FlowEngine().run(files)


def _report(result: FlowResult, relpath: str):
    path = str(FLOW_FIXTURES / relpath)
    assert path in result.reports, sorted(result.reports)
    return result.reports[path]


@pytest.mark.parametrize("relpath,rule,count", POSITIVE)
def test_flow_rule_fires_on_positive_fixture(result, relpath, rule, count):
    report = _report(result, relpath)
    by_rule = collections.Counter(f.rule for f in report.findings)
    assert by_rule[rule] == count, (
        f"{relpath}: expected {count} {rule}, got "
        f"{[f.format() for f in report.findings]}"
    )


@pytest.mark.parametrize("relpath", NEGATIVE)
def test_flow_rule_silent_on_negative_fixture(result, relpath):
    report = _report(result, relpath)
    assert report.findings == [], [
        f.format() for f in report.findings
    ]


class TestGoldenChains:
    """REP010 messages carry the full, deterministic call chain."""

    def test_wallclock_chain_is_spelled_out(self, result):
        findings = _report(result, "repro/sim/driver.py").findings
        [hit] = [f for f in findings if "fanout" in f.message]
        assert (
            "via repro.sim.driver.run_step -> repro.core.helpers.fanout "
            "-> repro.core.helpers.indirect -> repro.core.helpers.stamp "
            "-> time.time()"
        ) in hit.message
        assert hit.severity is Severity.ERROR
        assert hit.line == 9

    def test_setiter_chain_is_warning_severity(self, result):
        findings = _report(result, "repro/sim/driver.py").findings
        [hit] = [f for f in findings if "merge_weights" in f.message]
        assert (
            "via repro.sim.driver.rank -> repro.core.helpers.merge_weights"
        ) in hit.message
        assert hit.severity is Severity.WARNING

    def test_environ_read_reported_directly(self, result):
        findings = _report(result, "repro/sim/driver.py").findings
        [hit] = [f for f in findings if "os.environ" in f.message]
        assert "pure function of (log, seed, config)" in hit.message

    def test_interprocedural_race_names_the_callee_path(self, result):
        findings = _report(result, "repro/serve/races.py").findings
        [hit] = [f for f in findings if "self.version" in f.message]
        assert "(via the awaited callee)" in hit.message


class TestNoqaSuppression:
    def test_flow_findings_respect_inline_noqa(self, tmp_path):
        src = (
            "import asyncio\n\n\n"
            "class C:\n"
            "    async def fill(self, k):\n"
            "        v = self.d.get(k)\n"
            "        if v is None:\n"
            "            v = await asyncio.sleep(0)\n"
            "            self.d[k] = v  # repro: noqa[REP011]\n"
            "        return v\n"
        )
        path = tmp_path / "repro" / "serve" / "mod.py"
        path.parent.mkdir(parents=True)
        path.write_text(src)
        result = FlowEngine().run([str(path)])
        report = result.reports[str(path)]
        assert report.findings == []
        assert [f.rule for f in report.suppressed] == ["REP011"]
