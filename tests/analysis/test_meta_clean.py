"""Meta-test: the repo itself passes its own static analyzer.

This is the in-tree mirror of the CI ``lint-gate`` job: the gated
trees (``src/``, ``benchmarks/``, ``tests/differential/``) must carry
zero unsuppressed, unbaselined findings — errors *or* warnings.  If a
rule change or a code change trips this, either fix the code (the
default) or, for a deliberate exception, add an inline
``# repro: noqa[RULE]`` with a justifying comment.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.analysis.baseline import DEFAULT_BASELINE, Baseline, partition
from repro.analysis.engine import Analyzer

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Must match ``repro.analysis.cli.DEFAULT_PATHS`` — the CI gate.
GATED_TREES = ("src", "benchmarks", "tests/differential")


def test_gated_trees_are_lint_clean():
    reports = Analyzer().run(
        [str(REPO_ROOT / tree) for tree in GATED_TREES]
    )
    assert len(reports) > 100  # sanity: the walk really found the repo
    findings = [f for r in reports for f in r.findings]
    baseline = Baseline.load(str(REPO_ROOT / DEFAULT_BASELINE))
    new, _, stale = partition(findings, baseline)
    assert new == [], "new lint findings:\n" + "\n".join(
        f.format() for f in new
    )
    assert stale == [], (
        "stale baseline entries (violations already fixed) — prune "
        f"{DEFAULT_BASELINE}: {stale}"
    )


def test_gated_trees_are_flow_clean():
    """The whole-program layer (REP010-REP012) over the same trees the
    CI lint-gate runs with ``--flow`` — no cache, so this is always the
    honest cold answer."""
    from repro.analysis.engine import iter_python_files
    from repro.analysis.flow.engine import FlowEngine

    files = [
        str(p) for p in iter_python_files(
            [str(REPO_ROOT / tree) for tree in GATED_TREES]
        )
    ]
    result = FlowEngine().run(files)
    findings = [
        f for report in result.reports.values() for f in report.findings
    ]
    assert findings == [], "flow findings:\n" + "\n".join(
        f.format() for f in findings
    )
    assert result.stats["graph_edges"] > 500  # sanity: linking worked


def test_no_parse_failures_anywhere():
    reports = Analyzer().run(
        [str(REPO_ROOT / tree) for tree in GATED_TREES]
    )
    broken = [r.path for r in reports if r.error]
    assert broken == []


def test_fixture_tree_is_excluded_from_the_gate():
    # The positive fixtures *must* be dirty; they live outside every
    # gated tree so the meta-gate and CI cannot be poisoned by them.
    fixtures = Path(__file__).parent / "fixtures"
    for tree in GATED_TREES:
        gated = (REPO_ROOT / tree).resolve()
        assert os.path.commonpath(
            [str(fixtures.resolve()), str(gated)]
        ) != str(gated)
