"""Incremental flow-cache tests: the warm path re-analyzes nothing,
and touching one file re-analyzes exactly that file plus its reverse
call-graph dependents — never the whole tree.
"""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from repro.analysis.engine import iter_python_files
from repro.analysis.flow.cache import FlowCache
from repro.analysis.flow.engine import FlowEngine

FLOW_FIXTURES = Path(__file__).parent / "fixtures" / "flow"


@pytest.fixture
def tree(tmp_path):
    shutil.copytree(FLOW_FIXTURES, tmp_path / "flow")
    return tmp_path / "flow"


def run(tree, tmp_path):
    files = [str(p) for p in iter_python_files([str(tree)])]
    engine = FlowEngine(cache=FlowCache(str(tmp_path / "cache.json")))
    return engine.run(files)


def rel(tree, result_paths):
    return {str(Path(p).relative_to(tree)) for p in result_paths}


def test_cold_run_analyzes_everything(tree, tmp_path):
    result = run(tree, tmp_path)
    assert result.stats["summaries_computed"] == result.stats["files"]
    assert result.stats["reanalyzed"] == result.stats["files"]


def test_warm_run_reanalyzes_nothing(tree, tmp_path):
    first = run(tree, tmp_path)
    second = run(tree, tmp_path)
    assert second.stats["summaries_reused"] == second.stats["files"]
    assert second.stats["summaries_computed"] == 0
    assert second.stats["reanalyzed"] == 0
    assert second.stats["reanalyzed_files"] == []
    # Cached findings are byte-identical to the cold ones.
    for path, report in first.reports.items():
        cached = second.reports[path]
        assert [f.fingerprint() for f in report.findings] == [
            f.fingerprint() for f in cached.findings
        ]


def test_touching_one_file_reanalyzes_exactly_its_dependents(
    tree, tmp_path
):
    run(tree, tmp_path)
    helpers = tree / "repro" / "core" / "helpers.py"
    helpers.write_text(helpers.read_text() + "\n# touched\n")
    result = run(tree, tmp_path)
    # helpers.py itself re-summarizes; everything else reuses.
    assert result.stats["summaries_computed"] == 1
    # Re-analyzed: the touched file plus the two sim/ fixtures that
    # call into it — and nothing in serve/, whose findings cannot
    # depend on repro.core.helpers.
    assert rel(tree, result.stats["reanalyzed_files"]) == {
        "repro/core/helpers.py",
        "repro/sim/driver.py",
        "repro/sim/driver_ok.py",
    }


def test_touching_a_leaf_reanalyzes_only_that_leaf(tree, tmp_path):
    run(tree, tmp_path)
    races = tree / "repro" / "serve" / "races.py"
    races.write_text(races.read_text() + "\n# touched\n")
    result = run(tree, tmp_path)
    assert rel(tree, result.stats["reanalyzed_files"]) == {
        "repro/serve/races.py"
    }


def test_rule_selection_change_invalidates_findings(tree, tmp_path):
    run(tree, tmp_path)
    files = [str(p) for p in iter_python_files([str(tree)])]
    engine = FlowEngine(
        select=["REP011"],
        cache=FlowCache(str(tmp_path / "cache.json")),
    )
    result = engine.run(files)
    # Summaries survive (file digests unchanged) but the cached
    # finding sets were computed under a different rule list.
    assert result.stats["summaries_reused"] == result.stats["files"]
    assert result.stats["reanalyzed"] == result.stats["files"]


def test_corrupt_cache_degrades_to_cold(tree, tmp_path):
    run(tree, tmp_path)
    (tmp_path / "cache.json").write_text("{not json")
    result = run(tree, tmp_path)
    assert result.stats["summaries_reused"] == 0
    assert result.stats["reanalyzed"] == result.stats["files"]


def test_deleted_file_is_pruned_from_cache(tree, tmp_path):
    run(tree, tmp_path)
    (tree / "repro" / "serve" / "orphans_ok.py").unlink()
    run(tree, tmp_path)
    cache = FlowCache(str(tmp_path / "cache.json"))
    assert not any("orphans_ok" in p for p in cache.entries)


def test_dependents_of_follows_reverse_imports(tree, tmp_path):
    result = run(tree, tmp_path)
    helpers = str(tree / "repro" / "core" / "helpers.py")
    dependents = result.dependents_of([helpers])
    assert rel(tree, dependents) == {
        "repro/sim/driver.py",
        "repro/sim/driver_ok.py",
    }
