"""SARIF export tests: document shape, suppressions, and validation
against an embedded subset of the SARIF 2.1.0 JSON schema.

The subset covers everything ``to_sarif`` emits — required top-level
keys, the tool driver with rule descriptors, and per-result location,
fingerprint and suppression structure — with ``additionalProperties``
left open exactly where the full OASIS schema leaves it open.
"""

from __future__ import annotations

import json

import jsonschema
import pytest

from repro.analysis.findings import Finding, Severity
from repro.analysis.sarif import SARIF_VERSION, to_sarif

#: Subset of the OASIS SARIF 2.1.0 schema, tightened to what the
#: exporter promises (e.g. results always carry a physical location).
SARIF_SCHEMA = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "$schema": {"type": "string", "format": "uri"},
        "version": {"const": "2.1.0"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "version": {"type": "string"},
                                    "informationUri": {
                                        "type": "string",
                                        "format": "uri",
                                    },
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "name": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                    "columnKind": {
                        "enum": [
                            "utf16CodeUnits", "unicodeCodePoints",
                        ],
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": [
                                "ruleId", "level", "message", "locations",
                            ],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {
                                    "type": "integer", "minimum": 0,
                                },
                                "level": {
                                    "enum": [
                                        "none", "note", "warning", "error",
                                    ],
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {
                                    "type": "array",
                                    "minItems": 1,
                                    "items": {
                                        "type": "object",
                                        "required": ["physicalLocation"],
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "required": [
                                                    "artifactLocation",
                                                    "region",
                                                ],
                                                "properties": {
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",  # noqa: E501
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type": "integer",  # noqa: E501
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                                "partialFingerprints": {
                                    "type": "object",
                                    "additionalProperties": {
                                        "type": "string",
                                    },
                                },
                                "suppressions": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "required": ["kind"],
                                        "properties": {
                                            "kind": {
                                                "enum": [
                                                    "inSource", "external",
                                                ],
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


def finding(rule="REP001", severity=Severity.ERROR, line=3):
    return Finding(
        rule=rule, severity=severity, path="src/repro/sim/mod.py",
        line=line, col=4, message=f"{rule} fired",
        snippet="t = time.time()",
    )


@pytest.fixture
def doc():
    return to_sarif(
        [finding(), finding("REP011", Severity.ERROR, 9)],
        baselined=[finding("REP003", Severity.WARNING, 12)],
        tool_version="1.2.3",
    )


def test_document_validates_against_sarif_schema(doc):
    jsonschema.validate(doc, SARIF_SCHEMA)


def test_document_is_json_round_trippable(doc):
    assert json.loads(json.dumps(doc)) == doc


def test_driver_lists_every_registered_rule(doc):
    driver = doc["runs"][0]["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    assert driver["version"] == "1.2.3"
    ids = [r["id"] for r in driver["rules"]]
    # The default registry: all AST rules plus the flow rules.
    for rule_id in ("REP001", "REP009", "REP010", "REP011", "REP012"):
        assert rule_id in ids
    assert ids == sorted(ids, key=ids.index)  # stable order
    for descriptor in driver["rules"]:
        assert descriptor["shortDescription"]["text"]


def test_results_carry_location_and_fingerprint(doc):
    results = doc["runs"][0]["results"]
    assert len(results) == 3
    first = results[0]
    assert first["ruleId"] == "REP001"
    loc = first["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"] == "src/repro/sim/mod.py"
    assert loc["region"] == {"startLine": 3, "startColumn": 5}
    assert first["partialFingerprints"]["reproLintFingerprint/v1"]
    assert "suppressions" not in first


def test_baselined_findings_are_suppressed_not_dropped(doc):
    results = doc["runs"][0]["results"]
    [suppressed] = [r for r in results if "suppressions" in r]
    assert suppressed["ruleId"] == "REP003"
    assert suppressed["level"] == "warning"
    assert suppressed["suppressions"][0]["kind"] == "external"


def test_rule_index_points_into_driver_rules(doc):
    driver_rules = doc["runs"][0]["tool"]["driver"]["rules"]
    for result in doc["runs"][0]["results"]:
        idx = result["ruleIndex"]
        assert driver_rules[idx]["id"] == result["ruleId"]


def test_empty_run_still_validates():
    doc = to_sarif([], [])
    jsonschema.validate(doc, SARIF_SCHEMA)
    assert doc["runs"][0]["results"] == []
    assert doc["version"] == SARIF_VERSION
