"""Per-rule fixture tests: every rule fires on its positive fixture and
stays silent on its negative twin.

Fixtures live under ``tests/analysis/fixtures/``; the ``repro/...``
subtree there resolves through :class:`repro.analysis.context.FileContext`
exactly like the real package, so package-scoped rules (REP001, REP004,
REP007-strict, REP008) are exercised with their real scoping logic.
"""

from __future__ import annotations

import collections
from pathlib import Path

import pytest

from repro.analysis.engine import Analyzer

FIXTURES = Path(__file__).parent / "fixtures"

#: (fixture, rule id, expected finding count) — counts are exact so a
#: rule that quietly starts over- or under-matching fails loudly.
POSITIVE = [
    ("repro/sim/wallclock_bad.py", "REP001", 3),
    ("rng_bad.py", "REP002", 8),
    ("setorder_bad.py", "REP003", 4),
    ("repro/serve/asyncsafety_bad.py", "REP004", 6),
    ("tasks_bad.py", "REP005", 3),
    ("defaults_bad.py", "REP006", 5),
    ("repro/serve/excepts_bad.py", "REP007", 2),
    ("repro/sim/layering_bad.py", "REP008", 2),
    ("repro/serve/buffers_bad.py", "REP009", 3),
]

#: Negative fixtures must be *entirely* clean, not just clean for the
#: rule under test — a false positive from any rule is a bug.
NEGATIVE = [
    ("repro/sim/wallclock_ok.py", "REP001"),
    ("rng_ok.py", "REP002"),
    ("setorder_ok.py", "REP003"),
    ("repro/serve/asyncsafety_ok.py", "REP004"),
    ("tasks_ok.py", "REP005"),
    ("defaults_ok.py", "REP006"),
    ("repro/serve/excepts_ok.py", "REP007"),
    ("repro/sim/layering_ok.py", "REP008"),
    ("repro/serve/buffers_ok.py", "REP009"),
]


def analyze(relpath: str):
    return Analyzer().analyze_file(str(FIXTURES / relpath))


@pytest.mark.parametrize("relpath,rule,count", POSITIVE)
def test_rule_fires_on_positive_fixture(relpath, rule, count):
    report = analyze(relpath)
    by_rule = collections.Counter(f.rule for f in report.findings)
    assert by_rule[rule] == count, (
        f"{relpath}: expected {count} {rule} findings, got "
        f"{by_rule[rule]}: {[f.format() for f in report.findings]}"
    )


@pytest.mark.parametrize("relpath,rule", NEGATIVE)
def test_rule_silent_on_negative_fixture(relpath, rule):
    report = analyze(relpath)
    assert report.findings == [], (
        f"{relpath}: expected clean, got "
        f"{[f.format() for f in report.findings]}"
    )


def test_positive_fixture_findings_carry_location_and_snippet():
    report = analyze("repro/sim/wallclock_bad.py")
    for finding in report.findings:
        assert finding.line > 0
        assert finding.snippet  # baselines match on this
        assert "wallclock_bad.py" in finding.path


def test_scoped_rule_ignores_unscoped_package():
    # The same wall-clock source outside sim/serve/logs/storage is fine:
    # experiments may stamp wall time into manifests.
    src = (FIXTURES / "repro/sim/wallclock_bad.py").read_text()
    report = Analyzer().analyze_source("repro/experiments/wallclock.py", src)
    assert [f for f in report.findings if f.rule == "REP001"] == []


def test_clock_modules_are_whitelisted():
    src = "import time\n\ndef now():\n    return time.monotonic()\n"
    for path in ("src/repro/sim/clock.py", "src/repro/serve/vclock.py"):
        report = Analyzer().analyze_source(path, src)
        assert report.findings == [], path


def test_blocking_call_check_is_serve_only():
    src = (
        "import time\nimport asyncio\n\n"
        "async def f():\n    time.sleep(0.1)\n"
    )
    serve = Analyzer().analyze_source("repro/serve/mod.py", src)
    sim = Analyzer().analyze_source("repro/sim/mod.py", src)
    assert any(f.rule == "REP004" for f in serve.findings)
    assert not any(f.rule == "REP004" for f in sim.findings)


def test_broad_except_outside_serve_is_tolerated():
    src = "try:\n    pass\nexcept Exception:\n    pass\n"
    report = Analyzer().analyze_source("repro/experiments/mod.py", src)
    assert report.findings == []


def test_layering_flags_unknown_package():
    src = "from repro.shinynew import thing\n"
    report = Analyzer().analyze_source("repro/sim/mod.py", src)
    assert any(
        f.rule == "REP008" and "layering table" in f.message
        for f in report.findings
    )
