"""Baseline round-trip, occurrence counting, and line-shift robustness."""

from __future__ import annotations

from repro.analysis.baseline import Baseline, partition
from repro.analysis.engine import Analyzer

BAD_SRC = """\
def f(a=[]):
    return a


def g(b={}):
    return b
"""


def findings_for(src: str, path: str = "mod.py"):
    return Analyzer().analyze_source(path, src).findings


class TestRoundTrip:
    def test_write_load_partition(self, tmp_path):
        findings = findings_for(BAD_SRC)
        assert len(findings) == 2
        path = str(tmp_path / "LINT_baseline.json")
        Baseline.from_findings(findings).write(path)

        loaded = Baseline.load(path)
        assert len(loaded) == 2
        new, grandfathered, stale = partition(findings, loaded)
        assert new == []
        assert len(grandfathered) == 2
        assert stale == []

    def test_missing_file_is_empty_baseline(self, tmp_path):
        baseline = Baseline.load(str(tmp_path / "nope.json"))
        assert len(baseline) == 0
        new, grandfathered, _ = partition(findings_for(BAD_SRC), baseline)
        assert len(new) == 2 and grandfathered == []

    def test_entries_carry_reason_slot(self, tmp_path):
        path = str(tmp_path / "b.json")
        Baseline.from_findings(
            findings_for(BAD_SRC), reason="legacy fixture"
        ).write(path)
        loaded = Baseline.load(path)
        assert all(
            e["reason"] == "legacy fixture" for e in loaded.to_entries()
        )


class TestLineShiftRobustness:
    def test_same_violation_moved_down_still_matches(self):
        baseline = Baseline.from_findings(findings_for(BAD_SRC))
        shifted = '"""A new docstring pushes everything down."""\n\n' + BAD_SRC
        new, grandfathered, stale = partition(
            findings_for(shifted), baseline
        )
        assert new == []  # line numbers changed, fingerprints did not
        assert len(grandfathered) == 2
        assert stale == []

    def test_edited_line_is_a_new_finding(self):
        baseline = Baseline.from_findings(findings_for(BAD_SRC))
        edited = BAD_SRC.replace("def f(a=[]):", "def f(a=[], c=1):")
        new, grandfathered, stale = partition(findings_for(edited), baseline)
        assert len(new) == 1  # f's snippet changed -> new fingerprint
        assert len(grandfathered) == 1  # g untouched
        assert len(stale) == 1  # old f entry now unused


class TestOccurrenceCounting:
    def test_extra_identical_violation_fails(self):
        # Two identical offending lines in one file, baseline allows one.
        src = "def f(a=[]):\n    return a\n"
        one = findings_for(src)
        baseline = Baseline.from_findings(one)
        doubled = src + "\n\ndef g(b=7):\n    return b\n" + src.replace(
            "def f", "def h"
        )
        # h's line text differs from f's (different name) -> new finding.
        new, grandfathered, _ = partition(findings_for(doubled), baseline)
        assert len(grandfathered) == 1
        assert len(new) == 1

    def test_count_field_tolerates_duplicates(self):
        src = "def f(a=[]):\n    return a\n"
        # The same line text twice: fingerprints collide, count = 2.
        doubled = src + "\n" + src
        findings = findings_for(doubled)
        assert len(findings) == 2
        baseline = Baseline.from_findings(findings)
        entries = baseline.to_entries()
        assert len(entries) == 1 and entries[0]["count"] == 2
        new, grandfathered, stale = partition(findings, baseline)
        assert new == [] and len(grandfathered) == 2 and stale == []

    def test_stale_entries_reported_with_unused_budget(self):
        baseline = Baseline.from_findings(findings_for(BAD_SRC))
        clean = "def f(a=None):\n    return a\n"
        new, grandfathered, stale = partition(findings_for(clean), baseline)
        assert new == [] and grandfathered == []
        assert len(stale) == 2
        assert all(s["unused"] == 1 for s in stale)
