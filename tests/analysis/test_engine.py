"""Engine-level tests: dispatch, suppression, contexts, file discovery."""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.analysis.context import FileContext, ImportMap, parse_noqa
from repro.analysis.engine import Analyzer, Rule, iter_python_files, walk_in_order
from repro.analysis.findings import Severity

FIXTURES = Path(__file__).parent / "fixtures"


class TestImportMap:
    def resolve(self, source: str, expr: str):
        tree = ast.parse(source + "\n_probe = " + expr)
        imports = ImportMap(tree)
        probe = tree.body[-1].value
        return imports.resolve(probe)

    def test_plain_import(self):
        assert self.resolve("import time", "time.time") == "time.time"

    def test_aliased_import(self):
        assert (
            self.resolve("import numpy as np", "np.random.rand")
            == "numpy.random.rand"
        )

    def test_from_import_alias(self):
        assert (
            self.resolve("from datetime import datetime as dt", "dt.now")
            == "datetime.datetime.now"
        )

    def test_from_import_function(self):
        assert self.resolve("from time import monotonic", "monotonic") == (
            "time.monotonic"
        )

    def test_unimported_name_resolves_to_itself(self):
        assert self.resolve("", "sum") == "sum"

    def test_non_name_root_is_unknown(self):
        tree = ast.parse("get_lock().acquire")
        assert ImportMap(tree).resolve(tree.body[0].value) is None


class TestNoqa:
    def test_bracket_colon_and_bare_forms(self):
        lines = [
            "x = 1  # repro: noqa[REP001]",
            "y = 2  # repro: noqa: REP002, REP003",
            "z = 3  # repro: noqa",
            "plain = 4",
        ]
        noqa = parse_noqa(lines)
        assert noqa[1] == frozenset({"REP001"})
        assert noqa[2] == frozenset({"REP002", "REP003"})
        assert "*" in noqa[3] or noqa[3]  # bare directive suppresses all
        assert 4 not in noqa

    def test_ruff_noqa_without_repro_prefix_is_not_ours(self):
        assert parse_noqa(["except:  # noqa: E722"]) == {}

    def test_suppression_fixture_end_to_end(self):
        report = Analyzer().analyze_file(str(FIXTURES / "suppression.py"))
        fired = sorted(f.snippet for f in report.findings)
        assert len(report.findings) == 2  # wrong_rule + leaky control
        assert any("leaky" in s for s in fired)
        assert any("wrong_rule" in s for s in fired)
        assert len(report.suppressed) == 4


class TestFileContext:
    def make(self, path: str) -> FileContext:
        return FileContext(path, "", ast.parse(""))

    def test_subpackage_from_nested_path(self):
        assert self.make("src/repro/sim/replay.py").subpackage == "sim"

    def test_subpackage_from_fixture_tree(self):
        ctx = self.make("tests/analysis/fixtures/repro/serve/x.py")
        assert ctx.subpackage == "serve"

    def test_top_level_module_uses_stem(self):
        assert self.make("src/repro/cli.py").subpackage == "cli"

    def test_outside_repro_tree(self):
        ctx = self.make("benchmarks/bench_core_ops.py")
        assert ctx.subpackage is None
        assert not ctx.in_packages({"sim"})

    def test_rightmost_repro_component_wins(self):
        ctx = self.make("repro/tests/fixtures/repro/sim/x.py")
        assert ctx.subpackage == "sim"


class TestDispatch:
    def test_rules_with_same_visitor_all_run(self):
        class CountCalls(Rule):
            id = "TST001"
            name = "count-calls"

            def visit_Call(self, node):
                self.report(node, "call seen")

        class CountCallsToo(Rule):
            id = "TST002"
            name = "count-calls-too"

            def visit_Call(self, node):
                self.report(node, "call also seen")

        analyzer = Analyzer(rules=[CountCalls, CountCallsToo])
        report = analyzer.analyze_source("x.py", "f()\ng()\n")
        assert sorted(f.rule for f in report.findings) == [
            "TST001", "TST001", "TST002", "TST002",
        ]

    def test_applies_to_gates_instantiation(self):
        class ServeOnly(Rule):
            id = "TST003"
            name = "serve-only"

            @classmethod
            def applies_to(cls, ctx):
                return ctx.subpackage == "serve"

            def visit_Module(self, node):
                self.report(node, "hit")

        analyzer = Analyzer(rules=[ServeOnly])
        assert analyzer.analyze_source("repro/serve/x.py", "").findings
        assert not analyzer.analyze_source("repro/sim/x.py", "").findings

    def test_findings_sorted_by_position(self):
        report = Analyzer().analyze_file(str(FIXTURES / "defaults_bad.py"))
        positions = [(f.line, f.col) for f in report.findings]
        assert positions == sorted(positions)

    def test_syntax_error_reports_rep000(self):
        report = Analyzer().analyze_source("broken.py", "def f(:\n")
        assert report.error is not None
        assert [f.rule for f in report.findings] == ["REP000"]
        assert report.findings[0].severity is Severity.ERROR

    def test_walk_in_order_is_source_ordered(self):
        tree = ast.parse("a = 1\nb = 2\nc = 3\n")
        names = [
            n.id for n in walk_in_order(tree) if isinstance(n, ast.Name)
        ]
        assert names == ["a", "b", "c"]


class TestSelection:
    def test_select_runs_only_named_rules(self):
        analyzer = Analyzer(select=["REP006"])
        assert [r.id for r in analyzer.rules] == ["REP006"]

    def test_select_by_name(self):
        analyzer = Analyzer(select=["no-mutable-defaults"])
        assert [r.id for r in analyzer.rules] == ["REP006"]

    def test_ignore_drops_rules(self):
        analyzer = Analyzer(ignore=["REP003"])
        assert "REP003" not in [r.id for r in analyzer.rules]

    def test_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="REP999"):
            Analyzer(select=["REP999"])
        with pytest.raises(ValueError, match="unknown"):
            Analyzer(ignore=["not-a-rule"])


class TestDiscovery:
    def test_iter_python_files_deduplicates(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "b.py").write_text("y = 2\n")
        (tmp_path / "sub" / "__pycache__").mkdir()
        (tmp_path / "sub" / "__pycache__" / "c.py").write_text("z = 3\n")
        files = list(
            iter_python_files(
                [str(tmp_path), str(tmp_path / "a.py"), str(tmp_path / "sub")]
            )
        )
        names = [Path(f).name for f in files]
        assert names.count("a.py") == 1
        assert "b.py" in names
        assert "c.py" not in names  # __pycache__ pruned
