"""Tests for SLO rules, burn-rate alerting, and verdicts (repro.obs.slo)."""

import json

import pytest

from repro.obs.slo import SLOMonitor, SLOPolicy, SLORule


def _policy(**overrides):
    defaults = dict(
        rules=(
            SLORule("p99", "latency", objective=0.9, threshold_s=1.0),
        ),
        long_window_s=10.0,
        short_window_s=2.0,
        burn_threshold=2.0,
    )
    defaults.update(overrides)
    return SLOPolicy(**defaults)


class TestRuleValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            SLORule("x", "availability", objective=0.9)

    def test_objective_bounds(self):
        for bad in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                SLORule("x", "hit_rate", objective=bad)

    def test_latency_needs_threshold(self):
        with pytest.raises(ValueError):
            SLORule("x", "latency", objective=0.9)

    def test_budget_is_complement(self):
        rule = SLORule("x", "hit_rate", objective=0.75)
        assert rule.budget == pytest.approx(0.25)


class TestPolicyValidation:
    def test_empty_policy_rejected(self):
        with pytest.raises(ValueError):
            SLOPolicy(rules=())

    def test_duplicate_rule_names_rejected(self):
        rule = SLORule("dup", "hit_rate", objective=0.5)
        with pytest.raises(ValueError):
            SLOPolicy(rules=(rule, rule))

    def test_short_window_must_not_exceed_long(self):
        with pytest.raises(ValueError):
            _policy(long_window_s=1.0, short_window_s=5.0)

    def test_json_round_trip(self, tmp_path):
        policy = _policy()
        path = tmp_path / "policy.json"
        path.write_text(json.dumps(policy.to_dict()))
        loaded = SLOPolicy.from_json(str(path))
        assert loaded == policy


class TestClassification:
    def test_latency_rule_counts_slow_and_shed_as_bad(self):
        monitor = SLOMonitor(_policy())
        monitor.record_request(0.1, latency_s=0.5, hit=True)
        monitor.record_request(0.2, latency_s=5.0, hit=False)
        monitor.record_request(0.3, shed=True)
        verdict = monitor.verdict()
        rule = verdict["rules"]["p99"]
        assert rule["total"] == 3
        assert rule["bad"] == 2

    def test_hit_rate_rule_ignores_sheds(self):
        policy = _policy(rules=(SLORule("hr", "hit_rate", objective=0.5),))
        monitor = SLOMonitor(policy)
        monitor.record_request(0.1, latency_s=0.1, hit=True)
        monitor.record_request(0.2, latency_s=0.1, hit=False)
        monitor.record_request(0.3, shed=True)
        rule = monitor.verdict()["rules"]["hr"]
        assert rule["total"] == 2
        assert rule["bad"] == 1

    def test_shed_rate_rule_counts_everything(self):
        policy = _policy(rules=(SLORule("sh", "shed_rate", objective=0.5),))
        monitor = SLOMonitor(policy)
        monitor.record_request(0.1, latency_s=0.1, hit=True)
        monitor.record_request(0.2, shed=True)
        rule = monitor.verdict()["rules"]["sh"]
        assert rule["total"] == 2
        assert rule["bad"] == 1


class TestBurnRateAlerting:
    def test_alert_fires_once_per_episode_and_rearms(self):
        monitor = SLOMonitor(_policy())
        # Saturate both windows with bad events: burn >> threshold.
        for i in range(20):
            monitor.record_request(i * 0.1, latency_s=9.0, hit=False)
        fired = monitor.evaluate(2.0)
        assert len(fired) == 1
        assert fired[0].rule == "p99"
        assert fired[0].burn_long >= 2.0
        # Still firing: no duplicate alert.
        assert monitor.evaluate(2.5) == []
        # Recovery: good traffic pushes the short window under threshold.
        for i in range(200):
            monitor.record_request(3.0 + i * 0.05, latency_s=0.1, hit=True)
        assert monitor.evaluate(13.0) == []
        # A fresh bad burst fires a second alert.
        for i in range(200):
            monitor.record_request(14.0 + i * 0.01, latency_s=9.0, hit=False)
        assert len(monitor.evaluate(16.0)) == 1
        assert len(monitor.alerts) == 2

    def test_no_alert_when_only_long_window_burns(self):
        monitor = SLOMonitor(_policy())
        # Bad events only in the long window's past; short window clean.
        for i in range(20):
            monitor.record_request(i * 0.1, latency_s=9.0, hit=False)
        for i in range(40):
            monitor.record_request(4.0 + i * 0.05, latency_s=0.1, hit=True)
        assert monitor.evaluate(6.0) == []

    def test_no_traffic_no_alert(self):
        monitor = SLOMonitor(_policy())
        assert monitor.evaluate(100.0) == []


class TestVerdict:
    def test_pass_when_within_budget_and_no_alerts(self):
        monitor = SLOMonitor(_policy())
        for i in range(100):
            monitor.record_request(i * 0.1, latency_s=0.1, hit=True)
        monitor.evaluate(10.0)
        verdict = monitor.verdict()
        assert verdict["verdict"] == "pass"
        assert verdict["passed"] is True
        assert verdict["alerts_total"] == 0
        assert verdict["policy"]["burn_threshold"] == 2.0

    def test_fail_on_budget_overrun_even_without_alert(self):
        monitor = SLOMonitor(_policy())
        monitor.record_request(0.1, latency_s=9.0, hit=False)
        monitor.record_request(0.2, latency_s=0.1, hit=True)
        verdict = monitor.verdict()
        assert verdict["verdict"] == "fail"
        assert verdict["rules"]["p99"]["bad_fraction"] == pytest.approx(0.5)

    def test_fail_records_alert_history(self):
        monitor = SLOMonitor(_policy())
        for i in range(20):
            monitor.record_request(i * 0.1, latency_s=9.0, hit=False)
        monitor.evaluate(2.0)
        verdict = monitor.verdict()
        assert verdict["passed"] is False
        assert len(verdict["alerts"]) == 1
        assert verdict["alerts"][0]["rule"] == "p99"


class TestEnergyRules:
    def test_energy_rule_needs_threshold_j(self):
        with pytest.raises(ValueError):
            SLORule("e", "energy", objective=0.9)
        with pytest.raises(ValueError):
            SLORule("e", "energy", objective=0.9, threshold_j=0.0)

    def test_battery_burn_rule_needs_threshold(self):
        with pytest.raises(ValueError):
            SLORule("b", "battery_burn", objective=0.9)

    def test_energy_rule_classifies_joules_budget(self):
        policy = _policy(
            rules=(SLORule("e", "energy", objective=0.5, threshold_j=1.0),)
        )
        monitor = SLOMonitor(policy)
        monitor.record_request(0.1, latency_s=0.1, hit=True, energy_j=0.4)
        monitor.record_request(0.2, latency_s=2.0, hit=False, energy_j=9.0)
        # No attribution and sheds are skipped (no energy spent).
        monitor.record_request(0.3, latency_s=0.1, hit=True)
        monitor.record_request(0.4, shed=True)
        rule = monitor.verdict()["rules"]["e"]
        assert rule["total"] == 2
        assert rule["bad"] == 1

    def test_battery_burn_rule_classifies_drain_rate(self):
        policy = _policy(
            rules=(
                SLORule("b", "battery_burn", objective=0.5, threshold=0.25),
            )
        )
        monitor = SLOMonitor(policy)
        monitor.record_request(
            0.1, latency_s=0.1, hit=True, battery_burn_per_day=0.1
        )
        monitor.record_request(
            0.2, latency_s=0.1, hit=True, battery_burn_per_day=0.6
        )
        monitor.record_request(0.3, shed=True)
        rule = monitor.verdict()["rules"]["b"]
        assert rule["total"] == 2
        assert rule["bad"] == 1

    def test_energy_policy_json_round_trip(self, tmp_path):
        policy = _policy(
            rules=(
                SLORule("e", "energy", objective=0.9, threshold_j=2.5),
                SLORule(
                    "b", "battery_burn", objective=0.95, threshold=0.3
                ),
            )
        )
        path = tmp_path / "policy.json"
        path.write_text(json.dumps(policy.to_dict()))
        assert SLOPolicy.from_json(str(path)) == policy
