"""Tests for the windowed time-series engine (repro.obs.timeseries)."""

import math

import pytest

from repro.obs.timeseries import (
    ExemplarRing,
    TimeSeriesRegistry,
    WindowedCounter,
    WindowedGauge,
    WindowedHistogram,
)


class TestWindowedCounter:
    def test_total_and_rate_within_window(self):
        wc = WindowedCounter(width_s=1.0, n_buckets=5)
        wc.inc(0.2)
        wc.inc(1.7, 2)
        wc.inc(3.0)
        assert wc.total(3.5) == 4
        assert wc.rate(3.5) == pytest.approx(4 / 5.0)

    def test_old_buckets_age_out(self):
        wc = WindowedCounter(width_s=1.0, n_buckets=5)
        wc.inc(0.5, 10)
        wc.inc(4.5)
        assert wc.total(4.9) == 11
        # At t=5.9 the window is buckets 1..5: bucket 0 has aged out.
        assert wc.total(5.9) == 1

    def test_ring_slot_reuse_resets_stale_bucket(self):
        wc = WindowedCounter(width_s=1.0, n_buckets=3)
        wc.inc(0.5, 7)  # bucket 0
        wc.inc(3.5, 1)  # bucket 3 claims the same slot as bucket 0
        assert wc.per_bucket(4.0) == [(3.0, 1.0)]

    def test_observe_total_mirrors_monotonic_counter(self):
        wc = WindowedCounter(width_s=1.0, n_buckets=10)
        wc.observe_total(0.0, 100)  # seeds the baseline
        wc.observe_total(1.5, 103)
        wc.observe_total(2.5, 103)  # no delta, no bucket write
        wc.observe_total(3.5, 110)
        assert wc.total(4.0) == 10
        with pytest.raises(ValueError):
            wc.observe_total(5.0, 90)

    def test_negative_increment_rejected(self):
        wc = WindowedCounter()
        with pytest.raises(ValueError):
            wc.inc(0.0, -1)


class TestWindowedGauge:
    def test_last_and_high_watermark(self):
        g = WindowedGauge(width_s=1.0, n_buckets=4)
        g.observe(0.5, 3)
        g.observe(0.9, 1)
        g.observe(2.5, 2)
        assert g.last(3.0) == 2
        assert g.high_watermark(3.0) == 3
        # After bucket 0 ages out, the watermark drops.
        assert g.high_watermark(4.5) == 2

    def test_empty_window_is_nan(self):
        g = WindowedGauge(width_s=1.0, n_buckets=4)
        assert math.isnan(g.last(10.0))
        assert math.isnan(g.high_watermark(10.0))


class TestWindowedHistogram:
    def test_quantiles_exact_at_extremes(self):
        h = WindowedHistogram(width_s=1.0, n_buckets=10)
        for i in range(100):
            h.observe(i * 0.05, float(i))
        assert h.quantile(5.0, 0) == 0.0
        assert h.quantile(5.0, 100) == 99.0
        assert h.count(5.0) == 100
        assert h.mean(5.0) == pytest.approx(49.5)

    def test_rolling_quantile_over_pooled_buckets(self):
        h = WindowedHistogram(width_s=1.0, n_buckets=4)
        for i in range(10):
            h.observe(0.5, 1.0)
            h.observe(1.5, 100.0)
        assert h.quantile(2.0, 50) == 1.0
        # At t=4.2 the window is buckets 1..4: the cheap bucket 0 has
        # aged out and only the expensive bucket remains.
        assert h.quantile(4.2, 50) == 100.0

    def test_empty_is_nan_and_bad_percentile_raises(self):
        h = WindowedHistogram()
        assert math.isnan(h.quantile(0.0, 99))
        with pytest.raises(ValueError):
            h.quantile(0.0, 101)


class TestExemplarRing:
    def test_keeps_top_k_per_bucket(self):
        ring = ExemplarRing(width_s=1.0, n_buckets=4, k=2)
        for i in range(10):
            ring.observe(0.5, float(i), {"id": i})
        top = ring.top(0.9)
        assert [e["id"] for e in top] == [9, 8]
        assert [e["latency_s"] for e in top] == [9.0, 8.0]

    def test_quiet_bucket_not_crowded_out(self):
        ring = ExemplarRing(width_s=1.0, n_buckets=4, k=2)
        ring.observe(0.5, 100.0, {"id": "busy-1"})
        ring.observe(0.6, 90.0, {"id": "busy-2"})
        ring.observe(0.7, 80.0, {"id": "busy-3"})
        ring.observe(1.5, 0.001, {"id": "quiet"})
        everything = ring.top(2.0, k=10)
        assert {e["id"] for e in everything} == {"busy-1", "busy-2", "quiet"}


class TestTimeSeriesRegistry:
    def test_get_or_create_shares_geometry(self):
        reg = TimeSeriesRegistry(width_s=2.0, n_buckets=30)
        c = reg.counter("a")
        assert reg.counter("a") is c
        assert c.width_s == 2.0
        assert reg.window_s == 60.0
        assert reg.names() == ["a"]

    def test_type_conflict_raises(self):
        reg = TimeSeriesRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_covers_all_instruments(self):
        reg = TimeSeriesRegistry()
        reg.counter("c").inc(0.5)
        reg.gauge("g").observe(0.5, 2)
        reg.histogram("h").observe(0.5, 1.0)
        snap = reg.snapshot(1.0)
        assert snap["c"]["type"] == "windowed_counter"
        assert snap["g"]["type"] == "windowed_gauge"
        assert snap["h"]["type"] == "windowed_histogram"
