"""Tests for the per-request energy attribution primitives."""

import math

import pytest

from repro.obs.energy import (
    ENERGY_COMPONENTS,
    EnergyBreakdown,
    EnergyLedger,
    EnergyWindows,
    split_shared_radio,
)
from repro.obs.timeseries import TimeSeriesRegistry


class TestEnergyBreakdown:
    def test_components_sum_to_total(self):
        bd = EnergyBreakdown(
            ramp_j=1.1, transfer_j=2.2, tail_j=3.3,
            storage_j=0.4, render_j=0.5, base_j=0.6,
        )
        expected = ((1.1 + 2.2) + 3.3) + 0.4 + 0.5 + 0.6
        assert bd.total_j == expected
        assert bd.radio_j == (1.1 + 2.2) + 3.3

    def test_defaults_are_zero(self):
        bd = EnergyBreakdown()
        assert bd.total_j == 0.0
        assert bd.radio_j == 0.0

    def test_negative_component_rejected(self):
        for name in ENERGY_COMPONENTS:
            with pytest.raises(ValueError):
                EnergyBreakdown(**{name + "_j": -0.001})

    def test_with_radio_replaces_only_radio(self):
        bd = EnergyBreakdown(
            ramp_j=1.0, transfer_j=2.0, tail_j=3.0,
            storage_j=0.4, render_j=0.5, base_j=0.6,
        )
        out = bd.with_radio(0.5, 2.0, 1.5)
        assert out.ramp_j == 0.5
        assert out.tail_j == 1.5
        assert out.storage_j == bd.storage_j
        assert out.render_j == bd.render_j
        assert out.base_j == bd.base_j
        # Original is frozen / unchanged.
        assert bd.ramp_j == 1.0

    def test_dict_round_trip(self):
        bd = EnergyBreakdown(ramp_j=0.1, transfer_j=0.2, tail_j=0.3, base_j=0.9)
        raw = bd.to_dict()
        assert raw["total_j"] == bd.total_j
        assert EnergyBreakdown.from_dict(raw) == bd

    def test_from_dict_missing_keys_default_zero(self):
        assert EnergyBreakdown.from_dict({"ramp_j": 1.0}) == EnergyBreakdown(
            ramp_j=1.0
        )


class TestSplitSharedRadio:
    def test_no_riders_is_identity(self):
        leader, rider = split_shared_radio(1.0, 2.0, 3.0, 0)
        assert leader == (1.0, 2.0, 3.0)
        assert rider == (0.0, 0.0, 0.0)

    def test_transfer_stays_with_leader(self):
        leader, rider = split_shared_radio(1.0, 2.0, 3.0, 4)
        assert leader[1] == 2.0
        assert rider[1] == 0.0

    @pytest.mark.parametrize("riders", [1, 2, 3, 7, 100])
    def test_shares_resum_exactly(self, riders):
        """Conservation holds to float addition, not a tolerance: the
        leader's share is the remainder after the riders take theirs."""
        ramp, transfer, tail = 0.123456, 7.89, 2.5e-3
        leader, rider = split_shared_radio(ramp, transfer, tail, riders)
        assert leader[0] + riders * rider[0] == ramp
        assert leader[2] + riders * rider[2] == tail
        assert leader[1] + riders * rider[1] == transfer

    def test_ramp_and_tail_split_equally(self):
        leader, rider = split_shared_radio(3.0, 5.0, 6.0, 2)
        assert rider[0] == pytest.approx(1.0)
        assert rider[2] == pytest.approx(2.0)
        assert leader[0] == pytest.approx(1.0)
        assert leader[2] == pytest.approx(2.0)

    def test_negative_riders_rejected(self):
        with pytest.raises(ValueError):
            split_shared_radio(1.0, 1.0, 1.0, -1)


class TestEnergyLedger:
    def test_balanced_ledger_conserves(self):
        ledger = EnergyLedger()
        ledger.add(2.5, 2.5)
        ledger.add(0.5, 0.0)  # a rider's share...
        ledger.add(2.0, 2.5)  # ...balanced by its leader's remainder
        assert ledger.requests == 3
        assert ledger.conserved()
        assert ledger.conservation_error_j == pytest.approx(0.0, abs=1e-12)

    def test_drift_detected(self):
        ledger = EnergyLedger()
        ledger.add(3.0, 2.0)
        assert not ledger.conserved()
        assert ledger.conservation_error_j == pytest.approx(1.0)

    def test_tolerance_scales_with_total(self):
        ledger = EnergyLedger()
        ledger.add(1e9, 1e9 + 1e-4)
        # 1e-4 J drift on a 1e9 J timeline is within 1e-12 relative.
        assert ledger.conserved()
        assert not ledger.conserved(tol_j=1e-6)

    def test_snapshot_keys(self):
        ledger = EnergyLedger()
        ledger.add(1.0, 1.0)
        snap = ledger.snapshot()
        assert snap == {
            "attributed_radio_j": 1.0,
            "timeline_radio_j": 1.0,
            "conservation_error_j": 0.0,
            "requests": 1,
        }


class TestEnergyWindows:
    def make(self):
        reg = TimeSeriesRegistry(width_s=1.0, n_buckets=60)
        return EnergyWindows(reg)

    def test_rolling_stats(self):
        win = self.make()
        hit = EnergyBreakdown(storage_j=0.4, base_j=0.1)  # 0.5 J
        miss = EnergyBreakdown(ramp_j=2.0, transfer_j=6.0, tail_j=2.0)  # 10 J
        for i in range(10):
            win.on_request(float(i), "cache", True, hit, 0.0)
        win.on_request(10.0, "3g", False, miss, miss.radio_j)
        rolling = win.rolling(11.0)
        assert rolling["hit_energy_j"] == pytest.approx(0.5)
        assert rolling["miss_energy_j"] == pytest.approx(10.0)
        assert rolling["hit_miss_energy_ratio"] == pytest.approx(20.0)
        assert rolling["energy_j_per_query"] == pytest.approx(15.0 / 11)
        assert set(rolling["sources"]) == {"cache", "3g"}
        assert rolling["sources"]["3g"]["energy_j"] == pytest.approx(10.0)
        assert rolling["conservation"]["requests"] == 11

    def test_ratio_nan_without_both_sides(self):
        win = self.make()
        win.on_request(0.0, "cache", True, EnergyBreakdown(storage_j=0.5), 0.0)
        assert math.isnan(win.rolling(1.0)["hit_miss_energy_ratio"])

    def test_per_bucket_power(self):
        win = self.make()
        bd = EnergyBreakdown(transfer_j=3.0)
        win.on_request(5.2, "3g", False, bd, bd.radio_j)
        win.on_request(5.7, "3g", False, bd, bd.radio_j)
        rows = win.per_bucket(6.0)
        row = next(r for r in rows if r["t_start"] == 5.0)
        assert row["energy_j"] == pytest.approx(6.0)
        assert row["power_w"] == pytest.approx(6.0)  # 6 J over a 1 s bucket
        assert row["count"] == 2
        assert row["energy_j_per_query"] == pytest.approx(3.0)
        assert row["sources"]["3g"] == pytest.approx(6.0)

    def test_ledger_tracks_rider_leader_balance(self):
        win = self.make()
        full = EnergyBreakdown(ramp_j=1.0, transfer_j=4.0, tail_j=1.0)
        leader_share, rider_share = split_shared_radio(1.0, 4.0, 1.0, 1)
        leader = full.with_radio(*leader_share)
        rider = full.with_radio(*rider_share)
        win.on_request(0.0, "3g", False, leader, full.radio_j)
        win.on_request(0.0, "3g", False, rider, 0.0)
        assert win.ledger.conserved()

    def test_snapshot_shape(self):
        win = self.make()
        win.on_request(0.0, "cache", True, EnergyBreakdown(storage_j=0.1), 0.0)
        snap = win.snapshot(1.0)
        assert set(snap) == {"rolling", "per_bucket"}
        assert snap["per_bucket"][0]["t_start"] == 0.0
