"""Tests for run manifests."""

import json

from repro.obs.manifest import (
    ManifestRecorder,
    RunManifest,
    collect_manifest,
    git_sha,
    peak_rss_bytes,
)


class TestCollection:
    def test_collect_fields(self):
        m = collect_manifest("fig17", config={"users": 5}, seed=23)
        assert m.name == "fig17"
        assert m.config == {"users": 5}
        assert m.seed == 23
        assert m.schema_version == 1
        assert m.python.count(".") == 2
        assert "T" in m.started_at and m.started_at.endswith("Z")

    def test_git_sha_in_repo(self):
        sha = git_sha()
        assert sha is None or (len(sha) == 40 and set(sha) <= set("0123456789abcdef"))

    def test_peak_rss_positive_on_posix(self):
        rss = peak_rss_bytes()
        assert rss is None or rss > 1024 * 1024

    def test_recorder_times_block(self):
        with ManifestRecorder("x", config={"k": 1}, seed=7) as rec:
            rec.add_metric("events", 10)
        m = rec.manifest
        assert m.wall_time_s >= 0
        assert m.metrics == {"events": 10}
        assert m.seed == 7

    def test_recorder_captures_error(self):
        try:
            with ManifestRecorder("bad") as rec:
                raise KeyError("nope")
        except KeyError:
            pass
        assert rec.manifest.metrics["error"] == "KeyError"


class TestSerialization:
    def test_write_read_round_trip(self, tmp_path):
        m = collect_manifest("bench", config={"n": 3}, seed=1, wall_time_s=2.5)
        path = str(tmp_path / "nested" / "m.json")
        m.write(path)
        loaded = RunManifest.read(path)
        assert loaded == m

    def test_json_is_stable_and_valid(self, tmp_path):
        m = collect_manifest("bench")
        raw = json.loads(m.to_json())
        assert raw["name"] == "bench"
        assert raw["schema_version"] == 1

    def test_from_dict_ignores_unknown_fields(self):
        m = RunManifest.from_dict({"name": "x", "future_field": 1})
        assert m.name == "x"
