"""Property tests for StreamingHistogram.merge reservoir subsampling.

The merge must keep count/sum/min/max exact, and its count-weighted
reservoir partition must fill the reservoir exactly and never starve the
lighter side under extreme count skew (the rounding bias this guards
against: a naive ``round(size * count/total)`` can round the light
side's share to zero, silently deleting its distribution).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.registry import StreamingHistogram

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


def _hist(values, reservoir_size=16):
    h = StreamingHistogram(reservoir_size=reservoir_size)
    for v in values:
        h.add(v)
    return h


class TestMergeExactStats:
    @given(
        a=st.lists(finite_floats, min_size=0, max_size=200),
        b=st.lists(finite_floats, min_size=0, max_size=200),
    )
    @settings(max_examples=200, deadline=None)
    def test_count_sum_min_max_exact(self, a, b):
        ha, hb = _hist(a), _hist(b)
        expect_total = ha.total + hb.total
        ha.merge(hb)
        assert ha.count == len(a) + len(b)
        assert ha.total == expect_total
        if a or b:
            assert ha.min == min(a + b)
            assert ha.max == max(a + b)

    @given(b=st.lists(finite_floats, min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_merge_into_empty_adopts_other(self, b):
        ha = StreamingHistogram(reservoir_size=16)
        ha.merge(_hist(b))
        assert ha.count == len(b)
        assert ha.min == min(b)
        assert ha.max == max(b)
        assert len(ha.samples()) == min(16, len(b))


class TestReservoirPartition:
    @given(
        n_a=st.integers(min_value=1, max_value=400),
        n_b=st.integers(min_value=1, max_value=400),
        size=st.integers(min_value=2, max_value=32),
    )
    @settings(max_examples=200, deadline=None)
    def test_reservoir_exactly_full_after_merge(self, n_a, n_b, size):
        ha = _hist([1.0] * n_a, reservoir_size=size)
        hb = _hist([2.0] * n_b, reservoir_size=size)
        avail = min(n_a, size) + min(n_b, size)
        ha.merge(hb)
        merged = ha.samples()
        # take_self + take_other == reservoir_size whenever enough
        # samples exist on the two sides combined.
        assert len(merged) == min(size, avail)

    @given(
        heavy=st.integers(min_value=1000, max_value=100_000),
        light=st.integers(min_value=1, max_value=3),
        size=st.integers(min_value=2, max_value=32),
    )
    @settings(max_examples=100, deadline=None)
    def test_light_side_survives_extreme_count_skew(self, heavy, light, size):
        """round(size * heavy/total) == size would starve the light side;
        the clamp keeps at least one slot for it in both directions."""
        ha = _hist([1.0] * heavy, reservoir_size=size)
        hb = _hist([2.0] * light, reservoir_size=size)
        ha.merge(hb)
        assert 2.0 in ha.samples(), "light other-side was starved"

        hc = _hist([2.0] * light, reservoir_size=size)
        hd = _hist([1.0] * heavy, reservoir_size=size)
        hc.merge(hd)
        assert 2.0 in hc.samples(), "light self-side was starved"
        assert 1.0 in hc.samples()

    def test_skew_preserves_quantile_mass(self):
        # 10_000 fast ops vs 5 slow outliers: p50 must stay fast, and
        # the slow tail must remain visible at the max.
        fast = _hist([0.01] * 10_000, reservoir_size=64)
        slow = _hist([9.0] * 5, reservoir_size=64)
        fast.merge(slow)
        assert fast.quantile(50) == pytest.approx(0.01)
        assert fast.max == 9.0
        assert 9.0 in fast.samples()
