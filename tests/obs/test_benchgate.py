"""Tests for the bench-trajectory regression gate (repro.obs.benchgate)."""

import json

import pytest

from repro.obs.benchgate import compare, flatten_metrics, load_benches, main


def _manifest(name, metrics):
    return {"name": name, "metrics": metrics}


def _bench_file(tmp_path, filename, benches):
    path = tmp_path / filename
    path.write_text(json.dumps({"benches": benches}))
    return str(path)


class TestFlatten:
    def test_nested_dicts_become_dotted_keys(self):
        flat = flatten_metrics(
            {"sweep": {"x10": {"sojourn_p99_s": 1.5}}, "hit_rate": 0.6}
        )
        assert flat == {"sweep.x10.sojourn_p99_s": 1.5, "hit_rate": 0.6}

    def test_non_numeric_leaves_dropped(self):
        flat = flatten_metrics({"note": "hello", "p99_s": 2.0, "ok": True})
        assert flat == {"p99_s": 2.0}


class TestCompare:
    def test_lower_better_regression_detected(self):
        base = {"lt": {"sojourn_p99_s": 1.0}}
        cand = {"lt": {"sojourn_p99_s": 2.0}}
        rows, regressions = compare(base, cand, max_regression=0.25)
        assert len(rows) == 1
        assert len(regressions) == 1
        assert regressions[0]["metric"] == "sojourn_p99_s"
        assert regressions[0]["regression"] == pytest.approx(1.0)

    def test_higher_better_regression_detected(self):
        base = {"lt": {"hit_rate": 0.6}}
        cand = {"lt": {"hit_rate": 0.3}}
        _, regressions = compare(base, cand, max_regression=0.25)
        assert len(regressions) == 1
        assert regressions[0]["direction"] == "higher"

    def test_improvement_is_not_a_regression(self):
        base = {"lt": {"sojourn_p99_s": 2.0, "hit_rate": 0.4}}
        cand = {"lt": {"sojourn_p99_s": 1.0, "hit_rate": 0.9}}
        rows, regressions = compare(base, cand, max_regression=0.25)
        assert len(rows) == 2
        assert regressions == []

    def test_within_tolerance_passes(self):
        base = {"lt": {"sojourn_p99_s": 1.0}}
        cand = {"lt": {"sojourn_p99_s": 1.2}}
        _, regressions = compare(base, cand, max_regression=0.25)
        assert regressions == []

    def test_unwatched_metrics_ignored(self):
        base = {"lt": {"requests": 100.0}}
        cand = {"lt": {"requests": 999999.0}}
        rows, regressions = compare(base, cand)
        assert rows == []
        assert regressions == []

    def test_nested_sweep_keys_watched_by_tail(self):
        base = {"lt": {"sweep.x10.sojourn_p99_s": 1.0}}
        cand = {"lt": {"sweep.x10.sojourn_p99_s": 10.0}}
        _, regressions = compare(base, cand)
        assert len(regressions) == 1


class TestMain:
    def test_exit_1_on_injected_p99_regression(self, tmp_path, capsys):
        baseline = _bench_file(
            tmp_path, "base.json",
            [_manifest("loadtest", {"sojourn_p99_s": 1.0, "hit_rate": 0.6})],
        )
        candidate = _bench_file(
            tmp_path, "cand.json",
            [_manifest("loadtest", {"sojourn_p99_s": 3.0, "hit_rate": 0.6})],
        )
        code = main(["--baseline", baseline, "--candidate", candidate])
        assert code == 1
        assert "sojourn_p99_s" in capsys.readouterr().out

    def test_exit_0_when_clean(self, tmp_path):
        benches = [_manifest("loadtest", {"sojourn_p99_s": 1.0})]
        baseline = _bench_file(tmp_path, "base.json", benches)
        candidate = _bench_file(tmp_path, "cand.json", benches)
        assert main(["--baseline", baseline, "--candidate", candidate]) == 0

    def test_exit_2_with_no_common_benches(self, tmp_path):
        baseline = _bench_file(
            tmp_path, "base.json", [_manifest("a", {"p99_s": 1.0})]
        )
        candidate = _bench_file(
            tmp_path, "cand.json", [_manifest("b", {"p99_s": 1.0})]
        )
        assert main(["--baseline", baseline, "--candidate", candidate]) == 2

    def test_single_manifest_files_accepted(self, tmp_path):
        base = tmp_path / "base.json"
        base.write_text(
            json.dumps(_manifest("loadtest", {"sojourn_p99_s": 1.0}))
        )
        cand = tmp_path / "cand.json"
        cand.write_text(
            json.dumps(_manifest("loadtest", {"sojourn_p99_s": 1.05}))
        )
        assert main(["--baseline", str(base), "--candidate", str(cand)]) == 0


class TestLoadBenches:
    def test_aggregate_and_single_shapes(self, tmp_path):
        aggregate = _bench_file(
            tmp_path, "agg.json", [_manifest("x", {"m": 1.0})]
        )
        assert set(load_benches(aggregate)) == {"x"}
        single = tmp_path / "one.json"
        single.write_text(json.dumps(_manifest("y", {"m": 1.0})))
        assert set(load_benches(str(single))) == {"y"}


class TestEnergyWatch:
    def test_joules_per_query_regresses_upward(self):
        base = {"lt": {"energy_j_per_query": 1.0}}
        cand = {"lt": {"energy_j_per_query": 2.0}}
        _, regressions = compare(base, cand, max_regression=0.25)
        assert len(regressions) == 1
        assert regressions[0]["direction"] == "lower"

    def test_hit_miss_ratio_regresses_downward(self):
        base = {"lt": {"hit_miss_energy_ratio": 23.0}}
        cand = {"lt": {"hit_miss_energy_ratio": 10.0}}
        _, regressions = compare(base, cand, max_regression=0.25)
        assert len(regressions) == 1
        assert regressions[0]["direction"] == "higher"

    def test_battery_and_charge_projections_watched(self):
        base = {
            "lt": {"battery_day_fraction": 0.05, "queries_per_charge": 1000.0}
        }
        cand = {
            "lt": {"battery_day_fraction": 0.20, "queries_per_charge": 200.0}
        }
        _, regressions = compare(base, cand, max_regression=0.25)
        assert {r["metric"] for r in regressions} == {
            "battery_day_fraction",
            "queries_per_charge",
        }

    def test_nested_energy_sweep_keys_watched(self):
        base = {"lt": {"sweep.x10.energy_j_p99": 1.0}}
        cand = {"lt": {"sweep.x10.energy_j_p99": 5.0}}
        _, regressions = compare(base, cand)
        assert len(regressions) == 1

    def test_improved_energy_is_not_a_regression(self):
        base = {"lt": {"energy_j_per_query": 2.0, "hit_miss_energy_ratio": 10.0}}
        cand = {"lt": {"energy_j_per_query": 1.0, "hit_miss_energy_ratio": 23.0}}
        rows, regressions = compare(base, cand)
        assert len(rows) == 2
        assert regressions == []
