"""Tests for the span tracer: nesting, attributes, JSONL, no-op path."""

import json

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    Tracer,
    disable,
    enable,
    get_tracer,
    load_jsonl,
    span_breakdown,
)


@pytest.fixture(autouse=True)
def _restore_global_tracer():
    yield
    disable()


class TestSpans:
    def test_nesting_parent_ids(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("mid"):
                with t.span("leaf"):
                    pass
        by_name = {r.name: r for r in t.records()}
        assert by_name["outer"].parent_id is None
        assert by_name["mid"].parent_id == by_name["outer"].span_id
        assert by_name["leaf"].parent_id == by_name["mid"].span_id

    def test_siblings_share_parent(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("a"):
                pass
            with t.span("b"):
                pass
        by_name = {r.name: r for r in t.records()}
        assert by_name["a"].parent_id == by_name["outer"].span_id
        assert by_name["b"].parent_id == by_name["outer"].span_id

    def test_attributes(self):
        t = Tracer()
        with t.span("s", mode="full") as span:
            span.set_attr("hit", True)
            span.set_attrs(user_id=7, n=2)
        (record,) = t.records()
        assert record.attrs == {
            "mode": "full", "hit": True, "user_id": 7, "n": 2,
        }

    def test_events_nest_under_current_span(self):
        t = Tracer()
        with t.span("outer"):
            t.event("tick", x=1)
        events = [r for r in t.records() if r.kind == "event"]
        spans = [r for r in t.records() if r.kind == "span"]
        assert events[0].parent_id == spans[0].span_id
        assert events[0].duration_s == 0.0

    def test_exception_closes_span_and_marks_error(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("failing"):
                raise RuntimeError("boom")
        (record,) = t.records()
        assert record.attrs["error"] == "RuntimeError"
        # The stack unwound: a new span is top-level again.
        with t.span("after"):
            pass
        assert t.records()[-1].parent_id is None

    def test_durations_monotone(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
        by_name = {r.name: r for r in t.records()}
        assert by_name["outer"].duration_s >= by_name["inner"].duration_s >= 0

    def test_ring_buffer_eviction(self):
        t = Tracer(capacity=10)
        for i in range(25):
            t.event("e", i=i)
        records = t.records()
        assert len(records) == 10
        assert t.dropped == 15
        assert [r.attrs["i"] for r in records] == list(range(15, 25))


class TestJsonlRoundTrip:
    def test_round_trip(self, tmp_path):
        t = Tracer()
        with t.span("outer", mode="full"):
            with t.span("inner"):
                pass
            t.event("evt", nbytes=512)
        path = str(tmp_path / "trace.jsonl")
        written = t.export_jsonl(path)
        assert written == 3
        loaded = load_jsonl(path)
        assert [(r.name, r.kind, r.span_id, r.parent_id, r.attrs)
                for r in loaded] == [
            (r.name, r.kind, r.span_id, r.parent_id, r.attrs)
            for r in t.records()
        ]

    def test_each_line_is_standalone_json(self, tmp_path):
        t = Tracer()
        with t.span("a"):
            pass
        with t.span("b"):
            pass
        path = str(tmp_path / "trace.jsonl")
        t.export_jsonl(path)
        with open(path) as fh:
            lines = [line for line in fh if line.strip()]
        # First line is the meta record; the rest are span records.
        assert len(lines) == 3
        meta = json.loads(lines[0])
        assert meta["kind"] == "meta"
        assert meta["spans_dropped"] == 0
        assert meta["n_records"] == 2
        for line in lines[1:]:
            record = json.loads(line)
            assert {"name", "span_id", "parent_id", "t_start",
                    "duration_s", "kind", "attrs"} <= set(record)


class TestDisabledTracer:
    def test_default_tracer_is_noop(self):
        assert get_tracer() is NULL_TRACER
        assert not get_tracer().enabled

    def test_noop_span_is_shared_and_inert(self):
        t = get_tracer()
        s1 = t.span("a", x=1)
        s2 = t.span("b")
        assert s1 is s2  # one reusable null span: no allocation per call
        with s1 as span:
            span.set_attr("k", "v")
            span.set_attrs(a=1)
        t.event("e", y=2)
        assert t.records() == []

    def test_noop_export_raises(self):
        with pytest.raises(RuntimeError):
            NULL_TRACER.export_jsonl("/tmp/never.jsonl")

    def test_enable_disable_cycle(self):
        tracer = enable(capacity=16)
        assert get_tracer() is tracer
        with get_tracer().span("s"):
            pass
        assert len(tracer.records()) == 1
        disable()
        assert get_tracer() is NULL_TRACER


class TestBreakdown:
    def test_self_time_excludes_children(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
        rows = {r["name"]: r for r in span_breakdown(t.records())}
        outer, inner = rows["outer"], rows["inner"]
        assert outer["count"] == inner["count"] == 1
        assert outer["self_s"] == pytest.approx(
            outer["total_s"] - inner["total_s"]
        )

    def test_counts_aggregate_by_name(self):
        t = Tracer()
        for _ in range(5):
            with t.span("repeated"):
                pass
        (row,) = span_breakdown(t.records())
        assert row["count"] == 5
        assert row["mean_ms"] == pytest.approx(row["total_s"] / 5 * 1e3)


class TestSampling:
    def test_systematic_rate_keeps_exact_fraction(self):
        t = Tracer(sample_rate=0.25)
        for i in range(100):
            with t.span(f"s{i}"):
                pass
        assert len(t.records()) == 25
        assert t.sampled_out == 75
        assert t.spans_dropped == 75

    def test_sampling_is_deterministic_not_random(self):
        def kept_names():
            t = Tracer(sample_rate=0.5)
            for i in range(10):
                with t.span(f"s{i}"):
                    pass
            return [r.name for r in t.records()]

        first, second = kept_names(), kept_names()
        assert first == second
        assert len(first) == 5

    def test_full_rate_keeps_everything(self):
        t = Tracer(sample_rate=1.0)
        for i in range(10):
            with t.span(f"s{i}"):
                pass
        assert len(t.records()) == 10
        assert t.sampled_out == 0

    def test_spans_dropped_counts_evictions_plus_sampling(self):
        t = Tracer(capacity=4, sample_rate=0.5)
        for i in range(20):
            with t.span(f"s{i}"):
                pass
        assert t.sampled_out == 10
        assert t.dropped == 6  # 10 kept by the sampler, ring holds 4
        assert t.spans_dropped == 16
        assert len(t.records()) == 4

    def test_export_meta_records_sampling(self, tmp_path):
        t = Tracer(sample_rate=0.5)
        for i in range(10):
            with t.span(f"s{i}"):
                pass
        path = str(tmp_path / "trace.jsonl")
        t.export_jsonl(path)
        with open(path) as fh:
            meta = json.loads(fh.readline())
        assert meta["sample_rate"] == 0.5
        assert meta["sampled_out"] == 5
        assert meta["spans_dropped"] == 5
        assert meta["n_records"] == 5

    def test_clear_resets_sampler_state(self):
        t = Tracer(sample_rate=0.5)
        for i in range(9):
            with t.span(f"s{i}"):
                pass
        t.clear()
        assert t.sampled_out == 0
        assert t.spans_dropped == 0
        # Phase restarts: the first post-clear record lands exactly where
        # the first record of a fresh tracer would.
        with t.span("after"):
            pass
        fresh = Tracer(sample_rate=0.5)
        with fresh.span("after"):
            pass
        assert len(t.records()) == len(fresh.records())

    def test_invalid_rate_rejected(self):
        for rate in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                Tracer(sample_rate=rate)

    def test_enable_passes_sample_rate(self):
        tracer = enable(capacity=16, sample_rate=0.5)
        assert get_tracer() is tracer
        assert tracer.sample_rate == 0.5
