"""Concurrency regression tests: the serve path records metrics and
spans from many asyncio tasks (and replay merges from threads), so the
registry and tracer must not lose updates or corrupt span parenting
under concurrent use."""

import asyncio
import threading

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Tracer

N_THREADS = 8
N_OPS = 2_000


class TestRegistryThreadSafety:
    def test_counter_increments_not_lost(self):
        registry = MetricsRegistry()
        counter = registry.counter("hammer.count")

        def work():
            for _ in range(N_OPS):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == N_THREADS * N_OPS

    def test_histogram_count_exact_under_contention(self):
        registry = MetricsRegistry()
        hist = registry.histogram("hammer.latency")

        def work(offset):
            for i in range(N_OPS):
                hist.add(offset + i)

        threads = [
            threading.Thread(target=work, args=(k,)) for k in range(N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hist.count == N_THREADS * N_OPS
        assert hist.min == 0.0
        assert hist.max == N_THREADS - 1 + N_OPS - 1

    def test_get_or_create_races_return_one_instrument(self):
        registry = MetricsRegistry()
        seen = []

        def work():
            for _ in range(200):
                seen.append(registry.counter("shared"))

        threads = [threading.Thread(target=work) for _ in range(N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(c) for c in seen}) == 1

    def test_snapshot_while_recording(self):
        registry = MetricsRegistry()
        hist = registry.histogram("hammer.snap")
        stop = threading.Event()

        def record():
            while not stop.is_set():
                hist.add(1.0)

        writer = threading.Thread(target=record)
        writer.start()
        try:
            for _ in range(200):
                snap = registry.snapshot()["hammer.snap"]
                assert snap["count"] >= 0
        finally:
            stop.set()
            writer.join()

    def test_gauge_max_is_high_watermark(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("hammer.peak")
        gauge.max(3.0)
        gauge.max(1.0)
        assert gauge.value == 3.0


class TestTracerAsyncioSafety:
    def test_interleaved_tasks_nest_independently(self):
        """Each task's spans must parent under its own open span, not
        whichever span another task opened last on the shared thread."""
        tracer = Tracer()

        async def session(name):
            with tracer.span("outer", task=name) as outer:
                await asyncio.sleep(0)  # force interleaving
                with tracer.span("inner", task=name):
                    await asyncio.sleep(0)
                return outer.span_id

        async def main():
            return await asyncio.gather(*(session(f"t{i}") for i in range(16)))

        outer_ids = asyncio.run(main())
        by_id = {r.span_id: r for r in tracer.records()}
        inners = [r for r in by_id.values() if r.name == "inner"]
        assert len(inners) == 16
        for inner in inners:
            parent = by_id[inner.parent_id]
            assert parent.name == "outer"
            assert parent.attrs["task"] == inner.attrs["task"]
        assert sorted(r.span_id for r in by_id.values() if r.name == "outer") == sorted(
            outer_ids
        )

    def test_task_spawned_inside_span_parents_under_it(self):
        tracer = Tracer()

        async def child():
            with tracer.span("child"):
                await asyncio.sleep(0)

        async def main():
            with tracer.span("parent") as parent:
                task = asyncio.ensure_future(child())
                await task
                return parent.span_id

        parent_id = asyncio.run(main())
        child_rec = [r for r in tracer.records() if r.name == "child"][0]
        assert child_rec.parent_id == parent_id

    def test_threads_and_tasks_hammer_without_corruption(self):
        tracer = Tracer(capacity=N_THREADS * N_OPS * 2)

        def thread_work(k):
            for i in range(N_OPS // 10):
                with tracer.span("thread_span", k=k):
                    tracer.event("tick", i=i)

        async def task_work(k):
            for _ in range(N_OPS // 10):
                with tracer.span("task_span", k=k):
                    await asyncio.sleep(0)

        async def async_main():
            await asyncio.gather(*(task_work(k) for k in range(4)))

        threads = [
            threading.Thread(target=thread_work, args=(k,)) for k in range(4)
        ]
        for t in threads:
            t.start()
        asyncio.run(async_main())
        for t in threads:
            t.join()
        records = tracer.records()
        names = {r.name for r in records}
        assert names == {"thread_span", "tick", "task_span"}
        by_id = {r.span_id: r for r in records}
        # every event's parent is a thread_span (never a task_span)
        for r in records:
            if r.kind == "event":
                assert by_id[r.parent_id].name == "thread_span"
        assert len([r for r in records if r.name == "task_span"]) == 4 * (
            N_OPS // 10
        )
