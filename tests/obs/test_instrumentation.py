"""End-to-end checks that the hot paths emit the expected spans."""

import pytest

from repro.obs.trace import disable, enable
from repro.pocketsearch.cache import PocketSearchCache
from repro.pocketsearch.database import ResultDatabase
from repro.pocketsearch.engine import PocketSearchEngine
from repro.pocketsearch.hashtable import QueryHashTable
from repro.radio.models import THREE_G
from repro.radio.states import RadioLink
from repro.storage.filesystem import FlashFilesystem
from repro.storage.flash import NandFlash


@pytest.fixture(autouse=True)
def _restore_global_tracer():
    yield
    disable()


def _engine():
    database = ResultDatabase(FlashFilesystem(NandFlash()))
    cache = PocketSearchCache(
        hashtable=QueryHashTable(results_per_entry=2), database=database
    )
    return PocketSearchEngine(cache)


class TestServeQuerySpans:
    def test_miss_emits_radio_fetch_and_states(self):
        engine = _engine()
        tracer = enable()
        result = engine.serve_query("some query", "http://r", record_bytes=400)
        assert not result.outcome.hit
        records = tracer.records()
        by_name = {r.name: r for r in records}
        serve = by_name["serve_query"]
        assert serve.attrs["hit"] is False
        assert serve.attrs["source"] == "3g"
        assert by_name["cache_lookup"].parent_id == serve.span_id
        assert by_name["radio_fetch"].parent_id == serve.span_id
        assert by_name["browser_render"].parent_id == serve.span_id
        assert by_name["record_click"].parent_id == serve.span_id
        states = [
            r.attrs["state"] for r in records if r.name == "radio_state"
        ]
        assert states == ["ramp", "active", "tail"]
        radio_energy = sum(
            r.attrs["energy_j"] for r in records if r.name == "radio_state"
        )
        assert radio_energy > 0

    def test_hit_emits_database_read(self):
        engine = _engine()
        engine.serve_query("repeat me", "http://r", record_bytes=400)
        tracer = enable()
        result = engine.serve_query("repeat me", "http://r", record_bytes=400)
        assert result.outcome.hit
        by_name = {r.name: r for r in tracer.records()}
        assert by_name["serve_query"].attrs["hit"] is True
        db = by_name["database_read"]
        assert db.parent_id == by_name["serve_query"].span_id
        assert db.attrs["model_latency_s"] > 0
        # Flash reads under the database fetch appear as device events.
        device_events = [
            r for r in tracer.records() if r.name == "device_access"
        ]
        assert any(e.attrs["device"] == "nand-flash" for e in device_events)

    def test_disabled_tracer_records_nothing(self):
        engine = _engine()
        disable()
        engine.serve_query("quiet", "http://r", record_bytes=400)
        tracer = enable()
        assert tracer.records() == []


class TestRadioLinkEvents:
    def test_timeline_emits_state_events(self):
        tracer = enable()
        link = RadioLink(THREE_G)
        link.request(0.0, 1024, 65536)
        link.drain(60.0)
        states = [
            r.attrs["state"]
            for r in tracer.records()
            if r.name == "radio_state"
        ]
        assert states[0] == "ramp"
        assert "active" in states and "tail" in states and "sleep" in states
        for r in tracer.records():
            if r.name == "radio_state":
                assert r.attrs["dwell_s"] > 0
                assert r.attrs["energy_j"] >= 0
