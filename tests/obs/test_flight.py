"""Flight recorder tests: bounded rings, bucket rows, trigger engine,
atomic bundles, byte-identical determinism, and a concurrency hammer
mirroring ``tests/obs/test_concurrency.py``."""

import json
import os
import threading

import pytest

from repro.obs.flight import (
    BUNDLE_VERSION,
    EVENTS_FILENAME,
    MANIFEST_FILENAME,
    FlightRecorder,
)
from repro.obs.triggers import TriggerConfig, TriggerEngine
from repro.serve import LoadGenConfig, ServeConfig, run_loadtest
from repro.serve.requests import Overloaded, ServeRequest, ServeResponse
from repro.serve.telemetry import ServeTelemetry
from repro.sim.metrics import QueryOutcome, ServiceSource

N_THREADS = 8
N_OPS = 2_000


def make_response(t, device_id=1, key="q", hit=True, sojourn=0.25):
    outcome = QueryOutcome(
        query=key,
        hit=hit,
        source=ServiceSource.CACHE if hit else ServiceSource.RADIO_3G,
        latency_s=sojourn,
        energy_j=0.5,
        timestamp=t - sojourn,
    )
    return ServeResponse(
        request=ServeRequest(device_id=device_id, key=key),
        outcome=outcome,
        enqueued_at=t - sojourn,
        started_at=t - sojourn,
        completed_at=t,
    )


def make_shed(t, device_id=1, reason="server-busy"):
    return Overloaded(
        request=ServeRequest(device_id=device_id, key="q"),
        reason=reason,
        t=t,
    )


class FakeBadResponse:
    """Duck-typed response whose segments do not telescope to sojourn."""

    def __init__(self, t):
        self.request = ServeRequest(device_id=9, key="bad")
        self.outcome = QueryOutcome(
            query="bad", hit=False, source=ServiceSource.RADIO_3G,
            latency_s=1.0, energy_j=0.0, timestamp=t,
        )
        self.shared_fetch = False
        self.trace = None
        self.trace_id = None
        self.energy = None
        self.tier = "device"
        self.edge_node = None
        self.sojourn_s = 1.0

    def breakdown(self):
        return {"queue_wait": 0.0, "service": 0.25}  # re-sums to 0.25 != 1.0


class TestRingsBounded:
    def test_request_ring_evicts_oldest(self):
        flight = FlightRecorder(request_ring=8)
        for i in range(20):
            flight.on_response(float(i), make_response(float(i), device_id=i))
        status = flight.status()
        assert status["retained"]["request"] == 8
        assert status["seen"]["request"] == 20
        assert status["dropped"]["request"] == 12
        assert flight.dropped()["request"] == 12

    def test_shed_ring_bounded(self):
        flight = FlightRecorder(shed_ring=4)
        for i in range(10):
            flight.on_shed(float(i), make_shed(float(i)))
        assert flight.status()["retained"]["shed"] == 4
        assert flight.status()["seen"]["shed"] == 10

    def test_ring_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(request_ring=0)


class TestBucketRows:
    def test_tick_closes_bucket_with_counts_and_ledger(self):
        telemetry = ServeTelemetry()
        flight = FlightRecorder().attach(telemetry)
        assert telemetry.flight is flight
        # Bucket [0,1): two completions, one shed.
        telemetry.on_response(0.2, make_response(0.2, hit=True), inflight=1)
        telemetry.on_response(0.5, make_response(0.5, hit=False, sojourn=0.4),
                              inflight=1)
        telemetry.on_shed(0.8, make_shed(0.8, reason="device-queue-full"))
        # Crossing into bucket [1,2) closes the previous bucket first, so
        # this response lands in the fresh accumulator.
        telemetry.on_response(1.3, make_response(1.3), inflight=1)
        row = flight.last_bucket()
        assert row["kind"] == "bucket"
        assert row["t"] == 1.0
        assert row["completed"] == 2
        assert row["hits"] == 1
        assert row["shed"] == 1
        assert row["shed_reasons"] == {"device-queue-full": 1}
        assert row["shed_fraction"] == pytest.approx(1 / 3)
        assert row["sojourn_max_s"] == pytest.approx(0.4)
        assert "ledger" in row and row["ledger"]["requests"] == 0

    def test_accumulator_resets_between_buckets(self):
        telemetry = ServeTelemetry()
        flight = FlightRecorder().attach(telemetry)
        telemetry.on_response(0.2, make_response(0.2), inflight=1)
        telemetry.on_response(1.2, make_response(1.2), inflight=1)
        telemetry.on_response(2.2, make_response(2.2), inflight=1)
        rows = [r for r in flight._rings["bucket"]]
        assert [r["completed"] for r in rows] == [1, 1]
        assert rows[1]["t_prev"] == rows[0]["t"]


class TestTriggerEngine:
    def _flight(self, tmp_path, **cfg):
        defaults = dict(
            slo_alert=False, shed_spike=None, hop_resum_tol_s=None,
            hop_resum_tol_j=None, bundle_dir=str(tmp_path / "bundles"),
            incident_window_s=10.0, baseline_window_s=2.0,
        )
        defaults.update(cfg)
        engine = TriggerEngine(TriggerConfig(**defaults))
        telemetry = ServeTelemetry()
        flight = FlightRecorder(
            config={"scenario": "unit"}, seed=7, triggers=engine
        ).attach(telemetry)
        return flight, engine, telemetry

    def test_shed_spike_fires_and_dumps_after_baseline(self, tmp_path):
        flight, engine, telemetry = self._flight(
            tmp_path, shed_spike=0.5, shed_spike_min_events=4
        )
        for i in range(6):
            telemetry.on_shed(0.1 + i * 0.01, make_shed(0.1))
        assert engine.pending is None  # bucket not closed yet
        telemetry.on_response(1.1, make_response(1.1), inflight=1)
        assert engine.pending is not None
        assert engine.pending["trigger"] == "shed-spike"
        assert engine.pending["detail"]["events"] == 6
        # Baseline window (2s) elapses -> dump on the next tick.
        telemetry.on_response(2.5, make_response(2.5), inflight=1)
        assert engine.pending is not None
        telemetry.on_response(3.5, make_response(3.5), inflight=1)
        assert engine.pending is None
        assert len(engine.dumped) == 1
        assert engine.exhausted
        assert os.path.isdir(engine.dumped[0])

    def test_min_events_suppresses_sparse_spike(self, tmp_path):
        flight, engine, telemetry = self._flight(
            tmp_path, shed_spike=0.5, shed_spike_min_events=16
        )
        telemetry.on_shed(0.1, make_shed(0.1))
        telemetry.on_response(1.1, make_response(1.1), inflight=1)
        assert engine.pending is None

    def test_manual_trigger_at(self, tmp_path):
        flight, engine, telemetry = self._flight(tmp_path, trigger_at=5.0)
        telemetry.on_response(1.0, make_response(1.0), inflight=1)
        telemetry.on_response(2.1, make_response(2.1), inflight=1)
        assert engine.pending is None
        telemetry.on_response(5.4, make_response(5.4), inflight=1)
        assert engine.pending is not None
        assert engine.pending["trigger"] == "manual"

    def test_ledger_drift_trigger(self, tmp_path):
        flight, engine, telemetry = self._flight(tmp_path, ledger_drift_j=0.5)
        telemetry.energy.ledger.attributed_j = 2.0  # drift vs timeline 0
        telemetry.on_response(1.1, make_response(1.1), inflight=1)
        telemetry.on_response(2.2, make_response(2.2), inflight=1)
        assert engine.pending is not None
        assert engine.pending["trigger"] == "ledger-drift"

    def test_hop_resum_error_trigger(self, tmp_path):
        flight, engine, telemetry = self._flight(
            tmp_path, hop_resum_tol_s=1e-6
        )
        flight.on_response(0.5, FakeBadResponse(0.5))
        assert engine.pending is not None
        assert engine.pending["trigger"] == "hop-resum-error"

    def test_first_trigger_wins_and_max_bundles(self, tmp_path):
        flight, engine, telemetry = self._flight(
            tmp_path, trigger_at=1.0, ledger_drift_j=0.5
        )
        telemetry.on_response(1.5, make_response(1.5), inflight=1)
        telemetry.on_response(2.5, make_response(2.5), inflight=1)
        first = engine.pending
        assert first is not None and first["trigger"] == "manual"
        # A ledger drift while a trigger is pending does not re-arm.
        telemetry.energy.ledger.attributed_j = 99.0
        telemetry.on_response(3.5, make_response(3.5), inflight=1)
        assert engine.pending is first
        flight.finalize(force=True)
        assert len(engine.dumped) == 1
        # Exhausted: no further triggers arm.
        flight.on_shed(10.0, make_shed(10.0))
        telemetry.on_response(11.5, make_response(11.5), inflight=1)
        assert engine.pending is None

    def test_finalize_force_dumps_without_trigger(self, tmp_path):
        flight, engine, telemetry = self._flight(tmp_path)
        telemetry.on_response(0.5, make_response(0.5), inflight=1)
        flight.finalize(force=True)
        assert len(engine.dumped) == 1
        manifest = json.load(
            open(os.path.join(engine.dumped[0], MANIFEST_FILENAME))
        )
        assert manifest["trigger"]["detail"] == {"forced": True}

    def test_finalize_without_force_or_trigger_dumps_nothing(self, tmp_path):
        flight, engine, telemetry = self._flight(tmp_path)
        telemetry.on_response(0.5, make_response(0.5), inflight=1)
        flight.finalize()
        assert engine.dumped == []


class TestBundleDump:
    def test_bundle_layout_and_ordering(self, tmp_path):
        engine = TriggerEngine(TriggerConfig(
            slo_alert=False, shed_spike=None, hop_resum_tol_s=None,
            hop_resum_tol_j=None, trigger_at=2.0,
            baseline_window_s=1.0, bundle_dir=str(tmp_path),
        ))
        telemetry = ServeTelemetry()
        flight = FlightRecorder(
            config={"scenario": "layout"}, seed=3, triggers=engine
        ).attach(telemetry)
        for i in range(5):
            telemetry.on_response(
                0.3 + i, make_response(0.3 + i, device_id=i), inflight=1
            )
            telemetry.on_shed(0.6 + i, make_shed(0.6 + i))
        flight.finalize()
        (path,) = engine.dumped
        assert os.path.basename(path) == "flight-manual-t2000"
        lines = [
            json.loads(line)
            for line in open(os.path.join(path, EVENTS_FILENAME))
        ]
        meta, records = lines[0], lines[1:]
        assert meta["kind"] == "meta"
        assert meta["bundle_version"] == BUNDLE_VERSION
        assert meta["n_records"] == len(records)
        ts = [r["t"] for r in records]
        assert ts == sorted(ts)
        kinds = {r["kind"] for r in records}
        assert {"request", "shed", "bucket", "trigger"} <= kinds
        manifest = json.load(open(os.path.join(path, MANIFEST_FILENAME)))
        assert manifest["name"] == "flight_bundle"
        assert manifest["seed"] == 3
        assert manifest["config"] == {"scenario": "layout"}
        assert manifest["trigger"]["trigger"] == "manual"
        assert set(manifest["windows"]) == {"incident", "baseline"}
        assert manifest["git_sha"]
        assert "started_at" in manifest
        # No stray tmp directory left behind.
        assert not any(n.endswith(".tmp") for n in os.listdir(tmp_path))

    def test_duplicate_bundle_names_get_suffix(self, tmp_path):
        flight = FlightRecorder()
        trigger = {"kind": "trigger", "t": 1.0, "trigger": "manual"}
        windows = {"incident": [0.0, 1.0], "baseline": [1.0, 1.0]}
        p1 = flight.dump_bundle(str(tmp_path), dict(trigger), windows)
        p2 = flight.dump_bundle(str(tmp_path), dict(trigger), windows)
        assert p1 != p2
        assert os.path.basename(p2) == "flight-manual-t1000-2"


class TestDeterminism:
    def _run(self, small_log, bundle_dir):
        engine = TriggerEngine(TriggerConfig(
            slo_alert=False, shed_spike=None, hop_resum_tol_s=None,
            hop_resum_tol_j=None, bundle_dir=bundle_dir,
            incident_window_s=60.0, baseline_window_s=10.0,
        ))
        telemetry = ServeTelemetry()
        flight = FlightRecorder(
            config={"scenario": "determinism"}, seed=7, triggers=engine
        ).attach(telemetry)
        run_loadtest(
            small_log,
            LoadGenConfig(duration_s=300.0, rate_multiplier=50.0, seed=7),
            ServeConfig(queue_depth=8, max_inflight=8),
            telemetry=telemetry,
        )
        flight.finalize(force=True)
        (path,) = engine.dumped
        return path

    def test_same_seed_produces_byte_identical_bundle(self, small_log, tmp_path):
        path_a = self._run(small_log, str(tmp_path / "a"))
        path_b = self._run(small_log, str(tmp_path / "b"))
        events_a = open(os.path.join(path_a, EVENTS_FILENAME), "rb").read()
        events_b = open(os.path.join(path_b, EVENTS_FILENAME), "rb").read()
        assert events_a == events_b
        assert len(events_a) > 100  # the run actually recorded something
        manifest_a = json.load(open(os.path.join(path_a, MANIFEST_FILENAME)))
        manifest_b = json.load(open(os.path.join(path_b, MANIFEST_FILENAME)))
        # started_at is wall-clock provenance, everything else is stable.
        manifest_a.pop("started_at")
        manifest_b.pop("started_at")
        assert manifest_a == manifest_b


class TestFlightConcurrencyHammer:
    def test_hooks_hammered_from_threads(self):
        flight = FlightRecorder(request_ring=1024, shed_ring=1024)

        def work(k):
            for i in range(N_OPS):
                t = k + i * 1e-6
                if i % 3 == 0:
                    flight.on_shed(t, make_shed(t, device_id=k))
                else:
                    flight.on_response(
                        t, make_response(t, device_id=k), )

        threads = [
            threading.Thread(target=work, args=(k,)) for k in range(N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        status = flight.status()
        sheds = N_THREADS * len([i for i in range(N_OPS) if i % 3 == 0])
        responses = N_THREADS * N_OPS - sheds
        assert status["seen"]["request"] == responses
        assert status["seen"]["shed"] == sheds
        assert status["retained"]["request"] == 1024
        assert status["retained"]["shed"] == 1024
        # Sequence numbers are unique across all retained records.
        seqs = [
            r["seq"] for ring in flight._rings.values() for r in ring
        ]
        assert len(seqs) == len(set(seqs))

    def test_dump_while_recording(self, tmp_path):
        flight = FlightRecorder(request_ring=256)
        stop = threading.Event()

        def record():
            i = 0
            while not stop.is_set():
                flight.on_response(i * 1e-3, make_response(i * 1e-3))
                i += 1

        writer = threading.Thread(target=record)
        writer.start()
        try:
            for n in range(5):
                trigger = {"kind": "trigger", "t": float(n), "trigger": "manual"}
                path = flight.dump_bundle(
                    str(tmp_path), trigger,
                    {"incident": [0.0, float(n)], "baseline": [float(n), float(n)]},
                )
                lines = open(os.path.join(path, EVENTS_FILENAME)).read().splitlines()
                meta = json.loads(lines[0])
                assert meta["n_records"] == len(lines) - 1
        finally:
            stop.set()
            writer.join()
