"""Tests for counters, gauges, and streaming quantile estimators."""

import math

import numpy as np
import pytest

from repro.obs.registry import (
    Counter,
    Gauge,
    MetricsRegistry,
    P2Quantile,
    StreamingHistogram,
)
from repro.sim.metrics import MetricsCollector, QueryOutcome, ServiceSource


class TestCounterGauge:
    def test_counter(self):
        c = Counter("queries")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge(self):
        g = Gauge("rss")
        g.set(3.5)
        g.set(2.0)
        assert g.value == 2.0


class TestStreamingHistogram:
    def test_empty(self):
        h = StreamingHistogram()
        assert math.isnan(h.mean)
        assert math.isnan(h.quantile(50))

    def test_bounds_validation(self):
        h = StreamingHistogram()
        h.add(1.0)
        with pytest.raises(ValueError):
            h.quantile(-1)
        with pytest.raises(ValueError):
            h.quantile(101)
        with pytest.raises(ValueError):
            StreamingHistogram(reservoir_size=0)

    def test_exact_below_reservoir_size(self):
        h = StreamingHistogram(reservoir_size=100)
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        h.extend(values)
        assert h.quantile(0) == 1.0
        assert h.quantile(100) == 5.0
        assert h.quantile(50) == 3.0
        assert h.mean == pytest.approx(3.0)

    def test_extremes_exact_beyond_reservoir(self):
        rng = np.random.default_rng(5)
        data = rng.normal(10.0, 3.0, 20_000)
        h = StreamingHistogram(reservoir_size=256)
        h.extend(data)
        assert h.quantile(0) == float(data.min())
        assert h.quantile(100) == float(data.max())
        assert h.count == 20_000

    def test_interior_quantiles_close_to_exact(self):
        rng = np.random.default_rng(11)
        data = rng.exponential(2.0, 30_000)
        h = StreamingHistogram(reservoir_size=2048)
        h.extend(data)
        for q in (10, 50, 90, 95):
            exact = float(np.percentile(data, q))
            spread = float(np.percentile(data, min(q + 5, 100))) - float(
                np.percentile(data, max(q - 5, 0))
            )
            assert abs(h.quantile(q) - exact) < max(spread, 0.05)

    def test_deterministic(self):
        a, b = StreamingHistogram(reservoir_size=32), StreamingHistogram(
            reservoir_size=32
        )
        values = [math.sin(i) for i in range(1000)]
        a.extend(values)
        b.extend(values)
        assert a.quantile(50) == b.quantile(50)

    def test_merge(self):
        a, b = StreamingHistogram(), StreamingHistogram()
        a.extend([1.0, 2.0, 3.0])
        b.extend([10.0, 20.0])
        a.merge(b)
        assert a.count == 5
        assert a.quantile(0) == 1.0
        assert a.quantile(100) == 20.0
        assert a.mean == pytest.approx(36.0 / 5)

    def test_merge_into_empty(self):
        a, b = StreamingHistogram(), StreamingHistogram()
        b.extend([4.0, 6.0])
        a.merge(b)
        assert a.count == 2
        assert a.mean == pytest.approx(5.0)


class TestP2Quantile:
    def test_validation(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.5).value)

    def test_small_stream_exact(self):
        p = P2Quantile(0.5)
        for x in (3.0, 1.0, 2.0):
            p.add(x)
        assert p.value == 2.0

    def test_converges_to_true_quantile(self):
        rng = np.random.default_rng(3)
        data = rng.normal(0.0, 1.0, 50_000)
        for q in (0.5, 0.95):
            est = P2Quantile(q)
            for x in data:
                est.add(float(x))
            exact = float(np.percentile(data, q * 100))
            assert est.value == pytest.approx(exact, abs=0.05)


def _outcome(latency):
    return QueryOutcome(
        query="q",
        hit=True,
        source=ServiceSource.CACHE,
        latency_s=latency,
        energy_j=0.1,
    )


class TestQuantileVsExactCollector:
    """Satellite check: streaming quantiles vs exact latency_percentile."""

    def test_matches_exact_collector(self):
        rng = np.random.default_rng(17)
        latencies = rng.gamma(2.0, 0.2, 10_000)
        exact = MetricsCollector()
        bounded = MetricsCollector(bounded=True, reservoir_size=4096)
        for latency in latencies:
            exact.record(_outcome(float(latency)))
            bounded.record(_outcome(float(latency)))
        # Edge percentiles are exact in both modes.
        assert bounded.latency_percentile(0) == exact.latency_percentile(0)
        assert bounded.latency_percentile(100) == exact.latency_percentile(100)
        for q in (25, 50, 75, 95, 99):
            assert bounded.latency_percentile(q) == pytest.approx(
                exact.latency_percentile(q), rel=0.1
            )


class TestRegistry:
    def test_get_or_create(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.histogram("h") is r.histogram("h")
        assert r.names() == ["a", "h"]

    def test_type_conflict(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(TypeError):
            r.gauge("x")

    def test_snapshot(self):
        r = MetricsRegistry()
        r.counter("hits").inc(3)
        r.gauge("rss").set(1.5)
        r.histogram("lat").add(0.2)
        snap = r.snapshot()
        assert snap["hits"] == {"type": "counter", "value": 3}
        assert snap["rss"] == {"type": "gauge", "value": 1.5}
        assert snap["lat"]["count"] == 1
        r.clear()
        assert r.names() == []


class TestPicklability:
    """Instruments cross process boundaries (parallel replay returns
    bounded MetricsCollectors, whose histograms must survive pickling
    despite their locks)."""

    def test_instruments_pickle_round_trip(self):
        import pickle

        c = Counter("n")
        c.inc(3)
        g = Gauge("peak")
        g.max(7.5)
        h = StreamingHistogram(reservoir_size=8)
        h.extend([1.0, 2.0, 3.0])
        q = P2Quantile(0.95)
        for x in range(10):
            q.add(float(x))
        for original in (c, g, q):
            clone = pickle.loads(pickle.dumps(original))
            assert clone.value == original.value
        clone_h = pickle.loads(pickle.dumps(h))
        assert clone_h.count == h.count
        assert clone_h.total == h.total
        assert clone_h.quantile(50) == h.quantile(50)
        clone_h.add(4.0)  # the recreated lock works
        assert clone_h.count == h.count + 1

    def test_registry_pickles(self):
        import pickle

        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        registry.histogram("b").add(1.5)
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.counter("a").value == 2
        assert clone.histogram("b").count == 1
        clone.counter("a").inc()  # lock restored
        assert clone.counter("a").value == 3

    def test_bounded_collector_pickles(self):
        import pickle

        collector = MetricsCollector(bounded=True)
        collector.record(_outcome(0.1))
        clone = pickle.loads(pickle.dumps(collector))
        assert clone.count == collector.count
        assert clone.hits == collector.hits
