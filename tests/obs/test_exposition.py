"""Tests for metric exposition: text format, JSON, HTTP endpoint."""

import asyncio
import json

from repro.obs.exposition import (
    TelemetryEndpoint,
    prometheus_name,
    render_json,
    render_prometheus,
)
from repro.obs.registry import MetricsRegistry


def _registry():
    reg = MetricsRegistry()
    reg.counter("serve.requests").inc(42)
    reg.gauge("serve.inflight_peak").max(7)
    for i in range(100):
        reg.histogram("serve.sojourn_s").add(i / 100.0)
    return reg


class TestPrometheusName:
    def test_dots_and_dashes_flattened(self):
        assert prometheus_name("serve.shed.device-queue-full") == (
            "repro_serve_shed_device_queue_full"
        )

    def test_leading_digit_guarded(self):
        assert prometheus_name("3g.radio", prefix="")[0] == "_"


class TestRenderPrometheus:
    def test_counter_gauge_and_summary_lines(self):
        text = render_prometheus(_registry())
        assert "# TYPE repro_serve_requests counter" in text
        assert "repro_serve_requests 42" in text
        assert "# TYPE repro_serve_inflight_peak gauge" in text
        assert "# TYPE repro_serve_sojourn_s summary" in text
        assert 'repro_serve_sojourn_s{quantile="0.5"}' in text
        assert "repro_serve_sojourn_s_count 100" in text
        assert text.endswith("\n")

    def test_nan_renders_as_NaN_token(self):
        reg = MetricsRegistry()
        reg.histogram("empty")  # force creation, no samples
        text = render_prometheus(reg)
        assert "NaN" in text


class TestRenderJson:
    def test_extra_sections_merged(self):
        doc = json.loads(
            render_json(_registry(), extra={"serve": {"rolling": {}}})
        )
        assert "metrics" in doc
        assert doc["metrics"]["serve.requests"]["value"] == 42
        assert doc["serve"] == {"rolling": {}}


async def _get(port, path):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        f"GET {path} HTTP/1.0\r\nHost: localhost\r\n\r\n".encode()
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split()[1])
    return status, body.decode()


class TestTelemetryEndpoint:
    def test_routes(self):
        async def scenario():
            endpoint = TelemetryEndpoint(
                _registry(),
                snapshot_fn=lambda: {"serve": {"rolling": {"hit_rate": 0.5}}},
            )
            await endpoint.start()
            port = endpoint.port
            assert port
            metrics = await _get(port, "/metrics")
            as_json = await _get(port, "/metrics.json")
            health = await _get(port, "/healthz")
            missing = await _get(port, "/nope")
            await endpoint.close()
            return endpoint, metrics, as_json, health, missing

        endpoint, metrics, as_json, health, missing = asyncio.run(scenario())
        assert metrics[0] == 200
        assert "repro_serve_requests 42" in metrics[1]
        assert as_json[0] == 200
        doc = json.loads(as_json[1])
        assert doc["serve"]["rolling"]["hit_rate"] == 0.5
        assert health == (200, "ok\n")
        assert missing[0] == 404
        assert endpoint.scrapes == 4


class TestExtraSamples:
    def test_labeled_gauges_rendered(self):
        text = render_prometheus(
            _registry(),
            extra_samples=[
                ("serve.energy.source_power_w", {"source": "3g"}, 1.5),
                ("serve.energy.source_power_w", {"source": "cache"}, 0.2),
                ("serve.battery.min_level", {}, 0.8),
            ],
        )
        assert "# TYPE repro_serve_energy_source_power_w gauge" in text
        assert 'repro_serve_energy_source_power_w{source="3g"} 1.5' in text
        assert 'repro_serve_energy_source_power_w{source="cache"} 0.2' in text
        # One TYPE line per consecutive distinct name, not per sample.
        assert text.count("# TYPE repro_serve_energy_source_power_w") == 1
        assert "repro_serve_battery_min_level 0.8" in text

    def test_label_values_escaped(self):
        text = render_prometheus(
            MetricsRegistry(),
            extra_samples=[("m", {"k": 'say "hi"\\'}, 1.0)],
        )
        assert '\\"hi\\"' in text

    def test_endpoint_serves_samples_fn(self):
        async def scenario():
            endpoint = TelemetryEndpoint(
                _registry(),
                samples_fn=lambda: [
                    ("serve.battery.level", {"device": "3"}, 0.5)
                ],
            )
            await endpoint.start()
            result = await _get(endpoint.port, "/metrics")
            await endpoint.close()
            return result

        status, body = asyncio.run(scenario())
        assert status == 200
        assert 'repro_serve_battery_level{device="3"} 0.5' in body
