"""Postmortem analyzer tests: window stats, culprit attribution through
both channels, the bench-gate verdict, CLI exit codes, and a scaled-down
end-to-end run through the real load-test engine."""

import json

import pytest

from repro.obs.flight import FlightRecorder
from repro.obs.postmortem import (
    REASON_SEGMENT,
    SEGMENT_NAMES,
    analyze,
    load_bundle,
    percentile,
    postmortem_main,
    render_report,
)
from repro.obs.triggers import TriggerConfig, TriggerEngine
from repro.serve import LoadGenConfig, ServeConfig, run_loadtest
from repro.serve.telemetry import ServeTelemetry


def seg(**overrides):
    out = {name: 0.0 for name in SEGMENT_NAMES}
    out.update(overrides)
    return out


def request_record(t, sojourn=0.3, segments=None, hit=True, tier="device",
                   edge_node=None):
    return {
        "kind": "request", "t": t, "trace_id": None, "device_id": 1,
        "key": "q", "hit": hit, "shared": False, "tier": tier,
        "edge_node": edge_node, "sojourn_s": sojourn,
        "segments": segments or seg(service=sojourn),
        "energy_j": 1.0, "hop_err_s": 0.0, "hop_err_j": 0.0,
    }


def shed_record(t, reason="server-busy", edge_node=None):
    return {
        "kind": "shed", "t": t, "reason": reason, "trace_id": None,
        "device_id": 1, "key": "q", "edge_node": edge_node,
    }


def trigger_record(t, kind="manual"):
    return {"kind": "trigger", "t": t, "trigger": kind, "detail": {}}


def manifest_for(t0, incident_s=60.0, baseline_s=30.0):
    return {
        "name": "flight_bundle", "bundle_version": 1, "seed": 7,
        "git_sha": "abc", "config": {},
        "trigger": trigger_record(t0),
        "windows": {
            "incident": [max(0.0, t0 - incident_s), t0],
            "baseline": [t0, t0 + baseline_s],
        },
    }


class TestAttribution:
    def test_queue_saturation_names_queue_wait(self):
        # Incident: slow queue_wait + server-busy sheds; baseline calm.
        records = []
        for i in range(20):
            records.append(request_record(
                10.0 + i, sojourn=2.0,
                segments=seg(queue_wait=1.7, service=0.3),
            ))
            records.append(shed_record(10.0 + i + 0.5))
        for i in range(20):
            records.append(request_record(61.0 + i, sojourn=0.3))
        records.append(trigger_record(60.0))
        result = analyze(manifest_for(60.0), records)
        assert result["culprit"]["segment"] == "queue_wait"
        assert result["culprit"]["score"] == pytest.approx(2.0)
        assert result["verdict"] == "regression"
        assert any(
            row["metric"] == "queue_wait_p99_s"
            for row in result["gate"]["regressions"]
        )

    def test_edge_inflight_names_edge_hop(self):
        records = []
        for i in range(20):
            records.append(request_record(10.0 + i, sojourn=0.3))
            records.append(shed_record(
                10.0 + i + 0.5, reason="edge-queue-full", edge_node=0,
            ))
        for i in range(20):
            records.append(request_record(61.0 + i, sojourn=0.3))
        records.append(trigger_record(60.0))
        result = analyze(manifest_for(60.0), records)
        assert result["culprit"]["segment"] == "edge_hop"
        assert "edge-queue-full" in result["culprit"]["reasons"]
        # The hot node shows up in the incident window's node table.
        assert result["incident"]["edge_nodes"][0]["shed"] == 20

    def test_spike_onset_trigger_attributes_from_trailing_window(self):
        # The anomaly sits AFTER the trigger (shed-spike fires at the
        # first bad bucket): attribution is direction-agnostic.
        records = [request_record(30.0 + i, sojourn=0.3) for i in range(20)]
        records += [shed_record(60.5 + i) for i in range(20)]
        records.append(trigger_record(60.0, kind="shed-spike"))
        result = analyze(manifest_for(60.0), records)
        assert result["culprit"]["segment"] == "queue_wait"

    def test_clean_windows_name_no_culprit(self):
        records = [request_record(10.0 + i) for i in range(30)]
        records += [request_record(61.0 + i) for i in range(20)]
        records.append(trigger_record(60.0))
        result = analyze(manifest_for(60.0), records)
        assert result["culprit"] is None
        assert result["verdict"] == "clean"
        assert result["gate"]["regressions"] == []

    def test_latency_floor_suppresses_noise(self):
        records = [
            request_record(10.0 + i, sojourn=0.3001,
                           segments=seg(service=0.3001))
            for i in range(20)
        ]
        records += [request_record(61.0 + i, sojourn=0.3) for i in range(20)]
        records.append(trigger_record(60.0))
        result = analyze(manifest_for(60.0), records)
        assert result["culprit"] is None

    def test_reason_map_covers_known_shed_reasons(self):
        assert REASON_SEGMENT["device-queue-full"] == "queue_wait"
        assert REASON_SEGMENT["server-busy"] == "queue_wait"
        assert REASON_SEGMENT["edge-queue-full"] == "edge_hop"

    def test_timeline_spans_both_windows(self):
        records = [
            {"kind": "bucket", "t": float(t), "completed": 1, "shed": 0,
             "shed_fraction": 0.0, "shed_reasons": {}, "hits": 1,
             "sojourn_mean_s": 0.3, "sojourn_max_s": 0.3,
             "queue_wait_max_s": 0.0, "hop_err_s_max": 0.0,
             "hop_err_j_max": 0.0}
            for t in range(0, 120)
        ]
        records.append(request_record(10.0))
        records.append(trigger_record(60.0))
        result = analyze(manifest_for(60.0), records)
        ts = [row["t"] for row in result["timeline"]]
        assert min(ts) == 0.0 and max(ts) == 90.0


class TestPercentile:
    def test_nearest_rank(self):
        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 50) == 50.0
        assert percentile(values, 99) == 99.0
        assert percentile([], 99) is None


class TestCli:
    def _bundle(self, tmp_path, records, t0=60.0):
        flight = FlightRecorder(config={"scenario": "cli"}, seed=7)
        for record in records:
            kind = record["kind"]
            if kind in flight._rings:
                with flight._lock:
                    flight._append(kind, record)
        trigger = trigger_record(t0)
        windows = manifest_for(t0)["windows"]
        return flight.dump_bundle(str(tmp_path), trigger, windows)

    def test_exit_zero_on_clean(self, tmp_path, capsys):
        records = [request_record(10.0 + i) for i in range(30)]
        records += [request_record(61.0 + i) for i in range(20)]
        path = self._bundle(tmp_path, records)
        assert postmortem_main([path]) == 0
        out = capsys.readouterr().out
        assert "verdict: clean" in out
        assert "culprit: none" in out

    def test_exit_one_on_regression_with_culprit(self, tmp_path, capsys):
        records = []
        for i in range(20):
            records.append(request_record(
                10.0 + i, sojourn=2.0,
                segments=seg(queue_wait=1.7, service=0.3),
            ))
            records.append(shed_record(10.0 + i + 0.5))
        records += [request_record(61.0 + i) for i in range(20)]
        path = self._bundle(tmp_path, records)
        assert postmortem_main([path]) == 1
        out = capsys.readouterr().out
        assert "culprit: queue_wait" in out
        assert "verdict: regression" in out

    def test_exit_two_on_missing_bundle(self, tmp_path, capsys):
        assert postmortem_main([str(tmp_path / "nope")]) == 2

    def test_exit_two_on_future_bundle_version(self, tmp_path, capsys):
        bundle = tmp_path / "bundle"
        bundle.mkdir()
        (bundle / "events.jsonl").write_text(
            json.dumps({"kind": "meta", "t": 0.0, "bundle_version": 99}) + "\n"
        )
        assert postmortem_main([str(bundle)]) == 2

    def test_json_out(self, tmp_path, capsys):
        records = [request_record(10.0 + i) for i in range(30)]
        records += [request_record(61.0 + i) for i in range(20)]
        path = self._bundle(tmp_path, records)
        json_path = str(tmp_path / "verdict.json")
        postmortem_main([path, "--json-out", json_path])
        doc = json.load(open(json_path))
        assert doc["verdict"] == "clean"
        assert set(doc["windows"]) == {"incident", "baseline"}

    def test_report_renders_from_loaded_bundle(self, tmp_path):
        records = [request_record(10.0 + i) for i in range(30)]
        path = self._bundle(tmp_path, records)
        manifest, loaded = load_bundle(path)
        analysis = analyze(manifest, loaded)
        text = render_report(analysis, manifest, path)
        assert "postmortem:" in text
        assert "segment" in text
        assert "verdict: clean" in text


class TestEndToEnd:
    def test_loadtest_burst_bundle_names_queue_culprit(self, small_log, tmp_path):
        """Scaled-down CI scenario: healthy base, a hard burst, manual
        trigger after the burst drains -> culprit queue_wait, exit 1."""
        engine = TriggerEngine(TriggerConfig(
            slo_alert=False, shed_spike=None, hop_resum_tol_s=None,
            hop_resum_tol_j=None, trigger_at=110.0,
            incident_window_s=60.0, baseline_window_s=30.0,
            bundle_dir=str(tmp_path),
        ))
        telemetry = ServeTelemetry()
        FlightRecorder(
            config={"scenario": "e2e"}, seed=11, triggers=engine
        ).attach(telemetry)
        run_loadtest(
            small_log,
            LoadGenConfig(
                duration_s=150.0, rate_multiplier=40.0, seed=11,
                diurnal=False, burst_start_s=60.0, burst_duration_s=10.0,
                burst_multiplier=40.0,
            ),
            ServeConfig(queue_depth=8, max_inflight=8),
            telemetry=telemetry,
        )
        telemetry.flight.finalize()
        assert len(engine.dumped) == 1
        manifest, records = load_bundle(engine.dumped[0])
        result = analyze(manifest, records)
        assert result["culprit"] is not None
        assert result["culprit"]["segment"] == "queue_wait"
        assert postmortem_main([engine.dumped[0]]) == 1
