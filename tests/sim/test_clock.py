"""Tests for the simulation clock."""

import pytest

from repro.sim.clock import SimClock


def test_starts_at_zero():
    assert SimClock().now == 0.0


def test_custom_start():
    assert SimClock(5.0).now == 5.0


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        SimClock(-1.0)


def test_advance():
    clock = SimClock()
    assert clock.advance(2.5) == 2.5
    assert clock.now == 2.5


def test_advance_negative_rejected():
    with pytest.raises(ValueError):
        SimClock().advance(-0.1)


def test_advance_to():
    clock = SimClock(1.0)
    clock.advance_to(4.0)
    assert clock.now == 4.0


def test_advance_to_backwards_rejected():
    clock = SimClock(5.0)
    with pytest.raises(ValueError):
        clock.advance_to(4.0)
