"""Tests for the ASCII power-trace renderer."""

import pytest

from repro.radio.models import THREE_G
from repro.radio.states import PowerSegment, RadioLink, RadioState
from repro.sim.powertrace import (
    render_trace,
    sample_power,
    segments_from_buckets,
)


def timeline():
    link = RadioLink(THREE_G)
    result = link.request(1.0, 1024, 64 * 1024, 0.3)
    return link.drain(result.t_end + 10.0)


class TestSampling:
    def test_sample_count(self):
        samples = sample_power(timeline(), 40)
        assert len(samples) == 40

    def test_base_power_added(self):
        plain = sample_power(timeline(), 20)
        raised = sample_power(timeline(), 20, base_power_w=0.9)
        assert all(b == pytest.approx(a + 0.9) for a, b in zip(plain, raised))

    def test_empty_timeline(self):
        assert sample_power([], 5, base_power_w=0.5) == [0.5] * 5

    def test_peak_visible(self):
        samples = sample_power(timeline(), 200)
        assert max(samples) == pytest.approx(THREE_G.active_power_w, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_power(timeline(), 0)

    def test_sample_on_segment_edge_takes_next_segment(self):
        """A sample landing exactly on a boundary belongs to the segment
        that *starts* there (t_end is exclusive)."""
        segments = [
            PowerSegment(0.0, 1.0, 2.0, RadioState.ACTIVE),
            PowerSegment(1.0, 1.0, 0.5, RadioState.TAIL),
        ]
        # One sample over [0, 2) lands at t = 1.0, the exact edge.
        assert sample_power(segments, 1) == [0.5]

    def test_t_end_beyond_last_segment_samples_base(self):
        segments = [PowerSegment(0.0, 1.0, 2.0, RadioState.ACTIVE)]
        samples = sample_power(segments, 4, base_power_w=0.1, t_end=4.0)
        # Samples at 0.5, 1.5, 2.5, 3.5 — only the first is in-segment.
        assert samples == pytest.approx([2.1, 0.1, 0.1, 0.1])

    def test_zero_duration_segments_are_skipped(self):
        segments = [
            PowerSegment(0.0, 1.0, 2.0, RadioState.ACTIVE),
            PowerSegment(1.0, 0.0, 99.0, RadioState.RAMP),
            PowerSegment(1.0, 1.0, 0.5, RadioState.TAIL),
        ]
        samples = sample_power(segments, 2)
        assert samples == pytest.approx([2.0, 0.5])
        assert 99.0 not in samples


class TestSegmentsFromBuckets:
    def test_empty_rows(self):
        assert segments_from_buckets([], 1.0) == []

    def test_buckets_become_shifted_segments(self):
        rows = [
            {"t_start": 10.0, "power_w": 0.5},
            {"t_start": 11.0, "power_w": 2.0},
        ]
        segments = segments_from_buckets(rows, 1.0)
        assert [s.t_start for s in segments] == [0.0, 1.0]
        assert [s.power_w for s in segments] == [0.5, 2.0]
        assert all(s.duration_s == 1.0 for s in segments)

    def test_missing_power_is_zero(self):
        segments = segments_from_buckets(
            [{"t_start": 0.0}, {"t_start": 2.0, "power_w": None}], 2.0
        )
        assert [s.power_w for s in segments] == [0.0, 0.0]

    def test_renders(self):
        rows = [{"t_start": float(i), "power_w": float(i % 3)} for i in range(12)]
        chart = render_trace(segments_from_buckets(rows, 1.0), width=12, height=4)
        assert "#" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            segments_from_buckets([{"t_start": 0.0, "power_w": 1.0}], 0.0)


class TestRendering:
    def test_dimensions(self):
        chart = render_trace(timeline(), width=50, height=6)
        lines = chart.splitlines()
        assert len(lines) == 6 + 3  # rows + two axes + time labels
        for line in lines[1:7]:
            assert len(line) == 50 + 9  # gutter + bars + borders

    def test_activity_shows_as_fill(self):
        chart = render_trace(timeline(), width=60, height=6)
        assert "#" in chart

    def test_title(self):
        chart = render_trace(timeline(), title="3G burst")
        assert chart.splitlines()[0] == "3G burst"

    def test_higher_power_fills_higher_rows(self):
        segments = [
            PowerSegment(0.0, 5.0, 0.2, RadioState.TAIL),
            PowerSegment(5.0, 5.0, 1.0, RadioState.ACTIVE),
        ]
        chart = render_trace(segments, width=10, height=4)
        lines = chart.splitlines()
        top_row = lines[1]
        bottom_row = lines[4]
        assert top_row.count("#") < bottom_row.count("#")

    def test_validation(self):
        with pytest.raises(ValueError):
            render_trace(timeline(), width=0)
        with pytest.raises(ValueError):
            render_trace(timeline(), max_power_w=0)
