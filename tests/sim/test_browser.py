"""Tests for the browser rendering model."""

import pytest

from repro.sim.browser import Browser, RenderModel, SERP_BYTES


class TestRenderModel:
    def test_table4_render_fit(self):
        """The local results page renders in ~361 ms (Table 4)."""
        assert RenderModel().render_seconds(SERP_BYTES) == pytest.approx(
            0.361, abs=0.005
        )

    def test_render_scales_with_bytes(self):
        model = RenderModel()
        assert model.render_seconds(100_000) > model.render_seconds(1_000)

    def test_zero_bytes_costs_base(self):
        model = RenderModel(base_s=0.1)
        assert model.render_seconds(0) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            RenderModel(base_s=-1)
        with pytest.raises(ValueError):
            RenderModel(parse_bandwidth_bps=0)
        with pytest.raises(ValueError):
            RenderModel().render_seconds(-1)


class TestBrowser:
    def test_render_tracks_stats(self):
        browser = Browser()
        browser.render(SERP_BYTES)
        browser.render(SERP_BYTES)
        assert browser.pages_rendered == 2
        assert browser.total_render_s == pytest.approx(2 * 0.361, abs=0.01)

    def test_render_energy(self):
        browser = Browser(render_power_w=0.5)
        assert browser.render_energy_j(2.0) == pytest.approx(1.0)

    def test_negative_render_energy_rejected(self):
        with pytest.raises(ValueError):
            Browser().render_energy_j(-1)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            Browser(render_power_w=-0.1)
