"""Tests for the simulated mobile device."""

import pytest

from repro.sim.device import DeviceConfig, MobileDevice


class TestConfig:
    def test_defaults(self):
        config = DeviceConfig()
        assert config.base_power_w == 0.9
        assert config.default_radio == "3g"

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceConfig(base_power_w=-1)
        with pytest.raises(ValueError):
            DeviceConfig(query_bytes_up=-1)


class TestEnergyAccounting:
    def test_interaction_energy(self):
        device = MobileDevice()
        energy = device.account_interaction(2.0, extra_j=0.5)
        assert energy == pytest.approx(2.0 * 0.9 + 0.5)
        assert device.total_energy_j == pytest.approx(energy)

    def test_negative_rejected(self):
        device = MobileDevice()
        with pytest.raises(ValueError):
            device.account_interaction(-1.0)
        with pytest.raises(ValueError):
            device.account_interaction(1.0, extra_j=-0.1)


class TestRadioPath:
    def test_request_advances_clock(self):
        device = MobileDevice()
        result = device.radio_request()
        assert device.clock.now == pytest.approx(result.latency_s)

    def test_request_charges_energy(self):
        device = MobileDevice()
        result = device.radio_request()
        assert result.energy_j > result.latency_s * 0.9  # radio on top of base

    def test_unknown_radio_rejected(self):
        device = MobileDevice()
        with pytest.raises(KeyError):
            device.radio_request(radio="5g")

    def test_back_to_back_requests_faster(self):
        device = MobileDevice()
        first = device.radio_request()
        second = device.radio_request()
        assert first.woke
        assert not second.woke
        assert second.latency_s < first.latency_s


class TestBrowserPath:
    def test_render_advances_clock_and_charges(self):
        device = MobileDevice()
        latency, energy = device.render_page()
        assert device.clock.now == pytest.approx(latency)
        assert energy > 0
