"""Tests for the metrics collector."""

import pytest

from repro.sim.metrics import MetricsCollector, QueryOutcome, ServiceSource


def outcome(hit=True, latency=0.4, energy=0.5, t=0.0, nav=None):
    return QueryOutcome(
        query="q",
        hit=hit,
        source=ServiceSource.CACHE if hit else ServiceSource.RADIO_3G,
        latency_s=latency,
        energy_j=energy,
        timestamp=t,
        navigational=nav,
    )


class TestBasics:
    def test_empty_hit_rate_zero(self):
        assert MetricsCollector().hit_rate == 0.0

    def test_hit_rate(self):
        m = MetricsCollector()
        m.record(outcome(hit=True))
        m.record(outcome(hit=True))
        m.record(outcome(hit=False))
        assert m.hit_rate == pytest.approx(2 / 3)

    def test_means(self):
        m = MetricsCollector()
        m.record(outcome(latency=0.2, energy=1.0))
        m.record(outcome(latency=0.4, energy=3.0))
        assert m.mean_latency_s == pytest.approx(0.3)
        assert m.mean_energy_j == pytest.approx(2.0)
        assert m.total_energy_j == pytest.approx(4.0)

    def test_empty_mean_raises(self):
        with pytest.raises(ValueError):
            MetricsCollector().mean_latency_s

    def test_source_is_local(self):
        assert ServiceSource.CACHE.is_local
        assert not ServiceSource.RADIO_3G.is_local


class TestPercentiles:
    def test_percentile(self):
        m = MetricsCollector()
        for latency in (0.1, 0.2, 0.3, 0.4, 0.5):
            m.record(outcome(latency=latency))
        assert m.latency_percentile(50) == pytest.approx(0.3)
        assert m.latency_percentile(100) == pytest.approx(0.5)

    def test_percentile_bounds(self):
        m = MetricsCollector()
        m.record(outcome())
        with pytest.raises(ValueError):
            m.latency_percentile(101)


class TestBreakdowns:
    def test_navigational_breakdown(self):
        m = MetricsCollector()
        m.record(outcome(hit=True, nav=True))
        m.record(outcome(hit=True, nav=True))
        m.record(outcome(hit=True, nav=False))
        m.record(outcome(hit=False, nav=True))  # miss: not counted
        split = m.hit_breakdown_navigational()
        assert split["navigational"] == pytest.approx(2 / 3)
        assert split["non_navigational"] == pytest.approx(1 / 3)

    def test_breakdown_ignores_unflagged(self):
        m = MetricsCollector()
        m.record(outcome(hit=True, nav=None))
        assert m.hit_breakdown_navigational() == {
            "navigational": 0.0,
            "non_navigational": 0.0,
        }

    def test_window(self):
        m = MetricsCollector()
        m.record(outcome(t=1.0, hit=True))
        m.record(outcome(t=5.0, hit=False))
        window = m.window(0.0, 2.0)
        assert window.count == 1
        assert window.hit_rate == 1.0

    def test_hit_rate_by_predicate(self):
        m = MetricsCollector()
        m.record(outcome(hit=True, nav=True))
        m.record(outcome(hit=False, nav=True))
        m.record(outcome(hit=True, nav=False))
        assert m.hit_rate_by(lambda o: o.navigational) == pytest.approx(0.5)
