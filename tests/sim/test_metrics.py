"""Tests for the metrics collector."""

import math

import pytest

from repro.sim.metrics import MetricsCollector, QueryOutcome, ServiceSource


def outcome(hit=True, latency=0.4, energy=0.5, t=0.0, nav=None):
    return QueryOutcome(
        query="q",
        hit=hit,
        source=ServiceSource.CACHE if hit else ServiceSource.RADIO_3G,
        latency_s=latency,
        energy_j=energy,
        timestamp=t,
        navigational=nav,
    )


class TestBasics:
    def test_empty_hit_rate_zero(self):
        assert MetricsCollector().hit_rate == 0.0

    def test_hit_rate(self):
        m = MetricsCollector()
        m.record(outcome(hit=True))
        m.record(outcome(hit=True))
        m.record(outcome(hit=False))
        assert m.hit_rate == pytest.approx(2 / 3)

    def test_means(self):
        m = MetricsCollector()
        m.record(outcome(latency=0.2, energy=1.0))
        m.record(outcome(latency=0.4, energy=3.0))
        assert m.mean_latency_s == pytest.approx(0.3)
        assert m.mean_energy_j == pytest.approx(2.0)
        assert m.total_energy_j == pytest.approx(4.0)

    def test_empty_undefined_stats_are_nan(self):
        m = MetricsCollector()
        assert math.isnan(m.mean_latency_s)
        assert math.isnan(m.mean_energy_j)
        assert math.isnan(m.latency_percentile(50))
        assert m.hit_rate == 0.0
        assert m.total_energy_j == 0.0

    def test_source_is_local(self):
        assert ServiceSource.CACHE.is_local
        assert not ServiceSource.RADIO_3G.is_local


class TestPercentiles:
    def test_percentile(self):
        m = MetricsCollector()
        for latency in (0.1, 0.2, 0.3, 0.4, 0.5):
            m.record(outcome(latency=latency))
        assert m.latency_percentile(50) == pytest.approx(0.3)
        assert m.latency_percentile(100) == pytest.approx(0.5)

    def test_percentile_bounds(self):
        m = MetricsCollector()
        m.record(outcome())
        with pytest.raises(ValueError):
            m.latency_percentile(101)


class TestBreakdowns:
    def test_navigational_breakdown(self):
        m = MetricsCollector()
        m.record(outcome(hit=True, nav=True))
        m.record(outcome(hit=True, nav=True))
        m.record(outcome(hit=True, nav=False))
        m.record(outcome(hit=False, nav=True))  # miss: not counted
        split = m.hit_breakdown_navigational()
        assert split["navigational"] == pytest.approx(2 / 3)
        assert split["non_navigational"] == pytest.approx(1 / 3)

    def test_breakdown_ignores_unflagged(self):
        m = MetricsCollector()
        m.record(outcome(hit=True, nav=None))
        assert m.hit_breakdown_navigational() == {
            "navigational": 0.0,
            "non_navigational": 0.0,
        }

    def test_window(self):
        m = MetricsCollector()
        m.record(outcome(t=1.0, hit=True))
        m.record(outcome(t=5.0, hit=False))
        window = m.window(0.0, 2.0)
        assert window.count == 1
        assert window.hit_rate == 1.0

    def test_hit_rate_by_predicate(self):
        m = MetricsCollector()
        m.record(outcome(hit=True, nav=True))
        m.record(outcome(hit=False, nav=True))
        m.record(outcome(hit=True, nav=False))
        assert m.hit_rate_by(lambda o: o.navigational) == pytest.approx(0.5)

    def test_window_boundary_inclusivity(self):
        """[t_start, t_end): start included, end excluded."""
        m = MetricsCollector()
        m.record(outcome(t=1.0, hit=True))
        m.record(outcome(t=2.0, hit=False))
        m.record(outcome(t=3.0, hit=True))
        window = m.window(1.0, 3.0)
        assert window.count == 2
        assert [o.timestamp for o in window.outcomes] == [1.0, 2.0]


def _mixed_outcomes(n=200, bucket_s=10.0):
    out = []
    for i in range(n):
        out.append(
            outcome(
                hit=(i % 3 != 0),
                latency=0.01 * (i % 50) + 0.1,
                energy=0.5 + 0.001 * i,
                t=i * bucket_s / 4,  # four outcomes per bucket
                nav=(i % 2 == 0) if i % 5 else None,
            )
        )
    return out


class TestBoundedMode:
    """The streaming collector must agree with the exact one."""

    def setup_method(self):
        self.exact = MetricsCollector()
        self.bounded = MetricsCollector(bounded=True, window_bucket_s=10.0)
        for o in _mixed_outcomes():
            self.exact.record(o)
            self.bounded.record(o)

    def test_counts_and_rates_match(self):
        assert self.bounded.count == self.exact.count
        assert self.bounded.hits == self.exact.hits
        assert self.bounded.hit_rate == pytest.approx(self.exact.hit_rate)

    def test_totals_and_means_match(self):
        assert self.bounded.total_latency_s == pytest.approx(
            self.exact.total_latency_s
        )
        assert self.bounded.total_energy_j == pytest.approx(
            self.exact.total_energy_j
        )
        assert self.bounded.mean_latency_s == pytest.approx(
            self.exact.mean_latency_s
        )
        assert self.bounded.mean_energy_j == pytest.approx(
            self.exact.mean_energy_j
        )

    def test_extreme_percentiles_exact(self):
        assert self.bounded.latency_percentile(0) == pytest.approx(
            self.exact.latency_percentile(0)
        )
        assert self.bounded.latency_percentile(100) == pytest.approx(
            self.exact.latency_percentile(100)
        )

    def test_interior_percentiles_close(self):
        # Reservoir (1024) is larger than the stream (200): exact here.
        for q in (25, 50, 90, 99):
            assert self.bounded.latency_percentile(q) == pytest.approx(
                self.exact.latency_percentile(q)
            )

    def test_navigational_breakdown_matches(self):
        assert self.bounded.hit_breakdown_navigational() == pytest.approx(
            self.exact.hit_breakdown_navigational()
        )

    def test_aligned_window_matches_exact(self):
        lo, hi = 100.0, 300.0  # multiples of the 10 s bucket
        w_exact = self.exact.window(lo, hi)
        w_bounded = self.bounded.window(lo, hi)
        assert w_bounded.count == w_exact.count
        assert w_bounded.hit_rate == pytest.approx(w_exact.hit_rate)

    def test_empty_bounded_stats(self):
        m = MetricsCollector(bounded=True)
        assert m.hit_rate == 0.0
        assert math.isnan(m.mean_latency_s)
        assert math.isnan(m.latency_percentile(50))

    def test_bounded_memory_is_bounded(self):
        m = MetricsCollector(bounded=True, reservoir_size=64)
        for o in _mixed_outcomes(n=5000):
            m.record(o)
        assert m.outcomes == []
        assert len(m._latency_hist._sample) == 64

    def test_per_outcome_operations_raise(self):
        with pytest.raises(RuntimeError):
            self.bounded.hit_rate_by(lambda o: True)

    def test_merge_bounded_into_bounded(self):
        merged = MetricsCollector(bounded=True, window_bucket_s=10.0)
        merged.merge(self.bounded)
        other = MetricsCollector(bounded=True, window_bucket_s=10.0)
        other.record(outcome(hit=True, latency=9.0, t=0.0))
        merged.merge(other)
        assert merged.count == self.bounded.count + 1
        assert merged.latency_percentile(100) == pytest.approx(9.0)

    def test_merge_exact_into_bounded(self):
        merged = MetricsCollector(bounded=True, window_bucket_s=10.0)
        merged.merge(self.exact)
        assert merged.count == self.exact.count
        assert merged.hit_rate == pytest.approx(self.exact.hit_rate)

    def test_merge_bounded_into_exact_rejected(self):
        with pytest.raises(ValueError):
            self.exact.merge(self.bounded)
