"""Tests for the battery model."""

import pytest

from repro.sim.battery import DEFAULT_CAPACITY_J, Battery


class TestBattery:
    def test_default_capacity(self):
        assert DEFAULT_CAPACITY_J == pytest.approx(1.5 * 3.7 * 3600)

    def test_drain_and_level(self):
        battery = Battery(capacity_j=100.0)
        assert battery.drain(30.0)
        assert battery.level == pytest.approx(0.7)

    def test_exhaustion_clamps(self):
        battery = Battery(capacity_j=10.0)
        assert not battery.drain(20.0)
        assert battery.charge_j == 0.0

    def test_recharge(self):
        battery = Battery(capacity_j=50.0)
        battery.drain(40.0)
        battery.recharge()
        assert battery.level == 1.0

    def test_queries_per_charge(self):
        battery = Battery(capacity_j=100.0)
        assert battery.queries_per_charge(2.5) == 40

    def test_daily_budget_share(self):
        battery = Battery(capacity_j=100.0)
        assert battery.daily_budget_share(1.0, 10) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            Battery(capacity_j=0)
        battery = Battery()
        with pytest.raises(ValueError):
            battery.drain(-1)
        with pytest.raises(ValueError):
            battery.queries_per_charge(0)
        with pytest.raises(ValueError):
            battery.daily_budget_share(1.0, -1)

    def test_paper_scale_comparison(self):
        """PocketSearch sustains ~23x more queries per charge than 3G —
        the energy ratio expressed in user terms."""
        battery = Battery()
        ps = battery.queries_per_charge(0.47)
        threeg = battery.queries_per_charge(10.9)
        assert ps / threeg == pytest.approx(23, rel=0.05)
