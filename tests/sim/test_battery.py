"""Tests for the battery model."""

import pytest

from repro.sim.battery import (
    DAY_SECONDS,
    DEFAULT_CAPACITY_J,
    MIN_BURN_SPAN_S,
    Battery,
    FleetBatteries,
)


class TestBattery:
    def test_default_capacity(self):
        assert DEFAULT_CAPACITY_J == pytest.approx(1.5 * 3.7 * 3600)

    def test_drain_and_level(self):
        battery = Battery(capacity_j=100.0)
        assert battery.drain(30.0)
        assert battery.level == pytest.approx(0.7)

    def test_exhaustion_clamps(self):
        battery = Battery(capacity_j=10.0)
        assert not battery.drain(20.0)
        assert battery.charge_j == 0.0

    def test_recharge(self):
        battery = Battery(capacity_j=50.0)
        battery.drain(40.0)
        battery.recharge()
        assert battery.level == 1.0

    def test_queries_per_charge(self):
        battery = Battery(capacity_j=100.0)
        assert battery.queries_per_charge(2.5) == 40

    def test_daily_budget_share(self):
        battery = Battery(capacity_j=100.0)
        assert battery.daily_budget_share(1.0, 10) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            Battery(capacity_j=0)
        battery = Battery()
        with pytest.raises(ValueError):
            battery.drain(-1)
        with pytest.raises(ValueError):
            battery.queries_per_charge(0)
        with pytest.raises(ValueError):
            battery.daily_budget_share(1.0, -1)

    def test_drain_exact_charge_succeeds(self):
        """Draining exactly the remaining charge is not exhaustion."""
        battery = Battery(capacity_j=10.0)
        assert battery.drain(10.0)
        assert battery.charge_j == 0.0
        assert battery.level == 0.0

    def test_drain_never_goes_negative(self):
        battery = Battery(capacity_j=10.0)
        battery.drain(10.0)
        assert not battery.drain(0.001)
        assert battery.charge_j == 0.0
        # A zero-energy drain of a full-to-the-brim-empty battery is fine.
        assert battery.drain(0.0)

    def test_paper_scale_comparison(self):
        """PocketSearch sustains ~23x more queries per charge than 3G —
        the energy ratio expressed in user terms."""
        battery = Battery()
        ps = battery.queries_per_charge(0.47)
        threeg = battery.queries_per_charge(10.9)
        assert ps / threeg == pytest.approx(23, rel=0.05)


class TestFleetBatteries:
    def test_devices_created_on_first_drain(self):
        fleet = FleetBatteries(capacity_j=100.0)
        assert len(fleet) == 0
        assert fleet.level(7) == 1.0
        assert fleet.drain(7, 30.0, t=10.0)
        assert len(fleet) == 1
        assert fleet.level(7) == pytest.approx(0.7)

    def test_exhaustion_verdict(self):
        fleet = FleetBatteries(capacity_j=10.0)
        assert fleet.drain(1, 6.0, t=0.0)
        assert not fleet.drain(1, 6.0, t=1.0)
        assert fleet.level(1) == 0.0

    def test_burn_per_day_short_span_uses_floor(self):
        """Spans shorter than MIN_BURN_SPAN_S extrapolate over the floor,
        never over one query's instant."""
        fleet = FleetBatteries(capacity_j=100.0)
        fleet.drain(1, 1.0, t=0.0)
        expected = (1.0 / 100.0) * (DAY_SECONDS / MIN_BURN_SPAN_S)
        assert fleet.burn_per_day(1, t=0.5) == pytest.approx(expected)

    def test_burn_per_day_long_span(self):
        fleet = FleetBatteries(capacity_j=100.0)
        fleet.drain(1, 2.0, t=100.0)
        fleet.drain(1, 2.0, t=100.0 + DAY_SECONDS)
        # 4 J over exactly one day on a 100 J battery: 4%/day.
        assert fleet.burn_per_day(1, t=100.0 + DAY_SECONDS) == pytest.approx(0.04)
        assert fleet.burn_per_day(99, t=0.0) == 0.0

    def test_queries_per_charge(self):
        fleet = FleetBatteries(capacity_j=100.0)
        assert fleet.queries_per_charge(1) is None
        fleet.drain(1, 2.0, t=0.0)
        fleet.drain(1, 3.0, t=1.0)
        assert fleet.queries_per_charge(1) == 40  # 100 / 2.5 mean J/query

    def test_snapshot_empty_fleet(self):
        snap = FleetBatteries(capacity_j=50.0).snapshot(t=0.0)
        assert snap["n_devices"] == 0
        assert snap["min_level"] is None
        assert snap["worst"] == []

    def test_snapshot_aggregates_and_worst_order(self):
        fleet = FleetBatteries(capacity_j=100.0)
        fleet.drain(1, 10.0, t=0.0)
        fleet.drain(2, 60.0, t=0.0)
        fleet.drain(3, 30.0, t=0.0)
        snap = fleet.snapshot(t=120.0, worst_k=2)
        assert snap["n_devices"] == 3
        assert snap["min_level"] == pytest.approx(0.4)
        assert snap["mean_level"] == pytest.approx((0.9 + 0.4 + 0.7) / 3)
        assert snap["exhausted"] == 0
        assert snap["drained_j"] == pytest.approx(100.0)
        assert snap["energy_j_per_query"] == pytest.approx(100.0 / 3)
        assert [row["device_id"] for row in snap["worst"]] == [2, 3]

    def test_validation(self):
        with pytest.raises(ValueError):
            FleetBatteries(capacity_j=0)
