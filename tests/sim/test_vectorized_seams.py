"""Vectorized/scalar fallback-seam coverage.

The vectorized engine batch-evaluates refresh-free segments and falls
back to an exact scalar mirror of ``CacheUpdateServer.refresh_with_content``
at daily-update boundaries.  These tests pin the seam itself:

* a mid-stream daily update forces a segment flush whose
  :class:`UpdatePatch` accounting — byte counts, pair/result add/remove
  counts, pruned queries, compaction costs — is identical to driving the
  real scalar server against a real cache;
* degenerate batches (users with no events, single-event users, empty
  shards) pass through the batch path without crashing and produce the
  scalar engine's outcomes.
"""

import pytest

from repro.logs.schema import MONTH_SECONDS
from repro.pocketsearch.content import build_cache_content
from repro.pocketsearch.engine import PocketSearchEngine
from repro.pocketsearch.manager import CacheUpdateServer
from repro.sim.replay import (
    CacheMode,
    ReplayConfig,
    _daily_contents,
    _record_bytes,
    make_cache,
    select_replay_users,
)
from repro.sim.shard import partition_shards
from repro.sim.vectorized import DAY_SECONDS, replay_user_vectorized

T_START = 1 * MONTH_SECONDS
T_END = T_START + MONTH_SECONDS


@pytest.fixture(scope="module")
def small_content(request):
    small_log = request.getfixturevalue("small_log")
    config = ReplayConfig()
    return build_cache_content(
        small_log.month(config.build_month), config.policy
    )


@pytest.fixture(scope="module")
def daily_contents(request):
    small_log = request.getfixturevalue("small_log")
    return _daily_contents(small_log, ReplayConfig(daily_updates=True))


@pytest.fixture(scope="module")
def replay_users(request):
    small_log = request.getfixturevalue("small_log")
    selected = select_replay_users(small_log, 1, 3)
    return [uid for uids in selected.values() for uid in uids]


def _scalar_patches(log, content, daily, uid, mode):
    """Drive the real scalar server/cache, collecting every UpdatePatch."""
    cache = make_cache(content, mode)
    engine = PocketSearchEngine(cache)
    server = CacheUpdateServer()
    stream = log.for_user(uid).window(T_START, T_END)
    patches = []
    outcomes = []
    day = 0
    for i in range(stream.n_events):
        t = float(stream.timestamps[i])
        event_day = min(int((t - T_START) // DAY_SECONDS), len(daily) - 1)
        while day <= event_day:
            patches.append(server.refresh_with_content(cache, daily[day]))
            day += 1
        qkey = int(stream.query_keys[i])
        rkey = int(stream.result_keys[i])
        result = engine.serve_query(
            query=stream.query_string(qkey),
            clicked_url=stream.result_url(rkey),
            record_bytes=_record_bytes(stream, rkey),
            navigational=bool(stream.navigational[i]),
            timestamp=t,
        )
        outcomes.append(result.outcome)
    return patches, outcomes


class TestUpdatePatchParity:
    @pytest.mark.parametrize("mode", [CacheMode.FULL, CacheMode.COMMUNITY_ONLY])
    def test_mid_batch_refresh_has_identical_accounting(
        self, small_log, small_content, daily_contents, replay_users, mode
    ):
        """Every refresh the scalar server performs — including skipped-day
        catch-ups and database compactions — must appear in the vectorized
        run with field-identical UpdatePatch records."""
        checked_patches = 0
        for uid in replay_users:
            expected_patches, expected_outcomes = _scalar_patches(
                small_log, small_content, daily_contents, uid, mode
            )
            metrics, patches = replay_user_vectorized(
                small_log,
                small_content,
                daily_contents,
                mode,
                uid,
                T_START,
                T_END,
                collect_patches=True,
            )
            assert metrics.outcomes == expected_outcomes, uid
            assert len(patches) == len(expected_patches), uid
            for got, want in zip(patches, expected_patches):
                # Dataclass equality covers bytes up/down, pair and result
                # add/remove counts, pruned queries, per-file patch bytes,
                # and the CompactionResult (including float costs).
                assert got == want, uid
            checked_patches += len(patches)
        assert checked_patches > 0  # the seam was actually exercised

    def test_compaction_occurs_and_matches(
        self, small_log, small_content, daily_contents, replay_users
    ):
        """At least one refresh in the matrix must trigger compaction —
        otherwise the compaction mirror is dead code in this suite."""
        compactions = 0
        for uid in replay_users:
            _, patches = replay_user_vectorized(
                small_log, small_content, daily_contents,
                CacheMode.FULL, uid, T_START, T_END,
                collect_patches=True,
            )
            compactions += sum(1 for p in patches if p.compaction is not None)
        assert compactions > 0


class TestDegenerateBatches:
    def test_user_with_no_events(self, small_log, small_content):
        """An empty slice (user absent from the window) yields an empty
        collector, not a crash."""
        metrics, patches = replay_user_vectorized(
            small_log, small_content, None, CacheMode.FULL,
            10**9, T_START, T_END,
        )
        assert metrics.count == 0
        assert metrics.outcomes == []
        assert patches is None

    def test_single_event_user(self, small_log, small_content, replay_users):
        """A one-event window exercises the batch path's minimal case and
        still matches the scalar engine exactly."""
        uid = replay_users[0]
        stream = small_log.for_user(uid).window(T_START, T_END)
        t0 = float(stream.timestamps[0])
        t1 = float(stream.timestamps[1])
        metrics, _ = replay_user_vectorized(
            small_log, small_content, None, CacheMode.FULL, uid, t0, t1
        )
        assert metrics.count == 1

        cache = make_cache(small_content, CacheMode.FULL)
        engine = PocketSearchEngine(cache)
        qkey = int(stream.query_keys[0])
        rkey = int(stream.result_keys[0])
        expected = engine.serve_query(
            query=stream.query_string(qkey),
            clicked_url=stream.result_url(rkey),
            record_bytes=_record_bytes(stream, rkey),
            navigational=bool(stream.navigational[0]),
            timestamp=t0,
        ).outcome
        assert metrics.outcomes == [expected]

    def test_empty_shard_partition(self, replay_users):
        """More shards than users leaves trailing shards empty; the
        partitioner never emits them and never drops a user."""
        work = [(None, uid) for uid in replay_users[:3]]
        shards = partition_shards(work, shard_size=1)
        assert all(shard for shard in shards)
        assert sorted(uid for shard in shards for _, uid in shard) == sorted(
            uid for _, uid in work
        )

    def test_daily_user_with_no_events_still_no_refresh(
        self, small_log, small_content, daily_contents
    ):
        """No events → no segments → the update server is never invoked
        (matching the scalar loop, which only refreshes ahead of events)."""
        metrics, patches = replay_user_vectorized(
            small_log, small_content, daily_contents, CacheMode.FULL,
            10**9, T_START, T_END,
            collect_patches=True,
        )
        assert metrics.count == 0
        assert patches == []
