"""Regression tests for per-user-keyed RNG in ``select_replay_users``.

The original selector consumed one shared RNG stream across class
buckets, so the set chosen for one class depended on how many draws the
*previous* classes made (draw-order coupling): filtering unrelated users
out of the log reshuffled every other class's picks.  Selection is now a
lottery keyed by ``(seed, user_id)`` alone; these tests pin that
property so a future refactor cannot quietly reintroduce the coupling.
"""

import numpy as np

from repro.logs.schema import UserClass, classify_user
from repro.sim.replay import (
    derive_user_seed,
    select_replay_users,
)


def _drop_class(log, month, drop: UserClass):
    """A view of ``log`` without any user classified as ``drop``."""
    volumes = log.user_monthly_volumes(month=month)
    dropped = {
        uid for uid, v in volumes.items() if classify_user(v) is drop
    }
    mask = ~np.isin(log.user_ids, sorted(dropped))
    return log._select(mask)


class TestSelectionKeyedByUserId:
    def test_deterministic(self, small_log):
        a = select_replay_users(small_log, 1, 5, seed=1)
        b = select_replay_users(small_log, 1, 5, seed=1)
        assert a == b

    def test_seed_changes_selection(self, small_log):
        a = select_replay_users(small_log, 1, 5, seed=1)
        b = select_replay_users(small_log, 1, 5, seed=2)
        assert a != b  # astronomically unlikely to collide

    def test_independent_of_other_classes(self, small_log):
        """Removing one class's users must not move another's picks.

        This is the regression the differential harness exposed: with a
        shared RNG stream, the LOW bucket's draw count shifted the
        stream position for every later bucket.
        """
        full = select_replay_users(small_log, 1, 3, seed=7)
        without_low = select_replay_users(
            _drop_class(small_log, 1, UserClass.LOW), 1, 3, seed=7
        )
        for user_class in UserClass:
            if user_class is UserClass.LOW:
                continue
            assert full[user_class] == without_low[user_class], user_class

    def test_selection_sorted_and_capped(self, small_log):
        selected = select_replay_users(small_log, 1, 3, seed=7)
        for uids in selected.values():
            assert uids == sorted(uids)
            assert len(uids) <= 3


class TestPerUserSeedDerivation:
    def test_keyed_by_user_id(self):
        assert derive_user_seed(23, 5) != derive_user_seed(23, 6)
        assert derive_user_seed(23, 5) != derive_user_seed(24, 5)
        assert derive_user_seed(23, 5) == derive_user_seed(23, 5)

    def test_independent_of_call_order(self):
        forward = [derive_user_seed(23, uid) for uid in range(10)]
        backward = [derive_user_seed(23, uid) for uid in reversed(range(10))]
        assert forward == list(reversed(backward))

    def test_distinct_from_selection_stream(self):
        from repro.sim.replay import _selection_priority

        # Same (seed, uid) must not yield the same value in both domains,
        # or selection and replay randomness would be correlated.
        assert derive_user_seed(23, 5) != _selection_priority(23, 5)
