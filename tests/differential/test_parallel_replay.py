"""Differential equivalence: sharded parallel replay == serial replay.

The contract under test is *bit-identity*, not statistical closeness:
``run_replay(workers=N)`` must produce exactly the serial result — same
users in the same order, same per-query outcomes, same aggregate
reports — for every cache mode, with and without daily updates and
bounded metrics, and for any shard size.  Comparisons therefore use
``==`` (never ``pytest.approx``) with explicit nan handling.
"""

import math

import pytest

from repro.logs.schema import MONTH_SECONDS, UserClass
from repro.sim.replay import CacheMode, ReplayConfig, run_replay

USERS_PER_CLASS = 3
WEEK_S = 7 * 24 * 3600


def _identical_scalar(a, b, context=""):
    if isinstance(a, float) and math.isnan(a):
        assert isinstance(b, float) and math.isnan(b), context
    else:
        assert a == b, f"{context}: {a!r} != {b!r}"


def _identical_mapping(a, b, context=""):
    assert a.keys() == b.keys(), context
    for key in a:
        va, vb = a[key], b[key]
        if isinstance(va, dict):
            _identical_mapping(va, vb, f"{context}[{key}]")
        else:
            _identical_scalar(va, vb, f"{context}[{key}]")


def assert_replay_identical(serial, parallel):
    """Every observable of a ReplayResult must match bit-for-bit."""
    assert serial.mode == parallel.mode
    assert len(serial.users) == len(parallel.users)
    for us, up in zip(serial.users, parallel.users):
        ctx = f"user {us.user_id}"
        assert us.user_id == up.user_id, ctx
        assert us.user_class is up.user_class, ctx
        assert us.metrics.bounded == up.metrics.bounded, ctx
        assert us.metrics.count == up.metrics.count, ctx
        assert us.metrics.hits == up.metrics.hits, ctx
        _identical_scalar(us.metrics.hit_rate, up.metrics.hit_rate, ctx)
        _identical_scalar(
            us.metrics.total_latency_s, up.metrics.total_latency_s, ctx
        )
        _identical_scalar(
            us.metrics.total_energy_j, up.metrics.total_energy_j, ctx
        )
        if not us.metrics.bounded:
            # Exact mode retains every QueryOutcome: the full per-query
            # record streams must be equal, not just their aggregates.
            assert us.metrics.outcomes == up.metrics.outcomes, ctx
        for q in (0, 50, 95, 100):
            _identical_scalar(
                us.metrics.latency_percentile(q),
                up.metrics.latency_percentile(q),
                f"{ctx} p{q}",
            )
    _identical_scalar(
        serial.overall_hit_rate(), parallel.overall_hit_rate(), "overall"
    )
    _identical_mapping(
        serial.hit_rate_by_class(), parallel.hit_rate_by_class(), "by_class"
    )
    for lo, hi in (
        (MONTH_SECONDS, MONTH_SECONDS + WEEK_S),
        (MONTH_SECONDS, MONTH_SECONDS + 2 * WEEK_S),
    ):
        _identical_mapping(
            serial.hit_rate_by_class_windowed(lo, hi),
            parallel.hit_rate_by_class_windowed(lo, hi),
            f"window[{lo},{hi})",
        )
    _identical_mapping(
        serial.navigational_breakdown(),
        parallel.navigational_breakdown(),
        "navigational",
    )


@pytest.fixture(scope="module")
def serial_replay(request):
    small_log = request.getfixturevalue("small_log")
    return run_replay(
        small_log,
        ReplayConfig(users_per_class=USERS_PER_CLASS),
        modes=CacheMode.ALL,
    )


@pytest.fixture(scope="module")
def serial_daily(request):
    small_log = request.getfixturevalue("small_log")
    return run_replay(
        small_log,
        ReplayConfig(users_per_class=USERS_PER_CLASS, daily_updates=True),
        modes=CacheMode.ALL,
    )


@pytest.fixture(scope="module")
def serial_bounded(request):
    small_log = request.getfixturevalue("small_log")
    return run_replay(
        small_log,
        ReplayConfig(users_per_class=USERS_PER_CLASS, bounded_metrics=True),
        modes=CacheMode.ALL,
    )


class TestParallelEqualsSerial:
    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("mode", CacheMode.ALL)
    def test_plain_replay(self, small_log, serial_replay, mode, workers):
        parallel = run_replay(
            small_log,
            ReplayConfig(users_per_class=USERS_PER_CLASS, workers=workers),
            modes=[mode],
        )
        assert_replay_identical(serial_replay[mode], parallel[mode])

    @pytest.mark.parametrize("mode", CacheMode.ALL)
    def test_daily_updates(self, small_log, serial_daily, mode):
        parallel = run_replay(
            small_log,
            ReplayConfig(
                users_per_class=USERS_PER_CLASS,
                daily_updates=True,
                workers=2,
            ),
            modes=[mode],
        )
        assert_replay_identical(serial_daily[mode], parallel[mode])

    @pytest.mark.parametrize("mode", CacheMode.ALL)
    def test_bounded_metrics(self, small_log, serial_bounded, mode):
        parallel = run_replay(
            small_log,
            ReplayConfig(
                users_per_class=USERS_PER_CLASS,
                bounded_metrics=True,
                workers=2,
            ),
            modes=[mode],
        )
        assert_replay_identical(serial_bounded[mode], parallel[mode])
        for user in parallel[mode].users:
            assert user.metrics.bounded
            assert user.metrics.outcomes == []


class TestSchedulingInvariance:
    def test_shard_size_never_changes_results(self, small_log, serial_replay):
        """shard_size=1 (max dispatch interleaving) == auto-sized shards."""
        fine = run_replay(
            small_log,
            ReplayConfig(
                users_per_class=USERS_PER_CLASS, workers=2, shard_size=1
            ),
            modes=[CacheMode.FULL],
        )
        assert_replay_identical(
            serial_replay[CacheMode.FULL], fine[CacheMode.FULL]
        )

    def test_more_workers_than_users(self, small_log, serial_replay):
        parallel = run_replay(
            small_log,
            ReplayConfig(users_per_class=USERS_PER_CLASS, workers=32),
            modes=[CacheMode.FULL],
        )
        assert_replay_identical(
            serial_replay[CacheMode.FULL], parallel[CacheMode.FULL]
        )

    def test_user_order_is_class_then_uid(self, serial_replay):
        """The merged user list preserves (class, sorted uid) work order."""
        result = serial_replay[CacheMode.FULL]
        seen_classes = []
        for user in result.users:
            if user.user_class not in seen_classes:
                seen_classes.append(user.user_class)
        assert seen_classes == [c for c in UserClass if c in seen_classes]
        by_class = {}
        for user in result.users:
            by_class.setdefault(user.user_class, []).append(user.user_id)
        for uids in by_class.values():
            assert uids == sorted(uids)


class TestConfigValidation:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            ReplayConfig(workers=0)

    def test_shard_size_must_be_positive(self):
        with pytest.raises(ValueError):
            ReplayConfig(shard_size=0)
