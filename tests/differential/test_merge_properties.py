"""Property tests for ``MetricsCollector.merge``.

The sharded replay's deterministic merge leans on algebraic properties
of the collector: merging must behave like (multi)set union of the
underlying outcome streams.  Checked here with hypothesis-generated
outcome lists:

* associativity — ``(a + b) + c == a + (b + c)`` on all merged stats;
* commutativity — ``a + b`` and ``b + a`` agree on every order-free
  statistic (counts, sums, extremes, buckets, navigational split);
* identity — merging an empty collector is a no-op, and merging *into*
  an empty collector reproduces the source;
* exact/bounded agreement — a bounded collector fed the same outcomes
  (directly or via merge) matches the exact collector on counts,
  hit rate, sums, and extreme percentiles.

Reservoir *interiors* (p50/p95 estimates) are deliberately excluded from
the commutativity/associativity assertions: the reservoir subsample is
documented as order-dependent.  Everything asserted here is exact.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.sim.metrics import MetricsCollector, QueryOutcome, ServiceSource

DAY_S = 24 * 3600.0


def outcome_strategy():
    return st.builds(
        QueryOutcome,
        query=st.sampled_from(["q0", "q1", "q2", "q3"]),
        hit=st.booleans(),
        source=st.sampled_from(list(ServiceSource)),
        latency_s=st.floats(min_value=1e-4, max_value=30.0, allow_nan=False),
        energy_j=st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        timestamp=st.floats(min_value=0.0, max_value=60 * DAY_S,
                            allow_nan=False),
        navigational=st.sampled_from([None, True, False]),
    )


outcome_lists = st.lists(outcome_strategy(), max_size=40)


def exact_of(outcomes):
    collector = MetricsCollector()
    collector.extend(list(outcomes))
    return collector


def bounded_of(outcomes, seed=7):
    collector = MetricsCollector(bounded=True, reservoir_seed=seed)
    collector.extend(list(outcomes))
    return collector


def order_free_stats(c: MetricsCollector) -> dict:
    """Every statistic that must not depend on merge order."""
    stats = {
        "count": c.count,
        "hits": c.hits,
        "hit_rate": c.hit_rate,
        "nav": c.hit_breakdown_navigational(),
        "window_w1": _window_stats(c, 0.0, 7 * DAY_S),
        "window_w2": _window_stats(c, 7 * DAY_S, 30 * DAY_S),
    }
    if c.count:
        stats["p0"] = c.latency_percentile(0)
        stats["p100"] = c.latency_percentile(100)
    return stats


def _window_stats(c, lo, hi):
    w = c.window(lo, hi)
    return (w.count, w.hits)


def close_sums(a: MetricsCollector, b: MetricsCollector):
    """Float totals may differ by summation order only at ulp scale."""
    assert math.isclose(
        a.total_latency_s, b.total_latency_s, rel_tol=1e-9, abs_tol=1e-12
    )
    assert math.isclose(
        a.total_energy_j, b.total_energy_j, rel_tol=1e-9, abs_tol=1e-12
    )


class TestExactMerge:
    @given(a=outcome_lists, b=outcome_lists, c=outcome_lists)
    @settings(max_examples=60, deadline=None)
    def test_associative(self, a, b, c):
        left = exact_of(a)
        left.merge(exact_of(b))
        left.merge(exact_of(c))
        bc = exact_of(b)
        bc.merge(exact_of(c))
        right = exact_of(a)
        right.merge(bc)
        assert left.outcomes == right.outcomes  # exact mode: full streams

    @given(a=outcome_lists, b=outcome_lists)
    @settings(max_examples=60, deadline=None)
    def test_commutative_stats(self, a, b):
        ab = exact_of(a)
        ab.merge(exact_of(b))
        ba = exact_of(b)
        ba.merge(exact_of(a))
        assert order_free_stats(ab) == order_free_stats(ba)
        close_sums(ab, ba)

    @given(a=outcome_lists)
    @settings(max_examples=40, deadline=None)
    def test_empty_identity(self, a):
        collector = exact_of(a)
        collector.merge(MetricsCollector())
        assert collector.outcomes == list(a)
        empty = MetricsCollector()
        empty.merge(exact_of(a))
        assert empty.outcomes == list(a)


class TestBoundedMerge:
    @given(a=outcome_lists, b=outcome_lists, c=outcome_lists)
    @settings(max_examples=60, deadline=None)
    def test_associative_stats(self, a, b, c):
        left = bounded_of(a)
        left.merge(bounded_of(b))
        left.merge(bounded_of(c))
        bc = bounded_of(b)
        bc.merge(bounded_of(c))
        right = bounded_of(a)
        right.merge(bc)
        assert order_free_stats(left) == order_free_stats(right)
        close_sums(left, right)

    @given(a=outcome_lists, b=outcome_lists)
    @settings(max_examples=60, deadline=None)
    def test_commutative_stats(self, a, b):
        ab = bounded_of(a)
        ab.merge(bounded_of(b))
        ba = bounded_of(b)
        ba.merge(bounded_of(a))
        assert order_free_stats(ab) == order_free_stats(ba)
        close_sums(ab, ba)

    @given(a=outcome_lists)
    @settings(max_examples=40, deadline=None)
    def test_empty_identity(self, a):
        collector = bounded_of(a)
        before = order_free_stats(collector)
        collector.merge(MetricsCollector(bounded=True))
        assert order_free_stats(collector) == before
        empty = MetricsCollector(bounded=True)
        empty.merge(bounded_of(a))
        assert order_free_stats(empty) == order_free_stats(bounded_of(a))


class TestExactBoundedAgreement:
    @given(a=outcome_lists, b=outcome_lists)
    @settings(max_examples=60, deadline=None)
    def test_merge_agreement(self, a, b):
        """Bounded absorbing exact == bounded absorbing bounded == exact."""
        exact = exact_of(a)
        exact.merge(exact_of(b))

        via_exact = bounded_of(a)
        via_exact.merge(exact_of(b))  # bounded <- exact replays outcomes
        via_bounded = bounded_of(a)
        via_bounded.merge(bounded_of(b))

        for bounded in (via_exact, via_bounded):
            assert bounded.count == exact.count
            assert bounded.hits == exact.hits
            assert bounded.hit_rate == exact.hit_rate
            assert (
                bounded.hit_breakdown_navigational()
                == exact.hit_breakdown_navigational()
            )
            close_sums(bounded, exact)
            if exact.count:
                assert bounded.latency_percentile(0) == exact.latency_percentile(0)
                assert bounded.latency_percentile(100) == exact.latency_percentile(
                    100
                )

    @given(a=outcome_lists)
    @settings(max_examples=40, deadline=None)
    def test_exact_cannot_absorb_bounded(self, a):
        import pytest

        exact = exact_of(a)
        with pytest.raises(ValueError):
            exact.merge(bounded_of(a))
