"""Golden end-to-end replay regression (tiny seed, tight tolerance).

A checked-in fixture (``tests/fixtures/golden_replay.json``) pins the
per-class hit rates of a small fully-deterministic replay.  Any silent
drift in the log generator, content mining, cache stack, or replay
harness — including a nondeterministic parallel merge — moves these
numbers and fails the suite.

Regenerate (after an *intentional* behaviour change) with::

    PYTHONPATH=src python tests/differential/test_golden_regression.py --regenerate
"""

import json
import os

import pytest

from repro.logs.generator import GeneratorConfig, generate_logs
from repro.logs.popularity import CommunityModel
from repro.logs.schema import UserClass
from repro.logs.users import PopulationConfig, UserPopulation
from repro.logs.vocabulary import Vocabulary, VocabularyConfig
from repro.sim.replay import CacheMode, ReplayConfig, run_replay

FIXTURE_PATH = os.path.join(
    os.path.dirname(__file__), "..", "fixtures", "golden_replay.json"
)

#: Everything about the golden universe is pinned here; the fixture
#: records these so a config drift is detected as loudly as a code drift.
GOLDEN_CONFIG = {
    "vocabulary": {"n_nav_topics": 200, "n_non_nav_topics": 250, "seed": 13},
    "population": {"n_users": 80, "seed": 17},
    "generator": {"months": 2, "seed": 41},
    "users_per_class": 3,
    "replay_seed": 97,
}

TOLERANCE = 1e-9


def _golden_replay(workers: int = 1, engine: str = "scalar"):
    log = generate_logs(
        community=CommunityModel(
            Vocabulary.build(VocabularyConfig(**GOLDEN_CONFIG["vocabulary"]))
        ),
        population=UserPopulation.build(
            PopulationConfig(**GOLDEN_CONFIG["population"])
        ),
        config=GeneratorConfig(**GOLDEN_CONFIG["generator"]),
    )
    return run_replay(
        log,
        ReplayConfig(
            users_per_class=GOLDEN_CONFIG["users_per_class"],
            seed=GOLDEN_CONFIG["replay_seed"],
            workers=workers,
            engine=engine,
        ),
        modes=[CacheMode.FULL],
    )[CacheMode.FULL]


def _observed(result) -> dict:
    by_class = result.hit_rate_by_class()
    return {
        "config": GOLDEN_CONFIG,
        "n_users": len(result.users),
        "total_queries": int(sum(u.metrics.count for u in result.users)),
        "total_hits": int(sum(u.metrics.hits for u in result.users)),
        "overall_hit_rate": result.overall_hit_rate(),
        "hit_rate_by_class": {
            c.value: by_class[c] for c in UserClass
        },
    }


@pytest.fixture(scope="module")
def golden() -> dict:
    with open(FIXTURE_PATH) as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def observed() -> dict:
    return _observed(_golden_replay())


class TestGoldenReplay:
    def test_config_pinned(self, golden, observed):
        assert observed["config"] == golden["config"]

    def test_counts_exact(self, golden, observed):
        assert observed["n_users"] == golden["n_users"]
        assert observed["total_queries"] == golden["total_queries"]
        assert observed["total_hits"] == golden["total_hits"]

    def test_overall_hit_rate(self, golden, observed):
        assert observed["overall_hit_rate"] == pytest.approx(
            golden["overall_hit_rate"], abs=TOLERANCE
        )

    def test_per_class_hit_rates(self, golden, observed):
        assert (
            observed["hit_rate_by_class"].keys()
            == golden["hit_rate_by_class"].keys()
        )
        for user_class, expected in golden["hit_rate_by_class"].items():
            assert observed["hit_rate_by_class"][user_class] == pytest.approx(
                expected, abs=TOLERANCE
            ), user_class

    def test_parallel_run_matches_golden(self, golden):
        """The sharded path must hit the same golden numbers."""
        parallel = _observed(_golden_replay(workers=2))
        assert parallel["total_queries"] == golden["total_queries"]
        assert parallel["total_hits"] == golden["total_hits"]
        assert parallel["overall_hit_rate"] == pytest.approx(
            golden["overall_hit_rate"], abs=TOLERANCE
        )

    def test_vectorized_run_matches_golden(self, golden):
        """The vectorized engine must hit the same golden numbers."""
        vectorized = _observed(_golden_replay(engine="vectorized"))
        assert vectorized["total_queries"] == golden["total_queries"]
        assert vectorized["total_hits"] == golden["total_hits"]
        assert vectorized["overall_hit_rate"] == pytest.approx(
            golden["overall_hit_rate"], abs=TOLERANCE
        )
        for user_class, expected in golden["hit_rate_by_class"].items():
            assert vectorized["hit_rate_by_class"][
                user_class
            ] == pytest.approx(expected, abs=TOLERANCE), user_class


def _regenerate() -> None:
    observed = _observed(_golden_replay())
    path = os.path.abspath(FIXTURE_PATH)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as fh:
        json.dump(observed, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
