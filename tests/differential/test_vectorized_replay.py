"""Three-way differential equivalence: serial ≡ parallel ≡ vectorized.

The vectorized engine (:mod:`repro.sim.vectorized`) must be *bit-identical*
to the scalar per-event engine — same per-query outcomes, same bounded
reservoirs, same aggregate reports — across every cache mode, with and
without daily updates, with exact and bounded metrics, serial and
sharded.  Together with ``test_parallel_replay`` (serial ≡ parallel for
the scalar engine) this closes the full serial ≡ parallel ≡ vectorized
triangle: each vectorized variant here is compared against the scalar
serial reference directly.
"""

import pytest

from repro.sim.replay import CacheMode, ReplayConfig, run_replay

from tests.differential.test_parallel_replay import (
    USERS_PER_CLASS,
    assert_replay_identical,
)


def _run(small_log, engine, mode, **kwargs):
    return run_replay(
        small_log,
        ReplayConfig(
            users_per_class=USERS_PER_CLASS, engine=engine, **kwargs
        ),
        modes=[mode],
    )[mode]


@pytest.fixture(scope="module")
def scalar_plain(request):
    small_log = request.getfixturevalue("small_log")
    return run_replay(
        small_log,
        ReplayConfig(users_per_class=USERS_PER_CLASS),
        modes=CacheMode.ALL,
    )


@pytest.fixture(scope="module")
def scalar_daily(request):
    small_log = request.getfixturevalue("small_log")
    return run_replay(
        small_log,
        ReplayConfig(users_per_class=USERS_PER_CLASS, daily_updates=True),
        modes=CacheMode.ALL,
    )


@pytest.fixture(scope="module")
def scalar_bounded(request):
    small_log = request.getfixturevalue("small_log")
    return run_replay(
        small_log,
        ReplayConfig(users_per_class=USERS_PER_CLASS, bounded_metrics=True),
        modes=CacheMode.ALL,
    )


class TestVectorizedEqualsScalar:
    """serial scalar ≡ serial vectorized, full mode matrix."""

    @pytest.mark.parametrize("mode", CacheMode.ALL)
    def test_plain(self, small_log, scalar_plain, mode):
        vectorized = _run(small_log, "vectorized", mode)
        assert_replay_identical(scalar_plain[mode], vectorized)
        # Exact mode retains outcomes: the per-event streams must agree
        # record-for-record, not merely in aggregate.
        for su, vu in zip(scalar_plain[mode].users, vectorized.users):
            assert su.metrics.outcomes == vu.metrics.outcomes

    @pytest.mark.parametrize("mode", CacheMode.ALL)
    def test_daily_updates(self, small_log, scalar_daily, mode):
        vectorized = _run(small_log, "vectorized", mode, daily_updates=True)
        assert_replay_identical(scalar_daily[mode], vectorized)

    @pytest.mark.parametrize("mode", CacheMode.ALL)
    def test_bounded_metrics(self, small_log, scalar_bounded, mode):
        vectorized = _run(
            small_log, "vectorized", mode, bounded_metrics=True
        )
        assert_replay_identical(scalar_bounded[mode], vectorized)
        for user in vectorized.users:
            assert user.metrics.bounded
            assert user.metrics.outcomes == []

    @pytest.mark.parametrize("mode", CacheMode.ALL)
    def test_daily_bounded(self, small_log, mode):
        scalar = _run(
            small_log, "scalar", mode,
            daily_updates=True, bounded_metrics=True,
        )
        vectorized = _run(
            small_log, "vectorized", mode,
            daily_updates=True, bounded_metrics=True,
        )
        assert_replay_identical(scalar, vectorized)


class TestVectorizedParallel:
    """Vectorized composes with workers=N sharding (third triangle edge)."""

    @pytest.mark.parametrize("mode", CacheMode.ALL)
    def test_sharded_vectorized_equals_serial_scalar(
        self, small_log, scalar_plain, mode
    ):
        sharded = _run(small_log, "vectorized", mode, workers=2)
        assert_replay_identical(scalar_plain[mode], sharded)

    def test_sharded_vectorized_daily(self, small_log, scalar_daily):
        sharded = _run(
            small_log, "vectorized", CacheMode.FULL,
            workers=2, daily_updates=True,
        )
        assert_replay_identical(scalar_daily[CacheMode.FULL], sharded)

    def test_sharded_vectorized_bounded(self, small_log, scalar_bounded):
        sharded = _run(
            small_log, "vectorized", CacheMode.FULL,
            workers=2, bounded_metrics=True,
        )
        assert_replay_identical(scalar_bounded[CacheMode.FULL], sharded)


class TestEngineConfig:
    def test_engine_must_be_known(self):
        with pytest.raises(ValueError):
            ReplayConfig(engine="simd")

    def test_default_engine_is_scalar(self):
        assert ReplayConfig().engine == "scalar"
