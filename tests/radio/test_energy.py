"""Tests for radio energy accounting helpers."""

import pytest

from repro.radio.energy import (
    average_power,
    isolated_request_energy,
    isolated_request_latency,
    segments_duration,
    segments_energy,
    timeline_by_state,
)
from repro.radio.models import EDGE, THREE_G, WIFI_80211G
from repro.radio.states import PowerSegment, RadioLink, RadioState

KB = 1024


class TestIsolatedCosts:
    def test_latency_matches_state_machine(self):
        link = RadioLink(THREE_G)
        result = link.request(0.0, KB, 60 * KB, 0.35)
        analytic = isolated_request_latency(THREE_G, KB, 60 * KB, 0.35)
        assert result.latency_s == pytest.approx(analytic)

    def test_energy_matches_timeline(self):
        link = RadioLink(THREE_G)
        link.request(0.0, KB, 60 * KB, 0.35)
        segments = link.drain(60.0)
        timeline = sum(
            s.energy_j for s in segments if s.state is not RadioState.SLEEP
        )
        analytic = isolated_request_energy(THREE_G, KB, 60 * KB, 0.35)
        assert analytic == pytest.approx(timeline, rel=0.01)

    def test_tail_exclusion(self):
        with_tail = isolated_request_energy(THREE_G, KB, KB)
        without = isolated_request_energy(THREE_G, KB, KB, include_tail=False)
        assert with_tail - without == pytest.approx(
            THREE_G.tail_s * THREE_G.tail_power_w
        )

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            isolated_request_energy(THREE_G, -1, 0)
        with pytest.raises(ValueError):
            isolated_request_latency(THREE_G, 0, -1)


class TestAggregation:
    def _segments(self):
        return [
            PowerSegment(0.0, 2.0, 0.5, RadioState.RAMP),
            PowerSegment(2.0, 3.0, 1.0, RadioState.ACTIVE),
        ]

    def test_energy_and_duration(self):
        segs = self._segments()
        assert segments_energy(segs) == pytest.approx(2.0 * 0.5 + 3.0)
        assert segments_duration(segs) == pytest.approx(5.0)

    def test_average_power(self):
        assert average_power(self._segments()) == pytest.approx(4.0 / 5.0)

    def test_average_power_empty_rejected(self):
        with pytest.raises(ValueError):
            average_power([])

    def test_timeline_by_state(self):
        summary = timeline_by_state(self._segments())
        assert summary[RadioState.RAMP]["duration_s"] == pytest.approx(2.0)
        assert summary[RadioState.ACTIVE]["energy_j"] == pytest.approx(3.0)
        assert summary[RadioState.SLEEP]["duration_s"] == 0.0
