"""Tests for the radio profiles."""

import pytest

from repro.radio.models import (
    EDGE,
    THREE_G,
    WIFI_80211G,
    RadioProfile,
    make_link,
    standard_links,
)


class TestProfiles:
    def test_cellular_wakeup_1_5_to_2s(self):
        """The paper: radios need 1.5-2 s to leave standby."""
        for profile in (THREE_G, EDGE):
            assert 1.5 <= profile.wakeup_s <= 2.0

    def test_wakeup_independent_of_throughput(self):
        """EDGE and 3G differ in goodput but not (materially) in wakeup."""
        assert EDGE.wakeup_s == THREE_G.wakeup_s
        assert THREE_G.downlink_bps > 2 * EDGE.downlink_bps

    def test_wifi_fastest_link(self):
        assert WIFI_80211G.downlink_bps > THREE_G.downlink_bps > EDGE.downlink_bps

    def test_request_rtt_composition(self):
        assert THREE_G.request_rtt_s() == pytest.approx(
            THREE_G.handshake_rtts * THREE_G.rtt_s
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            RadioProfile("x", -1, 0.1, 2, 1e6, 1e6, 0, 0.5, 0.5, 0.5, 1)
        with pytest.raises(ValueError):
            RadioProfile("x", 1, 0.1, 0, 1e6, 1e6, 0, 0.5, 0.5, 0.5, 1)
        with pytest.raises(ValueError):
            RadioProfile("x", 1, 0.1, 2, 0, 1e6, 0, 0.5, 0.5, 0.5, 1)

    def test_standard_links(self):
        links = standard_links()
        assert set(links) == {"3g", "edge", "802.11g"}
        assert links["3g"].profile is THREE_G

    def test_make_link_starts_asleep(self):
        link = make_link(THREE_G)
        assert not link.is_awake(0.0)
