"""Property-based tests on the radio power-state machine."""

from hypothesis import given, settings, strategies as st

from repro.radio.models import EDGE, THREE_G, WIFI_80211G
from repro.radio.states import RadioLink

KB = 1024

profiles = st.sampled_from([THREE_G, EDGE, WIFI_80211G])
gaps = st.lists(st.floats(min_value=0.0, max_value=30.0), min_size=1, max_size=12)
sizes = st.tuples(
    st.integers(min_value=0, max_value=64 * KB),
    st.integers(min_value=0, max_value=256 * KB),
)


@given(profile=profiles, gaps=gaps, size=sizes)
@settings(max_examples=60, deadline=None)
def test_timeline_is_contiguous_and_complete(profile, gaps, size):
    """Draining after any request pattern yields a gap-free timeline
    covering exactly [0, drain point]."""
    link = RadioLink(profile)
    now = 0.0
    for gap in gaps:
        now += gap
        result = link.request(now, size[0], size[1], 0.1)
        now = result.t_end
    end = now + 60.0
    segments = link.drain(end)
    assert abs(segments[0].t_start - 0.0) < 1e-9
    assert abs(segments[-1].t_end - end) < 1e-6
    for a, b in zip(segments, segments[1:]):
        assert abs(a.t_end - b.t_start) < 1e-9


@given(profile=profiles, gaps=gaps, size=sizes)
@settings(max_examples=60, deadline=None)
def test_energy_bounded_by_power_envelope(profile, gaps, size):
    """Total timeline energy lies between sleep-only and max-power."""
    link = RadioLink(profile)
    now = 0.0
    for gap in gaps:
        now += gap
        result = link.request(now, size[0], size[1], 0.1)
        now = result.t_end
    end = now + 10.0
    segments = link.drain(end)
    energy = sum(s.energy_j for s in segments)
    max_power = max(
        profile.ramp_power_w, profile.active_power_w, profile.tail_power_w
    )
    assert profile.sleep_power_w * end * 0.99 <= energy <= max_power * end + 1e-9


@given(profile=profiles, size=sizes)
@settings(max_examples=40, deadline=None)
def test_warm_request_never_slower(profile, size):
    """A request inside the tail is never slower than a cold one."""
    cold = RadioLink(profile)
    cold_result = cold.request(0.0, size[0], size[1], 0.1)
    warm = RadioLink(profile)
    first = warm.request(0.0, size[0], size[1], 0.1)
    warm_result = warm.request(first.t_end + profile.tail_s / 2, size[0], size[1], 0.1)
    assert warm_result.latency_s <= cold_result.latency_s + 1e-9
