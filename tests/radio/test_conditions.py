"""Tests for radio condition variability."""

import pytest

from repro.radio.conditions import ConditionSampler, LinkConditions
from repro.radio.energy import isolated_request_latency
from repro.radio.models import THREE_G

KB = 1024


class TestLinkConditions:
    def test_nominal_is_identity(self):
        assert LinkConditions(1.0).apply(THREE_G) == THREE_G

    def test_degradation_slows_requests(self):
        weak = LinkConditions(0.5).apply(THREE_G)
        nominal = isolated_request_latency(THREE_G, KB, 64 * KB, 0.35)
        degraded = isolated_request_latency(weak, KB, 64 * KB, 0.35)
        assert degraded > nominal

    def test_half_quality_roughly_doubles_transfer_terms(self):
        """The paper: weak signal doubles or triples the response time."""
        weak = LinkConditions(0.5).apply(THREE_G)
        assert weak.rtt_s == pytest.approx(2 * THREE_G.rtt_s)
        assert weak.downlink_bps == pytest.approx(THREE_G.downlink_bps / 2)

    def test_wakeup_unaffected(self):
        """The ramp time is throughput-independent (Section 1)."""
        weak = LinkConditions(0.3).apply(THREE_G)
        assert weak.wakeup_s == THREE_G.wakeup_s

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkConditions(0.0)
        with pytest.raises(ValueError):
            LinkConditions(1.5)


class TestSampler:
    def test_samples_in_range(self):
        sampler = ConditionSampler(seed=1)
        for conditions in sampler.sample_many(200):
            assert sampler.floor <= conditions.quality <= 1.0

    def test_mean_near_target(self):
        import numpy as np

        sampler = ConditionSampler(mean_quality=0.75, seed=2)
        qualities = [c.quality for c in sampler.sample_many(2000)]
        assert np.mean(qualities) == pytest.approx(0.75, abs=0.05)

    def test_deterministic_per_seed(self):
        a = [c.quality for c in ConditionSampler(seed=5).sample_many(10)]
        b = [c.quality for c in ConditionSampler(seed=5).sample_many(10)]
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            ConditionSampler(mean_quality=0)
        with pytest.raises(ValueError):
            ConditionSampler(concentration=0)
        with pytest.raises(ValueError):
            ConditionSampler(floor=0)
        with pytest.raises(ValueError):
            ConditionSampler().sample_many(-1)
