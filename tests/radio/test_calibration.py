"""Radio calibration against the paper's Figure 15 ratios.

The profiles are fitted so the simulated device reproduces the paper's
speedups and energy gaps; these tests pin the fit.
"""

import pytest

from repro.radio.energy import isolated_request_energy, isolated_request_latency
from repro.radio.models import EDGE, THREE_G, WIFI_80211G
from repro.sim.browser import RADIO_SERP_BYTES, RenderModel, SERP_BYTES

KB = 1024
BASE_POWER_W = 0.9
RENDER_POWER_W = 0.35
SERVER_S = 0.35
QUERY_UP = 1 * KB

RENDER_S = RenderModel().render_seconds(SERP_BYTES)
PS_LATENCY_S = RENDER_S + 0.0066 + 0.007 + 10e-6  # render + fetch + misc + lookup
PS_ENERGY_J = PS_LATENCY_S * BASE_POWER_W + RENDER_S * RENDER_POWER_W


def radio_latency(profile):
    return (
        isolated_request_latency(profile, QUERY_UP, RADIO_SERP_BYTES, SERVER_S)
        + RENDER_S
    )


def radio_energy(profile):
    latency = radio_latency(profile)
    return (
        isolated_request_energy(profile, QUERY_UP, RADIO_SERP_BYTES, SERVER_S)
        + latency * BASE_POWER_W
        + RENDER_S * RENDER_POWER_W
    )


class TestPaperRatios:
    def test_pocketsearch_under_400ms(self):
        """Paper: two thirds of queries answered within ~400 ms."""
        assert PS_LATENCY_S < 0.4

    def test_3g_speedup_about_16x(self):
        assert radio_latency(THREE_G) / PS_LATENCY_S == pytest.approx(16, rel=0.10)

    def test_edge_speedup_about_25x(self):
        assert radio_latency(EDGE) / PS_LATENCY_S == pytest.approx(25, rel=0.10)

    def test_wifi_speedup_about_7x(self):
        assert radio_latency(WIFI_80211G) / PS_LATENCY_S == pytest.approx(7, rel=0.10)

    def test_3g_energy_about_23x(self):
        assert radio_energy(THREE_G) / PS_ENERGY_J == pytest.approx(23, rel=0.12)

    def test_edge_energy_about_41x(self):
        assert radio_energy(EDGE) / PS_ENERGY_J == pytest.approx(41, rel=0.12)

    def test_wifi_energy_about_11x(self):
        assert radio_energy(WIFI_80211G) / PS_ENERGY_J == pytest.approx(11, rel=0.12)

    def test_energy_gaps_exceed_latency_gaps(self):
        """The paper's observation: energy ratios beat latency ratios."""
        for profile in (THREE_G, EDGE, WIFI_80211G):
            latency_ratio = radio_latency(profile) / PS_LATENCY_S
            energy_ratio = radio_energy(profile) / PS_ENERGY_J
            assert energy_ratio > latency_ratio

    def test_wifi_cold_query_just_over_2s(self):
        """Paper: 802.11g response time slightly higher than 2 seconds."""
        assert 2.0 < radio_latency(WIFI_80211G) < 3.0

    def test_3g_in_paper_band(self):
        """Paper: 3 to 10 seconds for a 3G search."""
        assert 3.0 < radio_latency(THREE_G) < 10.0
