"""Tests for the radio power-state machine."""

import pytest

from repro.radio.models import THREE_G, WIFI_80211G
from repro.radio.states import RadioLink, RadioState

KB = 1024


class TestRequestPath:
    def test_cold_request_pays_wakeup(self):
        link = RadioLink(THREE_G)
        result = link.request(0.0, KB, 10 * KB, 0.1)
        assert result.woke
        assert result.latency_s > THREE_G.wakeup_s

    def test_request_within_tail_skips_wakeup(self):
        link = RadioLink(THREE_G)
        first = link.request(0.0, KB, KB, 0.0)
        second = link.request(first.t_end + 0.5, KB, KB, 0.0)
        assert not second.woke
        assert second.latency_s == pytest.approx(
            first.latency_s - THREE_G.wakeup_s
        )

    def test_request_after_tail_wakes_again(self):
        link = RadioLink(THREE_G)
        first = link.request(0.0, KB, KB, 0.0)
        later = first.t_end + THREE_G.tail_s + 10.0
        second = link.request(later, KB, KB, 0.0)
        assert second.woke
        assert link.total_wakeups == 2

    def test_latency_composition(self):
        link = RadioLink(THREE_G)
        result = link.request(0.0, 2 * KB, 50 * KB, 0.3)
        expected = (
            THREE_G.wakeup_s
            + THREE_G.request_rtt_s()
            + 2 * KB / THREE_G.uplink_bps
            + 0.3
            + 50 * KB / THREE_G.downlink_bps
        )
        assert result.latency_s == pytest.approx(expected)

    def test_overlapping_request_rejected(self):
        link = RadioLink(THREE_G)
        result = link.request(0.0, KB, KB, 0.0)
        with pytest.raises(ValueError):
            link.request(result.t_end - 0.01, KB, KB, 0.0)

    def test_invalid_sizes_rejected(self):
        link = RadioLink(THREE_G)
        with pytest.raises(ValueError):
            link.request(0.0, -1, KB, 0.0)
        with pytest.raises(ValueError):
            link.request(0.0, KB, KB, -0.5)

    def test_byte_counters(self):
        link = RadioLink(THREE_G)
        link.request(0.0, 100, 200, 0.0)
        assert link.total_bytes_up == 100
        assert link.total_bytes_down == 200


class TestStateInspection:
    def test_states_over_time(self):
        link = RadioLink(THREE_G)
        result = link.request(0.0, KB, KB, 0.0)
        assert link.state_at(result.t_end - 0.01) is RadioState.ACTIVE
        assert link.state_at(result.t_end + 0.1) is RadioState.TAIL
        assert (
            link.state_at(result.t_end + THREE_G.tail_s + 1) is RadioState.SLEEP
        )

    def test_is_awake(self):
        link = RadioLink(THREE_G)
        result = link.request(0.0, KB, KB, 0.0)
        assert link.is_awake(result.t_end + 0.1)
        assert not link.is_awake(result.t_end + THREE_G.tail_s + 1)


class TestTimeline:
    def test_drain_covers_whole_interval(self):
        link = RadioLink(THREE_G)
        link.request(1.0, KB, KB, 0.0)
        segments = link.drain(30.0)
        assert segments[0].t_start == pytest.approx(0.0)
        assert segments[-1].t_end == pytest.approx(30.0)
        # Segments are contiguous.
        for a, b in zip(segments, segments[1:]):
            assert a.t_end == pytest.approx(b.t_start)

    def test_timeline_has_all_states(self):
        link = RadioLink(THREE_G)
        link.request(1.0, KB, KB, 0.0)
        segments = link.drain(30.0)
        states = {s.state for s in segments}
        assert states == {
            RadioState.SLEEP,
            RadioState.RAMP,
            RadioState.ACTIVE,
            RadioState.TAIL,
        }

    def test_truncated_tail_on_back_to_back(self):
        """A second request during the tail truncates the emitted tail."""
        link = RadioLink(THREE_G)
        first = link.request(0.0, KB, KB, 0.0)
        gap = 1.0
        link.request(first.t_end + gap, KB, KB, 0.0)
        segments = link.drain(60.0)
        tails = [s for s in segments if s.state is RadioState.TAIL]
        assert tails[0].duration_s == pytest.approx(gap)

    def test_drain_backwards_rejected(self):
        link = RadioLink(THREE_G)
        link.request(0.0, KB, KB, 0.0)
        link.drain(20.0)
        with pytest.raises(ValueError):
            link.drain(10.0)

    def test_energy_positive(self):
        link = RadioLink(WIFI_80211G)
        link.request(0.0, KB, 100 * KB, 0.2)
        segments = link.drain(10.0)
        assert sum(s.energy_j for s in segments) > 0
