"""Property-based tests on the radio energy accounting helpers."""

from hypothesis import given, settings, strategies as st

from repro.radio.energy import (
    average_power,
    isolated_request_components,
    isolated_request_energy,
    segments_energy,
)
from repro.radio.models import EDGE, THREE_G, WIFI_80211G
from repro.radio.states import RadioLink

KB = 1024

profiles = st.sampled_from([THREE_G, EDGE, WIFI_80211G])
byte_counts = st.integers(min_value=0, max_value=1024 * KB)
server_times = st.floats(min_value=0.0, max_value=5.0)
gaps = st.lists(
    st.floats(min_value=0.0, max_value=30.0), min_size=1, max_size=10
)


def _timeline(profile, gap_list):
    link = RadioLink(profile)
    now = 0.0
    for gap in gap_list:
        now += gap
        result = link.request(now, 1 * KB, 16 * KB, 0.1)
        now = result.t_end
    return link.drain(now + 20.0)


@given(profile=profiles, gap_list=gaps)
@settings(max_examples=50, deadline=None)
def test_segments_energy_is_additive(profile, gap_list):
    """Summing a split timeline equals summing the whole — energy is a
    plain additive measure over segments."""
    segments = _timeline(profile, gap_list)
    whole = segments_energy(segments)
    for cut in (1, len(segments) // 2, len(segments) - 1):
        parts = segments_energy(segments[:cut]) + segments_energy(segments[cut:])
        assert abs(parts - whole) <= 1e-9 * max(1.0, abs(whole))


@given(
    profile=profiles,
    bytes_up=byte_counts,
    bytes_down=byte_counts,
    extra=st.integers(min_value=0, max_value=512 * KB),
    server_s=server_times,
)
@settings(max_examples=80, deadline=None)
def test_isolated_energy_monotone_in_bytes(
    profile, bytes_up, bytes_down, extra, server_s
):
    """More payload never costs less energy, in either direction."""
    base = isolated_request_energy(profile, bytes_up, bytes_down, server_s)
    more_down = isolated_request_energy(
        profile, bytes_up, bytes_down + extra, server_s
    )
    more_up = isolated_request_energy(
        profile, bytes_up + extra, bytes_down, server_s
    )
    assert more_down >= base
    assert more_up >= base


@given(
    profile=profiles,
    bytes_up=byte_counts,
    bytes_down=byte_counts,
    server_s=server_times,
)
@settings(max_examples=80, deadline=None)
def test_tail_only_adds_energy(profile, bytes_up, bytes_down, server_s):
    """include_tail=True is always >= include_tail=False, by exactly the
    tail component."""
    with_tail = isolated_request_energy(
        profile, bytes_up, bytes_down, server_s, include_tail=True
    )
    without = isolated_request_energy(
        profile, bytes_up, bytes_down, server_s, include_tail=False
    )
    assert with_tail >= without
    parts = isolated_request_components(profile, bytes_up, bytes_down, server_s)
    assert with_tail - without <= parts.tail_j + 1e-12


@given(profile=profiles, gap_list=gaps)
@settings(max_examples=50, deadline=None)
def test_average_power_within_segment_envelope(profile, gap_list):
    """Duration-weighted mean power lies between the min and max segment
    power of the timeline."""
    segments = [s for s in _timeline(profile, gap_list) if s.duration_s > 0]
    mean = average_power(segments)
    powers = [s.power_w for s in segments]
    assert min(powers) - 1e-9 <= mean <= max(powers) + 1e-9


@given(
    profile=profiles,
    bytes_up=byte_counts,
    bytes_down=byte_counts,
    server_s=server_times,
    include_tail=st.booleans(),
)
@settings(max_examples=80, deadline=None)
def test_components_sum_bit_identical(
    profile, bytes_up, bytes_down, server_s, include_tail
):
    """The decomposition re-sums to isolated_request_energy exactly —
    the bit-identity the serve layer's attribution relies on."""
    parts = isolated_request_components(
        profile, bytes_up, bytes_down, server_s, include_tail
    )
    total = parts.ramp_j + parts.transfer_j
    if include_tail:
        total += parts.tail_j
    assert total == isolated_request_energy(
        profile, bytes_up, bytes_down, server_s, include_tail
    )
    assert parts.total_j == (parts.ramp_j + parts.transfer_j) + parts.tail_j
    if not include_tail:
        assert parts.tail_j == 0.0
