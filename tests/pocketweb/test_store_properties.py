"""Property-based tests on the page store."""

from hypothesis import given, settings, strategies as st

from repro.pocketweb.store import PageStore

MB = 1024**2

ops = st.lists(
    st.tuples(
        st.sampled_from(["put", "read"]),
        st.integers(0, 9),
        st.integers(min_value=64 * 1024, max_value=2 * MB),
    ),
    max_size=40,
)


@given(ops=ops, budget_mb=st.integers(min_value=2, max_value=16))
@settings(max_examples=60, deadline=None)
def test_budget_and_flash_invariants(ops, budget_mb):
    """The store never exceeds its budget, and its accounting matches
    the flash filesystem's view of live files."""
    store = PageStore(budget_bytes=budget_mb * MB)
    live = {}
    for op, idx, size in ops:
        url = f"www.p{idx}.com"
        if op == "put" and size <= store.budget_bytes:
            store.put(url, size, version=0)
            live[url] = size
        elif op == "read" and url in store:
            store.read(url)
        # Invariants after every operation:
        assert store.bytes_stored <= store.budget_bytes
        assert store.n_pages <= len(live)
        assert store.filesystem.logical_bytes == store.bytes_stored
