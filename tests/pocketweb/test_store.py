"""Tests for the page store."""

import pytest

from repro.pocketweb.store import PageStore

MB = 1024**2


class TestPut:
    def test_put_and_contains(self):
        store = PageStore(budget_bytes=10 * MB)
        store.put("www.a.com", 1 * MB, version=3)
        assert "www.a.com" in store
        assert store.cached_version("www.a.com") == 3
        assert store.bytes_stored == 1 * MB

    def test_refresh_replaces(self):
        store = PageStore(budget_bytes=10 * MB)
        store.put("www.a.com", 1 * MB, version=1)
        store.put("www.a.com", 2 * MB, version=2)
        assert store.n_pages == 1
        assert store.bytes_stored == 2 * MB
        assert store.cached_version("www.a.com") == 2

    def test_lru_eviction(self):
        store = PageStore(budget_bytes=3 * MB)
        store.put("a", 1 * MB, 0)
        store.put("b", 1 * MB, 0)
        store.put("c", 1 * MB, 0)
        store.read("a")  # refresh recency
        store.put("d", 1 * MB, 0)  # evicts b
        assert "a" in store and "b" not in store
        assert store.evictions == 1

    def test_page_larger_than_budget_rejected(self):
        store = PageStore(budget_bytes=1 * MB)
        with pytest.raises(ValueError):
            store.put("huge", 2 * MB, 0)

    def test_budget_never_exceeded(self):
        store = PageStore(budget_bytes=5 * MB)
        for i in range(20):
            store.put(f"p{i}", 1 * MB, 0)
        assert store.bytes_stored <= 5 * MB

    def test_validation(self):
        with pytest.raises(ValueError):
            PageStore(budget_bytes=0)
        store = PageStore(budget_bytes=MB)
        with pytest.raises(ValueError):
            store.put("a", 0, 0)


class TestRead:
    def test_read_costs_flash(self):
        store = PageStore(budget_bytes=10 * MB)
        store.put("a", 1 * MB, 0)
        cost = store.read("a")
        assert cost.latency_s > 0

    def test_read_missing(self):
        store = PageStore(budget_bytes=MB)
        with pytest.raises(KeyError):
            store.read("nope")

    def test_touch_bumps_version(self):
        store = PageStore(budget_bytes=MB)
        store.put("a", 1024, 1)
        store.touch("a", 5)
        assert store.cached_version("a") == 5

    def test_touch_missing(self):
        store = PageStore(budget_bytes=MB)
        with pytest.raises(KeyError):
            store.touch("nope", 1)

    def test_eviction_frees_flash(self):
        store = PageStore(budget_bytes=2 * MB)
        store.put("a", 1 * MB, 0)
        used = store.filesystem.pages_used
        store.put("b", 1 * MB, 0)
        store.put("c", 1 * MB, 0)  # evicts a
        assert store.filesystem.pages_used <= 2 * used
