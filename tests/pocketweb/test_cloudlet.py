"""Tests for the PocketWeb service path and maintenance."""

import pytest

from repro.core.management import ChargeState, UpdateScheduler
from repro.pocketweb.cloudlet import PocketWebCloudlet
from repro.pocketweb.pages import PageModel

MB = 1024**2
DAY = 86400.0
CHARGING = ChargeState(charging=True, on_fast_link=True)


def make_cloudlet(budget_mb=64, **kwargs):
    return PocketWebCloudlet(budget_bytes=budget_mb * MB, **kwargs)


class TestBrowsePaths:
    def test_first_visit_misses_then_hits(self):
        web = make_cloudlet()
        first = web.browse("www.staple.com", 100.0)
        second = web.browse("www.staple.com", 200.0)
        assert first.path == "miss"
        assert second.hit

    def test_miss_pays_radio(self):
        web = make_cloudlet()
        outcome = web.browse("www.a.com", 0.0)
        assert outcome.latency_s > 3.0
        assert outcome.bytes_over_radio > 0

    def test_fresh_hit_is_local(self):
        web = make_cloudlet()
        web.browse("www.a.com", 0.0)
        hit = web.browse("www.a.com", 10.0)
        assert hit.path == "fresh-hit"
        assert hit.bytes_over_radio == 0
        assert hit.latency_s < 3.0

    def test_dynamic_staple_revalidates(self):
        """A hot dynamic page goes stale and gets a conditional GET."""
        model = PageModel(dynamic_fraction=1.0)  # everything dynamic
        web = make_cloudlet(page_model=model)
        url = "www.news.com"
        web.browse(url, 0.0)
        # Visit frequently so the scheduler classifies it realtime-hot.
        for i in range(1, 8):
            web.browse(url, i * 600.0)
        late = web.browse(url, 2 * DAY)
        assert late.path == "stale-hit"
        assert 0 < late.bytes_over_radio < web.page_model.profile(url).page_bytes

    def test_cold_stale_page_served_from_cache(self):
        """Infrequently visited stale pages are served without radio."""
        model = PageModel(dynamic_fraction=1.0)
        web = make_cloudlet(page_model=model)
        web.browse("www.rare.com", 0.0)
        outcome = web.browse("www.rare.com", 20 * DAY)
        assert outcome.path == "stale-served"
        assert outcome.bytes_over_radio == 0

    def test_stale_hit_cheaper_than_miss(self):
        model = PageModel(dynamic_fraction=1.0)
        web = make_cloudlet(page_model=model)
        url = "www.news.com"
        miss = web.browse(url, 0.0)
        for i in range(1, 8):
            web.browse(url, i * 600.0)
        stale = web.browse(url, 2 * DAY)
        assert stale.path == "stale-hit"
        assert stale.latency_s < miss.latency_s
        assert stale.energy_j < miss.energy_j


class TestOvernightUpdate:
    def test_requires_charging(self):
        web = make_cloudlet()
        web.browse("www.a.com", 0.0)
        counters = web.overnight_update(
            2 * DAY, ChargeState(charging=False, on_fast_link=True)
        )
        assert counters == {"refreshed": 0, "prefetched": 0}

    def test_refreshes_stale_pages(self):
        model = PageModel(dynamic_fraction=1.0)
        web = make_cloudlet(page_model=model)
        web.browse("www.a.com", 0.0)
        counters = web.overnight_update(2 * DAY, CHARGING)
        assert counters["refreshed"] >= 1
        # The refreshed page now serves fresh.
        outcome = web.browse("www.a.com", 2 * DAY + 60)
        assert outcome.path == "fresh-hit"

    def test_prefetch_from_community_hints(self):
        from repro.core.selection import CommunityAccessModel

        web = make_cloudlet()
        hints = CommunityAccessModel()
        hints.record("www.popular1.com", 1000)
        hints.record("www.popular2.com", 800)
        counters = web.overnight_update(DAY, CHARGING, community_hints=hints)
        assert counters["prefetched"] == 2
        assert web.browse("www.popular1.com", DAY + 60).hit

    def test_prefetch_respects_budget(self):
        from repro.core.selection import CommunityAccessModel

        web = make_cloudlet(budget_mb=1)
        hints = CommunityAccessModel()
        for i in range(50):
            hints.record(f"www.p{i}.com", 100 - i)
        web.overnight_update(DAY, CHARGING, community_hints=hints)
        assert web.store.bytes_stored <= 1 * MB


class TestStats:
    def test_revisit_heavy_stream_hits(self):
        """The paper's premise: 70% of visits are revisits to a few
        pages, so PocketWeb serves most visits locally."""
        web = make_cloudlet()
        staples = [f"www.staple{i}.com" for i in range(5)]
        t = 0.0
        for round_idx in range(40):
            for url in staples:
                web.browse(url, t)
                t += 3600.0
        assert web.hit_rate > 0.9

    def test_hit_rate_empty(self):
        assert make_cloudlet().hit_rate == 0.0
