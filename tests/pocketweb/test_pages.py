"""Tests for the synthetic page model."""

import pytest

from repro.pocketweb.pages import PageModel, PageProfile

KB = 1024


class TestPageModel:
    def test_deterministic(self):
        model = PageModel()
        a = model.profile("www.cnn.com")
        b = model.profile("www.cnn.com")
        assert a == b

    def test_sizes_reasonable(self):
        model = PageModel(mean_page_bytes=300 * KB)
        sizes = [model.profile(f"www.s{i}.com").page_bytes for i in range(500)]
        assert all(20 * KB <= s <= 1300 * KB for s in sizes)
        mean = sum(sizes) / len(sizes)
        assert 150 * KB <= mean <= 600 * KB

    def test_dynamic_fraction(self):
        model = PageModel(dynamic_fraction=0.12)
        dynamic = sum(
            1 for i in range(2000) if model.profile(f"www.s{i}.com").is_dynamic
        )
        assert 0.08 <= dynamic / 2000 <= 0.16

    def test_validation(self):
        with pytest.raises(ValueError):
            PageModel(mean_page_bytes=0)
        with pytest.raises(ValueError):
            PageModel(dynamic_fraction=1.5)


class TestVersions:
    def test_version_monotone(self):
        profile = PageProfile("u", 1000, changes_per_day=24.0)
        versions = [profile.version_at(t * 3600.0) for t in range(48)]
        assert all(b >= a for a, b in zip(versions, versions[1:]))
        assert versions[-1] > versions[0]

    def test_static_page_rarely_changes(self):
        profile = PageProfile("u", 1000, changes_per_day=1 / 7)
        assert profile.version_at(0) == profile.version_at(3 * 86400.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            PageProfile("u", 1000, 1.0).version_at(-1)
